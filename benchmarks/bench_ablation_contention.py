"""Ablation: hotspot size drives the high-contention collapse (Figure 7).

Sweeping the hotspot from 10 to 1000 customers shows MaterializeBW's loss
fading as collisions thin out — the paper's Figure 4/5 vs Figure 7
difference is purely the hotspot, and Guideline 2 ("avoid modifying
vulnerable edges that make a read-only transaction an updater") matters
most under contention.
"""

from __future__ import annotations

from repro.sim.runner import SimulationConfig, run_once

HOTSPOTS = (10, 100, 1000)


def _relative_tps(hotspot: int) -> float:
    kwargs = dict(
        mpl=20,
        mix="balance60",
        customers=3_600,
        hotspot=hotspot,
        measure=1.5,
        ramp_up=0.2,
    )
    base = run_once(SimulationConfig(**kwargs)).tps
    fixed = run_once(
        SimulationConfig(strategy="materialize-bw", **kwargs)
    ).tps
    return fixed / base


def test_hotspot_sweep(benchmark):
    ratios = benchmark.pedantic(
        lambda: {h: _relative_tps(h) for h in HOTSPOTS},
        rounds=1,
        iterations=1,
    )
    print()
    for hotspot, ratio in ratios.items():
        print(f"hotspot {hotspot:>5}: MaterializeBW at {ratio * 100:5.1f}% of SI")
    # Monotone recovery as the hotspot grows...
    assert ratios[10] < ratios[100] < ratios[1000]
    # ...from a roughly-half collapse toward the contention-free cost
    # floor (the 60%-Balance mix pays the extra CPU + flush regardless).
    assert ratios[10] < 0.60
    assert ratios[1000] > 0.65


def test_ssi_under_contention(benchmark):
    """Extension: the engine-level certifier (the paper's future-work
    direction) keeps most of SI's throughput at the Figure 7 hotspot —
    its aborts replace the strategies' extra writes."""
    from dataclasses import replace as dc_replace

    from repro.engine.config import EngineConfig
    from repro.sim.platform import postgres_platform

    def run() -> tuple[float, float]:
        kwargs = dict(
            mpl=20, mix="balance60", hotspot=10, measure=1.5, ramp_up=0.2
        )
        si = run_once(SimulationConfig(**kwargs)).tps
        ssi_platform = dc_replace(
            postgres_platform(), engine_config=EngineConfig.ssi()
        )
        ssi = run_once(SimulationConfig(**kwargs), ssi_platform).tps
        return si, ssi

    si, ssi = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nhigh contention: SI {si:.0f} TPS vs SSI engine {ssi:.0f} TPS")
    assert ssi > 0.5 * si  # serializability at an engine-level cost
