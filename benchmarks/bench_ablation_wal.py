"""Ablation: the WAL model drives the paper's MPL-1 findings.

DESIGN.md attributes the BW-vs-WT MPL-1 gap to the forced log flush.
These ablations verify the attribution by turning the knobs:

* with a fast (battery-backed-cache-like, 1 ms) log disk the 20 % BW
  penalty at MPL 1 nearly vanishes;
* removing the commit-delay gather window changes group-commit batching
  but not the plateau (CPU-bound), confirming the plateau attribution.
"""

from __future__ import annotations

from dataclasses import replace

from repro.sim.platform import postgres_platform
from repro.sim.runner import SimulationConfig, run_once


def _mpl1_gap(platform_model) -> float:
    """PromoteBW-upd TPS relative to SI at MPL 1."""
    base = run_once(
        SimulationConfig(mpl=1, measure=2.0, ramp_up=0.2), platform_model
    ).tps
    promoted = run_once(
        SimulationConfig(
            strategy="promote-bw-upd", mpl=1, measure=2.0, ramp_up=0.2
        ),
        platform_model,
    ).tps
    return promoted / base


def test_slow_log_disk_creates_the_bw_penalty(benchmark):
    def run() -> tuple[float, float]:
        slow = _mpl1_gap(postgres_platform())
        fast = _mpl1_gap(
            replace(postgres_platform(), wal_flush_time=0.0002,
                    wal_commit_delay=0.00005)
        )
        return slow, fast

    slow, fast = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nMPL-1 PromoteBW/SI: slow disk {slow:.2f}, fast disk {fast:.2f}")
    assert slow < 0.88  # the paper's ~20% penalty needs the slow flush
    assert fast > 0.93  # ...and (nearly) disappears without it


def test_commit_delay_does_not_move_the_plateau(benchmark):
    def run() -> tuple[float, float]:
        with_delay = run_once(
            SimulationConfig(mpl=25, measure=2.0, ramp_up=0.3),
            postgres_platform(),
        ).tps
        without = run_once(
            SimulationConfig(mpl=25, measure=2.0, ramp_up=0.3),
            replace(postgres_platform(), wal_commit_delay=0.0),
        ).tps
        return with_delay, without

    with_delay, without = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nplateau TPS: delay on {with_delay:.0f}, off {without:.0f}")
    assert abs(with_delay - without) / with_delay < 0.15


def test_group_commit_carries_the_plateau(benchmark):
    """With group commit the update-commit rate far exceeds 1/flush_time;
    the log disk would cap throughput at ~100 commits/s without it."""

    def run() -> float:
        return run_once(
            SimulationConfig(mpl=25, measure=2.0, ramp_up=0.3),
            postgres_platform(),
        ).tps

    tps = benchmark.pedantic(run, rounds=1, iterations=1)
    flushes_per_second = 1.0 / postgres_platform().wal_flush_time
    print(f"\nTPS {tps:.0f} vs no-batching bound {flushes_per_second:.0f}")
    assert tps * 0.8 > 3 * flushes_per_second
