"""Validate the performance advisor against the simulator.

The advisor (``repro.core.advisor`` — the tool the paper's conclusion asks
for) predicts each strategy's plateau analytically.  This benchmark runs
the simulator at plateau MPL for every PostgreSQL strategy and checks that

* the predicted/measured ratio stays within 25 % per strategy, and
* the advisor's *ranking* agrees with the simulator's on every pair that
  differs by more than the simulation noise.
"""

from __future__ import annotations

from repro.core.advisor import predict, recommend
from repro.sim.platform import commercial_platform, postgres_platform
from repro.sim.runner import SimulationConfig, run_once
from repro.workload.mix import UNIFORM_MIX

STRATEGIES = (
    "base-si",
    "materialize-wt",
    "promote-wt-upd",
    "materialize-bw",
    "promote-bw-upd",
    "materialize-all",
    "promote-all",
)


def test_advisor_vs_simulator(benchmark):
    platform = postgres_platform()

    def run() -> dict[str, tuple[float, float]]:
        results = {}
        for key in STRATEGIES:
            predicted = predict(key, platform, UNIFORM_MIX).plateau_tps
            measured = run_once(
                SimulationConfig(strategy=key, mpl=25, measure=1.5,
                                 ramp_up=0.2)
            ).tps
            results[key] = (predicted, measured)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for key, (predicted, measured) in results.items():
        error = (measured - predicted) / predicted * 100
        print(f"  {key:>16}: predicted {predicted:6.0f}, "
              f"measured {measured:6.0f} ({error:+5.1f}%)")
        assert abs(error) < 25, key
    # Ranking agreement on clearly separated pairs (>8% predicted gap).
    for a, (pred_a, meas_a) in results.items():
        for b, (pred_b, meas_b) in results.items():
            if pred_a > pred_b * 1.08:
                assert meas_a > meas_b * 0.95, (a, b)


def test_advisor_recommendations_match_paper_guidelines(benchmark):
    def run() -> tuple[str, str]:
        postgres = recommend(postgres_platform(), UNIFORM_MIX)
        commercial = recommend(commercial_platform(), UNIFORM_MIX)
        return postgres.best.strategy_key, commercial.best.strategy_key

    pg_best, com_best = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n  postgres -> {pg_best}; commercial -> {com_best}")
    # Guideline: fix WT, not BW; promotion on PG, SFU/materialize on
    # the commercial platform.
    assert "wt" in pg_best
    assert "wt" in com_best
    assert pg_best == "promote-wt-upd"
    assert com_best in ("promote-wt-sfu", "materialize-wt")
