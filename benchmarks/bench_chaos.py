"""Chaos benchmark: serializability and durability under injected faults.

Two harnesses, both driven by a seeded :class:`~repro.faults.FaultPlan`:

* **Chaos simulation** — the SmallBank mix runs in the simulator while the
  WAL disk stalls, the server spuriously aborts commits, and lock waits
  expire; clients ride it out with an exponential-backoff
  :class:`~repro.workload.retry.RetryPolicy`.  For every fixing strategy
  the MVSG checker must still find the surviving committed history
  serializable — chaos may slow the system down, but it must never let a
  write-skew anomaly through.

* **Crash/recover cycles** — a sequential SmallBank loop with
  ``crash-mid-commit`` faults: every crash loses exactly the unacknowledged
  in-flight transaction, recovery replays the durable WAL prefix, and the
  bank's total money always matches the shadow ledger.

Run the quick version (used by CI) with::

    PYTHONPATH=src python benchmarks/bench_chaos.py --smoke

or the full pytest matrix with::

    PYTHONPATH=src python -m pytest benchmarks/bench_chaos.py -q
"""

from __future__ import annotations

import argparse

import pytest

from repro.analysis import SerializabilityChecker
from repro.engine import Session
from repro.errors import ApplicationRollback, DatabaseCrashed
from repro.faults import FaultPlan, FaultSpec
from repro.sim.runner import SimulationConfig, run_once
from repro.smallbank import (
    PopulationConfig,
    build_database,
    customer_name,
    get_strategy,
    total_money,
)
from repro.workload.retry import RetryPolicy

#: Strategies whose committed histories must stay serializable on the
#: PostgreSQL-style platform (base-si is *expected* to admit write skew).
FIXING_STRATEGIES = (
    "materialize-wt",
    "promote-wt-upd",
    "materialize-all",
    "promote-all",
)


def chaos_plan(seed: int = 1) -> FaultPlan:
    """Disk hiccups, spurious commit aborts, and expiring lock waits."""
    return FaultPlan(
        [
            FaultSpec("wal-stall", probability=0.3, magnitude=0.02),
            FaultSpec("abort-at-commit", probability=0.03),
            FaultSpec("lock-timeout", probability=0.05),
        ],
        seed=seed,
    )


def run_chaos_sim(strategy: str, *, seed: int = 1, measure: float = 1.5):
    """One chaotic simulation run; returns (stats, report, plan)."""
    plan = chaos_plan(seed)
    checkers = []
    config = SimulationConfig(
        strategy=strategy,
        platform="postgres",
        mpl=8,
        customers=400,
        hotspot=40,
        ramp_up=0.5,
        measure=measure,
        seed=seed,
    )
    stats = run_once(
        config,
        fault_plan=plan,
        retry=RetryPolicy.exponential(max_attempts=4),
        on_database=lambda db: checkers.append(SerializabilityChecker(db)),
    )
    return stats, checkers[0].report(), plan


# ----------------------------------------------------------------------
# Chaos simulation: zero MVSG cycles under every fixing strategy
# ----------------------------------------------------------------------
@pytest.mark.parametrize("strategy", FIXING_STRATEGIES)
def test_fixing_strategies_survive_chaos(strategy: str) -> None:
    stats, report, plan = run_chaos_sim(strategy)

    # Chaos actually happened ...
    assert plan.fired("wal-stall") > 0
    assert plan.fired("abort-at-commit") > 0
    # ... the system made progress through it ...
    assert stats.total_commits > 0
    assert stats.total_retries > 0
    # ... and no anomaly slipped into the committed history.
    assert report.serializable, report.describe()


def test_chaos_is_deterministic() -> None:
    """Same seed, same chaos: the whole run replays identically."""
    stats_a, report_a, plan_a = run_chaos_sim("materialize-wt")
    stats_b, report_b, plan_b = run_chaos_sim("materialize-wt")
    assert stats_a.commits == stats_b.commits
    assert stats_a.aborts == stats_b.aborts
    assert stats_a.retries == stats_b.retries
    assert dict(plan_a.injections) == dict(plan_b.injections)
    assert report_a.committed_count == report_b.committed_count


# ----------------------------------------------------------------------
# Crash/recover cycles: the shadow ledger always balances
# ----------------------------------------------------------------------
def run_crash_cycles(
    *, requests: int = 60, crash_every: int = 7, seed: int = 3
) -> tuple[int, float, float]:
    """Sequential SmallBank under repeated mid-commit crashes.

    Returns ``(crashes, expected_total, actual_total)``: the shadow ledger
    tracks only *acknowledged* commits, so equality is exactly the
    durability invariant.
    """
    import random

    rng = random.Random(f"chaos-crash/{seed}")
    customers = 12
    txns = get_strategy("base-si").transactions()
    db = build_database(None, PopulationConfig(customers=customers, seed=seed))
    expected = total_money(db)
    crashes = 0

    def install() -> None:
        db.install_faults(
            FaultPlan(
                [
                    FaultSpec(
                        "crash-mid-commit",
                        start_after=crash_every - 1,
                        max_fires=1,
                    )
                ],
                seed=seed + crashes,
            )
        )

    install()
    for _ in range(requests):
        name = customer_name(rng.randint(1, customers))
        other = customer_name(rng.randint(1, customers))
        program, args, delta = rng.choice(
            [
                ("DepositChecking", {"N": name, "V": 10.0}, 10.0),
                ("TransactSaving", {"N": name, "V": 5.0}, 5.0),
                ("WriteCheck", {"N": name, "V": 15.0}, None),
                ("Amalgamate", {"N1": name, "N2": other}, 0.0),
            ]
        )
        if program == "Amalgamate" and name == other:
            continue
        try:
            session = Session(db)
            result = txns.run(session, program, args)
        except ApplicationRollback:
            continue
        except DatabaseCrashed:
            # The in-flight commit was never acknowledged: the shadow
            # ledger ignores it, and so must the recovered database.
            crashes += 1
            db = db.recover()
            install()
            continue
        if program == "WriteCheck":
            # Overdraws pay a penalty of V + 1 instead of V.
            expected -= 15.0 + (1.0 if result else 0.0)
        elif delta is not None:
            expected += delta
    return crashes, expected, total_money(db)


def test_money_conserved_across_crash_cycles() -> None:
    crashes, expected, actual = run_crash_cycles()
    assert crashes >= 2  # the fault plan actually crashed the engine
    assert actual == pytest.approx(expected, abs=1e-6)


# ----------------------------------------------------------------------
# CLI entry point (CI smoke mode)
# ----------------------------------------------------------------------
def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced grid: one fixing strategy + one crash-cycle loop",
    )
    parser.add_argument("--measure", type=float, default=1.5)
    args = parser.parse_args(argv)

    strategies = FIXING_STRATEGIES[:1] if args.smoke else FIXING_STRATEGIES
    failures = 0
    for strategy in strategies:
        stats, report, plan = run_chaos_sim(strategy, measure=args.measure)
        verdict = "serializable" if report.serializable else "CYCLE FOUND"
        print(
            f"{strategy:<16} {stats.tps:7.1f} TPS  "
            f"retries={stats.total_retries:<4d} giveups={stats.total_giveups:<3d} "
            f"stalls={plan.fired('wal-stall'):<4d} "
            f"forced-aborts={plan.fired('abort-at-commit'):<3d} -> {verdict}"
        )
        failures += 0 if report.serializable else 1

    crashes, expected, actual = run_crash_cycles(
        requests=30 if args.smoke else 60
    )
    balanced = abs(expected - actual) < 1e-6
    print(
        f"crash-cycles     {crashes} crashes, ledger expected={expected:.2f} "
        f"actual={actual:.2f} -> {'balanced' if balanced else 'MISMATCH'}"
    )
    failures += 0 if balanced else 1
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
