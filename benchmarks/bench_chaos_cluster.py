"""Distributed chaos soak: certify serializability under injected faults.

Runs the seeded fault schedule from :mod:`repro.cluster.chaos` against a
real sharded deployment — ≥ 2 :class:`~repro.net.DatabaseServer` shards
behind the cluster router at MPL 8 — while the controller drops/delays
response frames, resets connections, duplicates 2PC decisions, kills and
restarts a shard on its own port, and crashes the coordinator inside the
in-doubt window (both sides of the decision-log write).  After the storm
the soak drives recovery to a fixed point and certifies:

* the merged cross-shard MVSG is **acyclic** under the requested
  strategy (``promote-all`` by default — the paper's fix must hold even
  mid-crash),
* the SmallBank ledger is **exactly conserved** (every program moves
  money, none mints it), and
* **zero** transactions remain in doubt once the in-doubt resolver has
  swept the decision log.

Each run appends one JSON-lines record to ``BENCH_chaos_cluster.json``
at the repo root — the same file and format as the CI gate
``python -m repro.cluster --chaos-smoke`` (one ``to_record()`` object
per line), so a single artifact accumulates both.  CI smoke::

    PYTHONPATH=src python benchmarks/bench_chaos_cluster.py --smoke

full soak (longer storm, several seeds)::

    PYTHONPATH=src python benchmarks/bench_chaos_cluster.py

or via pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_chaos_cluster.py -q
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.cluster.chaos import ChaosConfig, build_fault_plan, run_chaos

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_chaos_cluster.json"

SHARDS = 2
MPL = 8
CUSTOMERS = 40
SEEDS = (11, 17, 23)
SMOKE_SEEDS = (11,)


def soak_config(
    seed: int,
    duration: float,
    *,
    shards: int = SHARDS,
    mpl: int = MPL,
    strategy: str = "promote-all",
) -> ChaosConfig:
    """The benchmark's soak shape: full fault schedule, MPL 8, 2 shards."""
    return ChaosConfig(
        shards=shards,
        customers=CUSTOMERS,
        mpl=mpl,
        duration=duration,
        seed=seed,
        strategy=strategy,
    )


def append_bench_record(record: dict, path: Path = BENCH_JSON) -> None:
    """Append one record as a JSON line (same format as --chaos-smoke)."""
    with path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")


def describe(result) -> str:
    checks = "ok" if result.ok else (
        f"serializable={result.serializable} "
        f"conserved={result.ledger_conserved} "
        f"in_doubt={result.in_doubt_after_recovery}"
    )
    injections = sum(result.fault_injections.values())
    return (
        f"seed {result.config.seed:>3d}: {checks:<40s} "
        f"{result.global_transactions:>5d} gtx "
        f"({result.cross_shard_transactions} cross-shard)  "
        f"{injections} faults  "
        f"restarts={result.shard_restarts}  "
        f"{result.elapsed:5.1f}s"
    )


# ----------------------------------------------------------------------
# pytest entry points (not part of tier-1: testpaths excludes benchmarks/)
# ----------------------------------------------------------------------
def test_smoke_soak_certifies() -> None:
    result = run_chaos(soak_config(seed=11, duration=1.0))
    assert result.ok, result.report_description
    assert result.serializable
    assert result.ledger_conserved
    assert result.in_doubt_after_recovery == 0
    assert result.final_money == result.initial_money
    # The storm actually happened: the shard died and came back, and the
    # coordinator crashed inside the in-doubt window.
    assert result.shard_restarts == result.config.shard_crashes
    assert result.counters.get("coordinator_crashes_seen", 0) > 0


def test_record_shape_matches_the_ci_gate() -> None:
    """One file accumulates bench and --chaos-smoke lines; pin the keys."""
    result = run_chaos(soak_config(seed=17, duration=0.8))
    record = result.to_record()
    assert record["benchmark"] == "chaos_cluster"
    for key in ("config", "ok", "checks", "counters", "router", "faults"):
        assert key in record
    assert set(record["checks"]) == {
        "serializable", "ledger_conserved", "in_doubt_after_recovery",
    }
    json.dumps(record)  # must be serializable as a single JSON line


def test_fault_schedule_is_deterministic() -> None:
    """Same seed → the same firing decisions in the same consult order."""
    config = soak_config(seed=23, duration=1.0)
    plans = (build_fault_plan(config), build_fault_plan(config))
    points = sorted(
        p for p in ("net-drop-frame", "net-delay-frame", "conn-reset",
                    "net-dup-decision", "shard-crash",
                    "coordinator-crash-window")
    )
    decisions = []
    for plan in plans:
        decisions.append(
            [plan.should_fire(point) for _ in range(400) for point in points]
        )
    assert decisions[0] == decisions[1]
    assert any(decisions[0])  # the schedule is not vacuously quiet


# ----------------------------------------------------------------------
# CLI entry point
# ----------------------------------------------------------------------
def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="one seed, short storm (the CI chaos-cluster smoke)",
    )
    parser.add_argument(
        "--duration", type=float, default=None,
        help="storm duration in seconds (default 1.5 smoke / 4.0 full)",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="run a single fault-schedule seed instead of the grid",
    )
    parser.add_argument(
        "--no-json", action="store_true",
        help="skip appending to BENCH_chaos_cluster.json",
    )
    args = parser.parse_args(argv)

    seeds = (
        (args.seed,) if args.seed is not None
        else SMOKE_SEEDS if args.smoke else SEEDS
    )
    duration = args.duration or (1.5 if args.smoke else 4.0)

    print(
        f"== chaos soak: {SHARDS} shards, MPL {MPL}, {CUSTOMERS} customers, "
        f"{duration:.1f}s storm, seeds {list(seeds)} =="
    )
    failures = 0
    for seed in seeds:
        result = run_chaos(soak_config(seed=seed, duration=duration))
        print("  " + describe(result))
        if not result.ok:
            failures += 1
        if not args.no_json:
            record = result.to_record()
            record["timestamp"] = time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            )
            record["mode"] = "smoke" if args.smoke else "full"
            append_bench_record(record)
    if not args.no_json:
        print(f"appended {len(seeds)} run record(s) to {BENCH_JSON.name}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
