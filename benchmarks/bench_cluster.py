"""Cluster benchmark: SmallBank TPS vs shard count at fixed MPL.

For each shard count the same closed-system :class:`ThreadedDriver` run
(uniform five-program SmallBank mix, so ~20 % Amalgamates generate
cross-shard traffic) is driven through the shard router against an
in-process :class:`~repro.cluster.Cluster` — or, with ``--procs``,
against a multi-process :class:`~repro.cluster.ShardFleet` (one OS
process per shard) driven by several load-generator subprocesses, so
neither the servers nor the clients share a GIL and TPS can actually
scale with shard count on a multi-core host.  Each point reports:

* **TPS** and aborts at the fixed MPL,
* the **fast-path ratio** — the fraction of commits that were
  single-shard and therefore skipped 2PC entirely (COMMIT piggybacked on
  the last statement, no PREPARE round), and
* the router's raw ``fastpath_commits`` / ``twopc_commits`` /
  ``twopc_aborts`` counters.

A separate paired microbenchmark quantifies the **2PC overhead** on a
2-shard cluster: the same connection alternately commits single-shard
deposits (fast path) and cross-shard transfers (presumed-abort 2PC:
per-shard PREPARE, then decision broadcast), and the per-transaction
latency ratio is the measured price of the second round trip plus the
prepare record fsync.

Results are appended to ``BENCH_cluster.json`` at the repo root (CI
uploads it as an artifact).  CI smoke::

    PYTHONPATH=src python benchmarks/bench_cluster.py --smoke

full grid::

    PYTHONPATH=src python benchmarks/bench_cluster.py

or via pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_cluster.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import subprocess
import sys
import time
from pathlib import Path

from repro.cluster import Cluster, ShardFleet
from repro.smallbank import get_strategy
from repro.workload.driver import ThreadedDriver, ThreadedDriverConfig

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_cluster.json"

SHARDS = (1, 2, 4)
SMOKE_SHARDS = (1, 2)
MPL = 8
SMOKE_MPL = 4
CUSTOMERS = 100
MIX = "uniform"
STRATEGY = "base-si"
#: Load-generator subprocesses per multiproc measurement point; the MPL
#: is split across them so client-side work doesn't serialize on one GIL.
LOADGENS = 4
#: Each loadgen leases gtids from a disjoint base so cross-process gtids
#: can never collide (labels stay ``g<digits>`` for the merged MVSG).
GTID_STRIDE = 10**9


def _driver_config(mpl: int, duration: float) -> ThreadedDriverConfig:
    return ThreadedDriverConfig(
        mpl=mpl,
        customers=CUSTOMERS,
        hotspot=10,
        mix=MIX,
        duration=duration,
        seed=7,
    )


def measure_shards(shard_count: int, mpl: int, duration: float) -> dict:
    """One driver run against a ``shard_count``-shard cluster."""
    with Cluster(shard_count, customers=CUSTOMERS, isolation="si") as cluster:
        conn = cluster.connect()
        try:
            stats = ThreadedDriver(
                None,
                get_strategy(STRATEGY).transactions(),
                _driver_config(mpl, duration),
                connection=conn,
            ).run()
            conn.flush()
            counters = conn.counters()
        finally:
            conn.close()
    decided = (
        counters["fastpath_commits"]
        + counters["twopc_commits"]
        + counters["twopc_aborts"]
    )
    return {
        "tps": round(stats.tps, 1),
        "aborts": stats.abort_count(),
        "counters": counters,
        "fastpath_ratio": round(
            counters["fastpath_commits"] / decided, 4
        ) if decided else 1.0,
    }


def _loadgen(args) -> int:
    """Hidden ``--loadgen`` mode: one client subprocess of a multiproc
    measurement point.  Drives the standard mix against an existing
    fleet and prints its slice of the results as one RESULT line."""
    from repro.cluster import ClusterConnection

    addresses = [
        (host, int(port))
        for host, port in (
            hostport.rsplit(":", 1)
            for hostport in args.url[len("cluster://") :].split(",")
        )
    ]
    conn = ClusterConnection(
        addresses, url=args.url, gtid_base=args.gtid_base
    )
    try:
        config = ThreadedDriverConfig(
            mpl=args.mpl,
            customers=CUSTOMERS,
            hotspot=10,
            mix=MIX,
            duration=args.duration,
            seed=args.seed,
        )
        stats = ThreadedDriver(
            None, get_strategy(STRATEGY).transactions(), config,
            connection=conn,
        ).run()
        conn.flush()
        counters = conn.counters()
    finally:
        conn.close()
    print(
        "RESULT "
        + json.dumps(
            {
                "tps": stats.tps,
                "commits": stats.total_commits,
                "aborts": stats.abort_count(),
                "counters": counters,
            },
            sort_keys=True,
        ),
        flush=True,
    )
    return 0


def measure_shards_multiproc(
    shard_count: int, mpl: int, duration: float
) -> dict:
    """One multiproc measurement point: ``shard_count`` server processes
    plus :data:`LOADGENS` client subprocesses splitting the MPL."""
    loadgens = min(LOADGENS, mpl)
    shares = [
        mpl // loadgens + (1 if i < mpl % loadgens else 0)
        for i in range(loadgens)
    ]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    with ShardFleet(
        shard_count, customers=CUSTOMERS, isolation="si", record=False
    ) as fleet:
        procs = [
            subprocess.Popen(
                [
                    sys.executable,
                    __file__,
                    "--loadgen",
                    "--url",
                    fleet.url,
                    "--loadgen-mpl",
                    str(share),
                    "--duration",
                    str(duration),
                    "--seed",
                    str(7 + i),
                    "--gtid-base",
                    str((i + 1) * GTID_STRIDE),
                ],
                stdout=subprocess.PIPE,
                env=env,
                text=True,
            )
            for i, share in enumerate(shares)
        ]
        results = []
        for proc in procs:
            out, _ = proc.communicate(timeout=duration * 20 + 120)
            if proc.returncode != 0:
                raise RuntimeError(
                    f"loadgen exited {proc.returncode}; output: {out!r}"
                )
            for line in out.splitlines():
                if line.startswith("RESULT "):
                    results.append(json.loads(line[len("RESULT ") :]))
                    break
            else:
                raise RuntimeError(f"no RESULT line in loadgen output: {out!r}")
    if fleet.alive_count or fleet.kill_count:
        raise RuntimeError(
            f"shard process leak: {fleet.alive_count} alive, "
            f"{fleet.kill_count} force-killed"
        )
    counters = {
        key: sum(result["counters"].get(key, 0) for result in results)
        for key in results[0]["counters"]
    }
    decided = (
        counters["fastpath_commits"]
        + counters["twopc_commits"]
        + counters["twopc_aborts"]
    )
    return {
        "tps": round(sum(result["tps"] for result in results), 1),
        "aborts": sum(result["aborts"] for result in results),
        "counters": counters,
        "loadgens": loadgens,
        "fastpath_ratio": round(
            counters["fastpath_commits"] / decided, 4
        ) if decided else 1.0,
    }


def measure_2pc_overhead(
    iterations: int, shard_count: int = 2, *, procs: bool = False
) -> dict:
    """Paired per-transaction latency: fast path vs cross-shard 2PC.

    Customer 1 lives on shard 1 and customer 2 on shard 0 (modular map),
    so the deposit commits via the single-shard fast path while the
    transfer's two writes force PREPARE on both shards plus the decision
    broadcast.  Interleaving the two keeps machine noise symmetric.
    """
    fast: "list[float]" = []
    twopc: "list[float]" = []
    cluster_factory = (
        (lambda: ShardFleet(
            shard_count, customers=CUSTOMERS, isolation="si", record=False
        ))
        if procs
        else (lambda: Cluster(shard_count, customers=CUSTOMERS, isolation="si"))
    )
    with cluster_factory() as cluster:
        conn = cluster.connect()
        try:
            session = conn.session()
            for i in range(iterations):
                start = time.perf_counter()
                session.begin("FastDeposit")
                session.update("Checking", 1, {"Balance": float(i)})
                session.commit()
                fast.append(time.perf_counter() - start)

                start = time.perf_counter()
                session.begin("CrossTransfer")
                session.update("Checking", 1, {"Balance": float(i) + 1.0})
                session.update("Checking", 2, {"Balance": float(i) + 2.0})
                session.commit()
                twopc.append(time.perf_counter() - start)
            session.close()
            counters = conn.counters()
        finally:
            conn.close()
    assert counters["fastpath_commits"] == iterations
    assert counters["twopc_commits"] == iterations
    fast_us = statistics.median(fast) * 1e6
    twopc_us = statistics.median(twopc) * 1e6
    return {
        "iterations": iterations,
        "fastpath_us": round(fast_us, 1),
        "twopc_us": round(twopc_us, 1),
        "overhead": round(twopc_us / max(fast_us, 1e-9), 2),
    }


def run_curve(
    shards: "tuple[int, ...]",
    mpl: int,
    duration: float,
    rounds: int = 3,
    *,
    procs: bool = False,
) -> dict:
    """Median-of-rounds TPS per shard count, rounds interleaved so
    machine-wide noise hits every shard count equally."""
    measure = measure_shards_multiproc if procs else measure_shards
    samples: dict = {str(s): [] for s in shards}
    for _ in range(rounds):
        for shard_count in shards:
            samples[str(shard_count)].append(
                measure(shard_count, mpl, duration)
            )
    out: dict = {"mpl": mpl, "rounds": rounds, "points": {}}
    for shard_count in shards:
        key = str(shard_count)
        runs = samples[key]
        out["points"][key] = {
            "tps": statistics.median(r["tps"] for r in runs),
            "aborts": max(r["aborts"] for r in runs),
            "fastpath_ratio": statistics.median(
                r["fastpath_ratio"] for r in runs
            ),
            "counters": runs[-1]["counters"],
        }
    base = out["points"][str(shards[0])]["tps"]
    for key, point in out["points"].items():
        point["speedup"] = round(point["tps"] / max(base, 1e-9), 2)
    return out


def append_bench_record(record: dict, path: Path = BENCH_JSON) -> None:
    """Append one run record to the BENCH_cluster.json trajectory."""
    data: dict = {"benchmark": "bench_cluster", "runs": []}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except (ValueError, OSError):
            pass  # corrupt or unreadable trajectory: start fresh
        if not isinstance(data.get("runs"), list):
            data = {"benchmark": "bench_cluster", "runs": []}
    data["runs"].append(record)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


# ----------------------------------------------------------------------
# pytest entry points (not part of tier-1: testpaths excludes benchmarks/)
# ----------------------------------------------------------------------
def test_cluster_makes_progress_at_every_shard_count() -> None:
    for shard_count in (1, 2):
        point = measure_shards(shard_count, mpl=4, duration=0.5)
        assert point["tps"] > 0
        if shard_count == 1:
            # A 1-shard cluster never needs 2PC.
            assert point["counters"]["twopc_commits"] == 0
            assert point["fastpath_ratio"] == 1.0
        else:
            # The uniform mix's Amalgamates produce real 2PC traffic.
            assert point["counters"]["twopc_commits"] > 0
            assert 0.0 < point["fastpath_ratio"] < 1.0


def test_2pc_costs_more_than_the_fast_path() -> None:
    overhead = measure_2pc_overhead(iterations=50)
    assert overhead["overhead"] > 1.0


# ----------------------------------------------------------------------
# CLI entry point
# ----------------------------------------------------------------------
def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced grid (1 and 2 shards, MPL 4, shorter windows)",
    )
    parser.add_argument(
        "--duration", type=float, default=None,
        help="seconds per TPS measurement point",
    )
    parser.add_argument(
        "--no-json", action="store_true",
        help="skip appending to BENCH_cluster.json",
    )
    parser.add_argument(
        "--procs", action="store_true",
        help="multi-process mode: one OS process per shard, MPL split "
        "across loadgen subprocesses",
    )
    # Hidden plumbing for the multiproc mode's client subprocesses.
    parser.add_argument("--loadgen", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--url", default="", help=argparse.SUPPRESS)
    parser.add_argument(
        "--loadgen-mpl", type=int, default=2, help=argparse.SUPPRESS
    )
    parser.add_argument("--seed", type=int, default=7, help=argparse.SUPPRESS)
    parser.add_argument(
        "--gtid-base", type=int, default=0, help=argparse.SUPPRESS
    )
    args = parser.parse_args(argv)

    if args.loadgen:
        args.mpl = args.loadgen_mpl
        args.duration = args.duration or 1.0
        return _loadgen(args)

    shards = SMOKE_SHARDS if args.smoke else SHARDS
    mpl = SMOKE_MPL if args.smoke else MPL
    duration = args.duration or (0.6 if args.smoke else 1.5)
    rounds = 3
    overhead_iterations = 100 if args.smoke else 400
    cores = os.cpu_count() or 1
    process_model = "multiproc" if args.procs else "inproc"

    print(
        f"== SmallBank {MIX} TPS vs shard count, MPL {mpl}, {process_model} "
        f"({duration:.1f}s/point, median of {rounds} interleaved rounds, "
        f"{cores} cores) =="
    )
    curve = run_curve(shards, mpl, duration, rounds=rounds, procs=args.procs)
    failures = 0
    for shard_count in shards:
        point = curve["points"][str(shard_count)]
        counters = point["counters"]
        print(
            f"  {shard_count} shard{'s' if shard_count > 1 else ' '}: "
            f"{point['tps']:>8,.0f} tps ({point['speedup']:4.2f}x)   "
            f"fastpath {point['fastpath_ratio']:.1%}   "
            f"2pc {counters['twopc_commits']:>6,d} commits "
            f"/ {counters['twopc_aborts']:,d} aborts"
        )
        if point["tps"] <= 0:
            print(f"FAIL: no progress at {shard_count} shards")
            failures += 1
        if shard_count == 1 and counters["twopc_commits"] > 0:
            print("FAIL: a 1-shard cluster ran 2PC")
            failures += 1
        if shard_count > 1 and counters["twopc_commits"] == 0:
            print(f"FAIL: no cross-shard traffic at {shard_count} shards")
            failures += 1

    # Scaling gate.  Sharding only buys real parallelism when there are
    # cores for the shard processes to land on, so the monotonic-TPS
    # requirement is enforced on multi-core hosts (CI runners); a single
    # core can only check that fan-out overhead didn't regress TPS badly.
    points = [curve["points"][str(s)]["tps"] for s in shards]
    if args.procs and cores >= 2:
        if len(points) > 1 and points[1] < 1.15 * points[0]:
            print(
                f"FAIL: 2-shard TPS {points[1]:.0f} < 1.15x "
                f"1-shard TPS {points[0]:.0f}"
            )
            failures += 1
        for prev, nxt, count in zip(points[1:], points[2:], shards[2:]):
            if nxt < prev:
                print(f"FAIL: TPS fell from {prev:.0f} to {nxt:.0f} "
                      f"at {count} shards")
                failures += 1
    elif len(points) > 1 and points[1] < 0.5 * points[0]:
        print(
            f"FAIL: 2-shard TPS {points[1]:.0f} regressed below 0.5x "
            f"1-shard TPS {points[0]:.0f} (single-core guard)"
        )
        failures += 1

    print("== 2PC overhead (paired single-shard vs cross-shard commits) ==")
    overhead = measure_2pc_overhead(overhead_iterations, procs=args.procs)
    print(
        f"  fast path {overhead['fastpath_us']:7.1f}us   "
        f"2PC {overhead['twopc_us']:7.1f}us   "
        f"({overhead['overhead']:.2f}x per transaction)"
    )
    if overhead["overhead"] <= 1.0:
        print("FAIL: 2PC measured no more expensive than the fast path")
        failures += 1

    if not args.no_json:
        append_bench_record(
            {
                "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
                "mode": "smoke" if args.smoke else "full",
                "process_model": process_model,
                "cores": cores,
                "mix": MIX,
                "strategy": STRATEGY,
                "curve": curve,
                "twopc_overhead": overhead,
            }
        )
        print(f"appended run record to {BENCH_JSON.name}")

    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
