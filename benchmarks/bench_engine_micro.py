"""Micro-benchmarks of the substrate itself (real wall-clock timings).

Not paper figures — these track the engine/analysis layers' raw speed so
regressions in the substrate are visible independently of the simulation.
"""

from __future__ import annotations

import random

from repro.analysis import MultiVersionSerializationGraph, record_database
from repro.core import build_sdg
from repro.engine import EngineConfig, Session
from repro.smallbank import (
    PopulationConfig,
    build_database,
    customer_name,
    get_strategy,
    smallbank_specs,
)


def test_snapshot_read(benchmark):
    db = build_database(population=PopulationConfig(customers=100))
    session = Session(db)
    session.begin()

    benchmark(lambda: session.select("Saving", 42))


def test_update_commit_cycle(benchmark):
    db = build_database(population=PopulationConfig(customers=100))

    def cycle():
        session = Session(db)
        session.begin("bench")
        session.update("Checking", 7, lambda r: {"Balance": r["Balance"] + 1})
        session.commit()

    benchmark(cycle)


def test_writecheck_transaction(benchmark):
    db = build_database(population=PopulationConfig(customers=100))
    txns = get_strategy("base-si").transactions()
    name = customer_name(13)

    def run():
        txns.run(Session(db), "WriteCheck", {"N": name, "V": 1.0})

    benchmark(run)


def test_sdg_construction(benchmark):
    specs = smallbank_specs()
    sdg = benchmark(lambda: build_sdg(specs))
    assert not sdg.is_si_serializable()


def test_strategy_application(benchmark):
    strategy = get_strategy("materialize-all")
    specs, mods = benchmark(strategy.apply)
    assert len(mods) == 6


def test_mvsg_checking_of_large_history(benchmark):
    """Build + cycle-check an MVSG over a few thousand transactions."""
    db = build_database(
        EngineConfig.postgres(), PopulationConfig(customers=50)
    )
    recorder = record_database(db)
    rng = random.Random(3)
    txns = get_strategy("base-si").transactions()
    for _ in range(2000):
        session = Session(db)
        cid = rng.randint(1, 50)
        txns.run(
            session,
            "DepositChecking",
            {"N": customer_name(cid), "V": 1.0},
        )
    history = list(recorder.committed)

    def check():
        graph = MultiVersionSerializationGraph(history)
        return graph.find_cycle()

    assert benchmark(check) is None
