"""Figure 4: eliminating ALL vulnerable edges (PostgreSQL)."""

from __future__ import annotations

from benchmarks.conftest import bench_figure, reduced
from repro.bench.figures import FIG4


def test_fig4(benchmark):
    result = bench_figure(benchmark, reduced(FIG4))
    assert result.all_claims_hold, result.render()
