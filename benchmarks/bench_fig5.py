"""Figure 5: eliminating the BW and WT vulnerabilities (PostgreSQL)."""

from __future__ import annotations

from benchmarks.conftest import bench_figure, reduced
from repro.bench.figures import FIG5


def test_fig5(benchmark):
    result = bench_figure(benchmark, reduced(FIG5))
    assert result.all_claims_hold, result.render()
