"""Figure 6: per-program abort rates at MPL 20 (PostgreSQL)."""

from __future__ import annotations

from benchmarks.conftest import bench_figure
from repro.bench.figures import FIG6


def test_fig6(benchmark):
    result = bench_figure(benchmark, FIG6, repetitions=2, measure=2.0)
    assert result.all_claims_hold, result.render()
