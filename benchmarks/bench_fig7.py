"""Figure 7: high contention (hotspot 10, 60% Balance; PostgreSQL)."""

from __future__ import annotations

from benchmarks.conftest import bench_figure, reduced
from repro.bench.figures import FIG7


def test_fig7(benchmark):
    result = bench_figure(benchmark, reduced(FIG7, mpls=(5, 15, 25, 30)))
    assert result.all_claims_hold, result.render()
