"""Figure 9: BW strategies on the commercial platform."""

from __future__ import annotations

from benchmarks.conftest import bench_figure, reduced
from repro.bench.figures import FIG9


def test_fig9(benchmark):
    result = bench_figure(
        benchmark, reduced(FIG9, mpls=(1, 10, 15, 20, 25, 30))
    )
    assert result.all_claims_hold, result.render()
