"""Network service benchmark: SmallBank TPS over the wire vs in-process.

For each MPL the same closed-system :class:`ThreadedDriver` run (SmallBank
``balance60`` mix, base-SI strategy, the paper's hotspot population) is
measured twice:

* **local** — driver threads on in-process engine sessions
  (``repro.connect("local://")``), and
* **net** — driver threads on pooled :class:`NetworkSession` proxies
  against a :class:`DatabaseServer` on loopback
  (``repro.connect("tcp://127.0.0.1:<port>")``).  The server runs on an
  event-loop thread in this process by default; ``run_curves`` can also
  target a ``python -m repro.net`` *subprocess* (separate interpreter,
  no shared GIL) — see its docstring for the single- vs multi-core
  tradeoff.

The per-MPL ratio is the measured cost of the service layer: framing,
JSON, syscalls and one scheduler hop per statement.  On loopback it is
bounded (acceptance: over-the-wire TPS within 5x of in-process at MPL 8)
— the point of the pairing is that the *shape* of the contention curves
survives the wire, which is what makes over-the-wire experiments
comparable to the in-process figures.

The run also asserts the server's robustness contract: after every
driver run the server reports zero active connections/sessions and zero
active transactions (nothing leaked), and it shuts down cleanly.

Results are appended to ``BENCH_net.json`` at the repo root (CI uploads
it as an artifact).  CI smoke::

    PYTHONPATH=src python benchmarks/bench_net.py --smoke

full grid::

    PYTHONPATH=src python benchmarks/bench_net.py

or via pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_net.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import subprocess
import sys
import time
from pathlib import Path

import repro
from repro.engine import EngineConfig
from repro.obs import Observability
from repro.net import DatabaseServer
from repro.smallbank import PopulationConfig, build_database, get_strategy
from repro.workload.driver import ThreadedDriver, ThreadedDriverConfig

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_net.json"

MPLS = (1, 4, 8, 16, 30)
SMOKE_MPLS = (1, 8)
CUSTOMERS = 100
MIX = "balance60"

#: Smoke mode still enforces the tentpole acceptance bound at MPL 8; the
#: full run uses the same bound (loopback typically lands well under it).
MAX_SLOWDOWN = 5.0


def _driver_config(mpl: int, duration: float) -> ThreadedDriverConfig:
    return ThreadedDriverConfig(
        mpl=mpl,
        customers=CUSTOMERS,
        hotspot=10,
        mix=MIX,
        duration=duration,
        seed=7,
    )


def measure_local(mpl: int, duration: float) -> dict:
    db = build_database(EngineConfig.postgres(), PopulationConfig(customers=CUSTOMERS))
    conn = repro.connect("local://", database=db)
    driver = ThreadedDriver(
        None, get_strategy("base-si").transactions(),
        _driver_config(mpl, duration), connection=conn,
    )
    stats = driver.run()
    conn.close()
    return {"tps": round(stats.tps, 1), "aborts": stats.abort_count()}


def measure_net(mpl: int, duration: float, obs: "Observability | None" = None) -> dict:
    db = build_database(EngineConfig.postgres(), PopulationConfig(customers=CUSTOMERS))
    server = DatabaseServer(
        db, max_connections=mpl + 2, obs=obs
    ).start_in_thread()
    try:
        conn = repro.connect(
            f"tcp://127.0.0.1:{server.port}", pool_size=mpl, timeout=30.0
        )
        driver = ThreadedDriver(
            None, get_strategy("base-si").transactions(),
            _driver_config(mpl, duration), connection=conn,
        )
        stats = driver.run()
        conn.close()
    finally:
        # Graceful shutdown drains every handler (and raises on leaked
        # connections); the counters below are read on the quiesced server.
        server.shutdown()
    server_stats = server.stats()
    leaked = {
        "connections": server_stats["connections_active"],
        "transactions": server_stats["active_transactions"],
        "sessions": server_stats["sessions_opened"] - server_stats["sessions_closed"],
    }
    return {
        "tps": round(stats.tps, 1),
        "aborts": stats.abort_count(),
        "rpcs": server_stats["rpcs_total"],
        "leaked": leaked,
    }


def _spawn_server(mpl: int) -> "tuple[subprocess.Popen, int]":
    """Launch ``python -m repro.net`` and wait for its LISTENING line."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.net",
            "--customers", str(CUSTOMERS),
            "--isolation", "si",
            "--max-connections", str(mpl + 2),
        ],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE, env=env, text=True,
    )
    line = proc.stdout.readline()
    if not line.startswith("LISTENING "):
        proc.kill()
        raise RuntimeError(f"server subprocess failed to start: {line!r}")
    return proc, int(line.split()[1])


def measure_net_process(mpl: int, duration: float) -> dict:
    """Over-the-wire measurement against a server *subprocess*.

    This is the configuration the acceptance ratio is defined on: driver
    threads and the server loop in separate interpreters (no shared GIL),
    which is how the service layer actually deploys.  The subprocess
    shuts down gracefully on stdin EOF and reports its final counters on
    stdout, so the leak assertions hold here too.
    """
    proc, port = _spawn_server(mpl)
    try:
        conn = repro.connect(
            f"tcp://127.0.0.1:{port}", pool_size=mpl, timeout=30.0
        )
        driver = ThreadedDriver(
            None, get_strategy("base-si").transactions(),
            _driver_config(mpl, duration), connection=conn,
        )
        stats = driver.run()
        conn.close()
        proc.stdin.close()  # EOF → graceful shutdown → STATS line
        tail = proc.stdout.read()
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:  # pragma: no cover - crash path
            proc.kill()
    stats_lines = [l for l in tail.splitlines() if l.startswith("STATS ")]
    if not stats_lines:
        raise RuntimeError(
            f"server subprocess exited {proc.returncode} without final stats"
        )
    server_stats = json.loads(stats_lines[-1][len("STATS "):])
    return {
        "tps": round(stats.tps, 1),
        "aborts": stats.abort_count(),
        "rpcs": server_stats["rpcs_total"],
        "leaked": {
            "connections": server_stats["connections_active"],
            "transactions": server_stats["active_transactions"],
            "sessions": server_stats["sessions_opened"] - server_stats["sessions_closed"],
        },
    }


def run_curves(
    mpls: "tuple[int, ...]", duration: float, rounds: int = 3,
    server_process: bool = False,
) -> dict:
    """Measure both backends at each MPL, ``rounds`` times, interleaved.

    Local and net are measured back-to-back within a round so that
    machine-wide noise (CPU contention from neighbours) hits both sides
    of a ratio; the reported TPS is the per-backend median across rounds
    and the reported ratio is the *median of per-round ratios* — the
    statistic the acceptance bound is checked against.

    ``server_process=True`` runs the server as a subprocess instead of a
    thread.  On multi-core hosts that is both more realistic and faster
    (client and server stop sharing a GIL); on a single-core host the
    extra kernel context switch per round trip makes it strictly slower,
    so the default keeps the server in-process.
    """
    measure = measure_net_process if server_process else measure_net
    samples: dict = {
        "local": {str(m): [] for m in mpls},
        "net": {str(m): [] for m in mpls},
    }
    ratios: dict = {str(m): [] for m in mpls}
    for _ in range(rounds):
        for mpl in mpls:
            local = measure_local(mpl, duration)
            net = measure(mpl, duration)
            samples["local"][str(mpl)].append(local)
            samples["net"][str(mpl)].append(net)
            ratios[str(mpl)].append(local["tps"] / max(net["tps"], 1e-9))
    out: dict = {"local": {}, "net": {}, "ratio": {}, "rounds": rounds}
    for mpl in mpls:
        key = str(mpl)
        local_tps = statistics.median(s["tps"] for s in samples["local"][key])
        net_tps = statistics.median(s["tps"] for s in samples["net"][key])
        out["local"][key] = {
            "tps": local_tps,
            "aborts": max(s["aborts"] for s in samples["local"][key]),
        }
        out["net"][key] = {
            "tps": net_tps,
            "aborts": max(s["aborts"] for s in samples["net"][key]),
            "rpcs": max(s["rpcs"] for s in samples["net"][key]),
            "leaked": {
                field: max(s["leaked"][field] for s in samples["net"][key])
                for field in ("connections", "transactions", "sessions")
            },
        }
        out["ratio"][key] = round(statistics.median(ratios[key]), 2)
    return out


def rpc_latency_snapshot(mpl: int, duration: float) -> dict:
    """One instrumented over-the-wire run: per-RPC service-time summary."""
    obs = Observability()
    result = measure_net(mpl, duration, obs=obs)
    h = obs.metrics.histogram("repro_net_rpc_seconds")
    return {
        "mpl": mpl,
        "tps": result["tps"],
        "rpcs": result["rpcs"],
        "rpc_service_time": {
            "count": h.count,
            "mean_us": round(h.mean * 1e6, 1),
            "p50_us": round(h.p50 * 1e6, 1),
            "p95_us": round(h.p95 * 1e6, 1),
            "p99_us": round(h.p99 * 1e6, 1),
        },
    }


def append_bench_record(record: dict, path: Path = BENCH_JSON) -> None:
    """Append one run record to the BENCH_net.json trajectory."""
    data: dict = {"benchmark": "bench_net", "runs": []}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except (ValueError, OSError):
            pass  # corrupt or unreadable trajectory: start fresh
        if not isinstance(data.get("runs"), list):
            data = {"benchmark": "bench_net", "runs": []}
    data["runs"].append(record)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


# ----------------------------------------------------------------------
# pytest entry points (not part of tier-1: testpaths excludes benchmarks/)
# ----------------------------------------------------------------------
def test_wire_tps_within_bound_of_local() -> None:
    curves = run_curves((8,), duration=0.6, rounds=3)
    assert curves["net"]["8"]["tps"] > 0, "no progress over the wire"
    slowdown = curves["ratio"]["8"]
    assert slowdown <= MAX_SLOWDOWN, (
        f"over-the-wire slowdown {slowdown:.2f}x (median of 3 interleaved "
        f"rounds) exceeds {MAX_SLOWDOWN}x (local {curves['local']['8']['tps']}, "
        f"net {curves['net']['8']['tps']})"
    )


def test_server_leaks_nothing_after_driver_run() -> None:
    net = measure_net(8, duration=0.5)
    assert net["leaked"] == {"connections": 0, "transactions": 0, "sessions": 0}


# ----------------------------------------------------------------------
# CLI entry point
# ----------------------------------------------------------------------
def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced grid (MPL 1, 8) with shorter measurement windows",
    )
    parser.add_argument(
        "--duration", type=float, default=None,
        help="seconds per TPS measurement point",
    )
    parser.add_argument(
        "--no-json", action="store_true",
        help="skip appending to BENCH_net.json",
    )
    args = parser.parse_args(argv)

    mpls = SMOKE_MPLS if args.smoke else MPLS
    duration = args.duration or (0.6 if args.smoke else 1.5)

    rounds = 3
    print(f"== SmallBank {MIX} TPS, in-process vs over-the-wire "
          f"({duration:.1f}s/point, median of {rounds} interleaved rounds) ==")
    curves = run_curves(mpls, duration, rounds=rounds)
    failures = 0
    for mpl in mpls:
        local = curves["local"][str(mpl)]
        net = curves["net"][str(mpl)]
        ratio = curves["ratio"][str(mpl)]
        print(
            f"  MPL {mpl:>2}: local {local['tps']:>8,.0f} tps   "
            f"net {net['tps']:>8,.0f} tps   ({ratio:4.2f}x slower)   "
            f"rpcs {net['rpcs']:>7,d}"
        )
        if net["leaked"] != {"connections": 0, "transactions": 0, "sessions": 0}:
            print(f"FAIL: MPL {mpl} leaked server state: {net['leaked']}")
            failures += 1

    slowdown = curves["ratio"].get("8", 0.0)
    if "8" in curves["net"]:
        print(f"  MPL-8 slowdown: {slowdown:.2f}x (ceiling {MAX_SLOWDOWN}x)")
        if curves["net"]["8"]["tps"] <= 0:
            print("FAIL: over-the-wire run made no progress at MPL 8")
            failures += 1
        elif slowdown > MAX_SLOWDOWN:
            print(f"FAIL: slowdown {slowdown:.2f}x exceeds {MAX_SLOWDOWN}x ceiling")
            failures += 1

    snapshot_mpl = 8
    print(f"== Server RPC service time (MPL {snapshot_mpl}) ==")
    snapshot = rpc_latency_snapshot(snapshot_mpl, duration)
    svc = snapshot["rpc_service_time"]
    print(
        f"  {svc['count']:,d} RPCs   mean {svc['mean_us']:7.1f}us   "
        f"p95 {svc['p95_us']:7.1f}us   p99 {svc['p99_us']:7.1f}us"
    )

    if not args.no_json:
        append_bench_record(
            {
                "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
                "mode": "smoke" if args.smoke else "full",
                "mix": MIX,
                "tps": curves,
                "mpl8_slowdown": round(slowdown, 2),
                "rpc_latency": snapshot,
            }
        )
        print(f"appended run record to {BENCH_JSON.name}")

    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
