"""Observability smoke benchmark: metrics + trace over real threaded runs.

For each isolation level (SI, S2PL, SSI) this runs the threaded SmallBank
driver with a full :class:`~repro.obs.Observability` installed — metrics
registry *and* trace recorder — and then asserts the acceptance criteria
of the observability layer:

* the response-time and (for blocking configurations) lock-wait latency
  histograms are populated;
* the WAL group-commit batch-size histogram and the SSI abort counter are
  present in both expositions (nonzero where the configuration makes them
  reachable);
* the trace round-trips through JSONL and its rebuilt committed history
  passes the MVSG serializability checker for S2PL / verifies for SI;
* exposition works both ways: ``BENCH_obs_metrics.json`` and
  ``BENCH_obs_metrics.prom`` are written at the repo root (CI uploads
  them as artifacts).

Run the CI smoke version with::

    PYTHONPATH=src python benchmarks/bench_obs.py --smoke

the full version with::

    PYTHONPATH=src python benchmarks/bench_obs.py

or the pytest variant with::

    PYTHONPATH=src python -m pytest benchmarks/bench_obs.py -q
"""

from __future__ import annotations

import argparse
import json
import tempfile
from pathlib import Path

from repro.engine import EngineConfig
from repro.obs import Observability, TraceRecorder
from repro.smallbank import PopulationConfig, build_database, get_strategy
from repro.workload.driver import ThreadedDriver, ThreadedDriverConfig
from repro.workload.retry import RetryPolicy

REPO_ROOT = Path(__file__).resolve().parent.parent
METRICS_JSON = REPO_ROOT / "BENCH_obs_metrics.json"
METRICS_PROM = REPO_ROOT / "BENCH_obs_metrics.prom"

ISOLATION_CONFIGS = {
    "si": EngineConfig.postgres,
    "s2pl": EngineConfig.s2pl,
    "ssi": EngineConfig.ssi,
}


def run_instrumented(
    isolation: str, *, mpl: int, duration: float, customers: int = 50
) -> Observability:
    """One threaded balance60 run with metrics + trace installed."""
    obs = Observability(trace=TraceRecorder())
    db = build_database(
        ISOLATION_CONFIGS[isolation](),
        PopulationConfig(customers=customers),
    )
    driver = ThreadedDriver(
        db,
        get_strategy("base-si").transactions(),
        ThreadedDriverConfig(
            mpl=mpl,
            customers=customers,
            hotspot=5,
            mix="balance60",
            duration=duration,
            seed=11,
            retry=RetryPolicy.exponential(max_attempts=3, base_backoff=0.0005),
        ),
        obs=obs,
    )
    driver.run()
    return obs


def check_run(isolation: str, obs: Observability) -> list[str]:
    """Assert the acceptance criteria; returns failure descriptions."""
    failures: list[str] = []
    m = obs.metrics

    def fail(msg: str) -> None:
        failures.append(f"{isolation}: {msg}")

    rt = m.histogram("repro_response_time_seconds")
    if rt.count == 0:
        fail("response-time histogram is empty")
    if not 0.0 < rt.p95 <= 10.0:
        fail(f"response-time p95 {rt.p95} outside (0, 10s]")
    if isolation == "s2pl":
        lock_wait = m.histogram("repro_lock_wait_seconds")
        if lock_wait.count == 0:
            fail("no lock waits recorded under S2PL at high contention")
    wal_batch = m.histogram("repro_wal_batch_size")
    if wal_batch.count == 0:
        fail("WAL batch-size histogram is empty despite writers committing")
    commits = m.counter("repro_txn_commits_total").value
    if commits == 0:
        fail("no commits counted")

    # Schema presence in both expositions, even for never-fired counters.
    as_json = m.to_json()
    as_prom = m.to_prometheus()
    for name in (
        "repro_wal_batch_size",
        "repro_ssi_aborts_total",
        "repro_response_time_seconds",
        "repro_lock_wait_seconds",
    ):
        if name not in as_json:
            fail(f"{name} missing from JSON exposition")
        if name not in as_prom:
            fail(f"{name} missing from Prometheus exposition")

    # Trace: JSONL round-trip, then MVSG over the rebuilt footprints.
    trace = obs.trace
    assert trace is not None
    if len(trace.events_of("commit")) == 0:
        fail("trace recorded no commit events")
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "trace.jsonl"
        written = trace.dump_jsonl(path)
        reloaded = TraceRecorder.load_jsonl(path)
        if len(reloaded) != written:
            fail(f"JSONL round-trip lost events ({written} -> {len(reloaded)})")
        report = reloaded.check_serializability()
    if report.committed_count != len(trace.events_of("commit")):
        fail("rebuilt committed history does not match traced commits")
    if isolation in ("s2pl", "ssi") and not report.serializable:
        fail(f"MVSG cycle under {isolation}: {report}")
    return failures


# ----------------------------------------------------------------------
# pytest entry points (not part of tier-1: testpaths excludes benchmarks/)
# ----------------------------------------------------------------------
def test_observability_smoke() -> None:
    for isolation in ISOLATION_CONFIGS:
        obs = run_instrumented(isolation, mpl=8, duration=0.5)
        assert check_run(isolation, obs) == []


# ----------------------------------------------------------------------
# CLI entry point
# ----------------------------------------------------------------------
def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="short CI-sized runs"
    )
    parser.add_argument(
        "--no-export", action="store_true",
        help="skip writing BENCH_obs_metrics.{json,prom}",
    )
    args = parser.parse_args(argv)

    mpl = 8 if args.smoke else 16
    duration = 0.5 if args.smoke else 2.0

    all_failures: list[str] = []
    exported: dict[str, dict] = {}
    for isolation in ISOLATION_CONFIGS:
        obs = run_instrumented(isolation, mpl=mpl, duration=duration)
        failures = check_run(isolation, obs)
        all_failures.extend(failures)
        m = obs.metrics
        rt = m.histogram("repro_response_time_seconds")
        lw = m.histogram("repro_lock_wait_seconds")
        wb = m.histogram("repro_wal_batch_size")
        print(
            f"{isolation:<5} commits {int(m.counter('repro_txn_commits_total').value):>6}"
            f"   rt p50/p95 {rt.p50 * 1000:7.3f}/{rt.p95 * 1000:7.3f} ms"
            f"   lock-waits {lw.count:>5} (p95 {lw.p95 * 1000:7.3f} ms)"
            f"   wal batches {wb.count:>5} (mean {wb.mean:4.2f})"
            f"   ssi aborts {int(m.counter('repro_ssi_aborts_total').value)}"
            f"   trace events {len(obs.trace)}"
        )
        exported[isolation] = m.to_json()
        for line in failures:
            print(f"FAIL: {line}")

    if not args.no_export:
        METRICS_JSON.write_text(
            json.dumps(
                {"benchmark": "bench_obs", "mpl": mpl, "metrics": exported},
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        # Prometheus export from the last isolation level's registry is
        # enough to validate the format end to end.
        METRICS_PROM.write_text(m.to_prometheus())
        print(f"wrote {METRICS_JSON.name} and {METRICS_PROM.name}")

    return 1 if all_failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
