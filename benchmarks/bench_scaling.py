"""Scaling benchmark: threaded throughput of the striped, lock-free engine.

Two measurements, both on real OS threads (the GIL serializes the
interpreter, so the engine cannot exceed single-core throughput — what the
benchmark demonstrates is that the lock-free read path and stripe latches
removed the *engine's own* serialization and convoy overhead):

* **SI read microbenchmark** — MPL long-lived snapshot transactions each
  hammer ``Database.read`` on a shared table.  Run twice: once on the
  current engine (lock-free reads) and once on ``GlobalMutexDatabase``, a
  shim that restores the pre-change discipline of one re-entrant mutex
  around every operation.  The ratio at MPL 8 is the PR's headline number.

* **SmallBank TPS curves** — the threaded closed-system driver runs the
  ``readonly`` and ``balance60`` mixes under SI, S2PL and SSI at
  MPL ∈ {1, 4, 8, 16, 30}.

Results are appended to ``BENCH_engine.json`` at the repo root so the
performance trajectory is tracked across PRs (CI uploads it as an
artifact).

Run the CI smoke version (reduced grid, relaxed assertions) with::

    PYTHONPATH=src python benchmarks/bench_scaling.py --smoke

the full version (asserts the >= 3x MPL-8 speedup) with::

    PYTHONPATH=src python benchmarks/bench_scaling.py

or the pytest variant with::

    PYTHONPATH=src python -m pytest benchmarks/bench_scaling.py -q
"""

from __future__ import annotations

import argparse
import itertools
import json
import threading
import time
from pathlib import Path

from repro.engine import EngineConfig
from repro.engine.engine import Database
from repro.obs import Observability
from repro.smallbank import (
    CHECKING,
    PopulationConfig,
    build_database,
    get_strategy,
)
from repro.workload.driver import ThreadedDriver, ThreadedDriverConfig

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_engine.json"

MPLS = (1, 4, 8, 16, 30)
SMOKE_MPLS = (1, 8)
ISOLATION_CONFIGS = {
    "si": EngineConfig.postgres,
    "s2pl": EngineConfig.s2pl,
    "ssi": EngineConfig.ssi,
}


# ----------------------------------------------------------------------
# Legacy shim: the pre-change engine, one global mutex around everything
# ----------------------------------------------------------------------
class GlobalMutexDatabase(Database):
    """The engine as it was before DESIGN.md §9: every operation —
    including every read — serialized behind a single re-entrant mutex,
    with the WAL flush inside the commit critical section.  Used as the
    in-build baseline so both sides of the speedup are measured on the
    same interpreter and the same code underneath."""

    def _init_legacy(self) -> "GlobalMutexDatabase":
        self._legacy_mutex = threading.RLock()
        return self

    def read(self, txn, table_name, key):
        # The seed engine's read(), verbatim shape: global mutex around
        # the full check chain plus the nested _read_snapshot helper (the
        # current engine inlines all of this, mutex-free).
        with self._legacy_mutex:
            self._ensure_not_crashed()
            txn.ensure_active()
            self._check_doomed(txn)
            table = self.catalog.table(table_name)
            row_id = (table_name, key)
            return self._read_snapshot(txn, table, row_id)


def _serialize_through_legacy_mutex(name: str):
    base = getattr(Database, name)

    def op(self, *args, **kwargs):
        with self._legacy_mutex:
            return base(self, *args, **kwargs)

    op.__name__ = name
    op.__qualname__ = f"GlobalMutexDatabase.{name}"
    return op


# "read" is excluded: GlobalMutexDatabase defines the seed-faithful read
# above (mutex + nested helper) rather than wrapping the new flat body.
for _name in (
    "begin",
    "lookup_unique",
    "scan",
    "select_for_update",
    "write",
    "insert",
    "delete",
    "commit",
    "abort",
):
    setattr(GlobalMutexDatabase, _name, _serialize_through_legacy_mutex(_name))


def build_bench_database(
    config: EngineConfig, customers: int, *, legacy: bool = False
) -> Database:
    db = build_database(config, PopulationConfig(customers=customers))
    if legacy:
        # Same populated instance, legacy dispatch: swapping the class is
        # safe (no __slots__, identical layout) and keeps population
        # identical between the two measurements.
        db.__class__ = GlobalMutexDatabase
        db._init_legacy()
    return db


# ----------------------------------------------------------------------
# SI read microbenchmark
# ----------------------------------------------------------------------
def measure_read_rate(
    db: Database, mpl: int, duration: float, customers: int
) -> float:
    """Aggregate ``Database.read`` calls/second across ``mpl`` threads.

    Each thread opens one snapshot transaction and reads Checking rows in
    a cycle for ``duration`` seconds — the pure read path, no commits in
    the timed window.
    """
    barrier = threading.Barrier(mpl + 1)
    stop = threading.Event()
    counts = [0] * mpl
    errors: list[BaseException] = []

    def worker(idx: int) -> None:
        try:
            txn = db.begin(f"bench-reader-{idx}")
            keys = itertools.cycle(range(1, customers + 1))
            read = db.read
            is_set = stop.is_set
            barrier.wait()
            n = 0
            while not is_set():
                read(txn, CHECKING, next(keys))
                n += 1
            counts[idx] = n
            db.abort(txn)
        except BaseException as exc:  # pragma: no cover - diagnostics
            errors.append(exc)
            barrier.abort()

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(mpl)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    time.sleep(duration)
    stop.set()
    elapsed = time.perf_counter() - start
    for t in threads:
        t.join(timeout=30.0)
    if errors:
        raise errors[0]
    return sum(counts) / elapsed


def run_read_scaling(
    mpls: "tuple[int, ...]", duration: float, customers: int = 100
) -> dict:
    """Reads/second by MPL for the lock-free engine and the legacy shim."""
    out: dict = {"lockfree": {}, "legacy": {}}
    for legacy in (False, True):
        side = "legacy" if legacy else "lockfree"
        for mpl in mpls:
            db = build_bench_database(
                EngineConfig.postgres(), customers, legacy=legacy
            )
            out[side][str(mpl)] = round(
                measure_read_rate(db, mpl, duration, customers)
            )
    return out


# ----------------------------------------------------------------------
# SmallBank TPS curves
# ----------------------------------------------------------------------
def measure_tps(
    isolation: str, mpl: int, mix: str, duration: float, customers: int = 100
) -> dict:
    config = ISOLATION_CONFIGS[isolation]()
    db = build_database(config, PopulationConfig(customers=customers))
    driver = ThreadedDriver(
        db,
        get_strategy("base-si").transactions(),
        ThreadedDriverConfig(
            mpl=mpl,
            customers=customers,
            hotspot=10,
            mix=mix,
            duration=duration,
            seed=7,
        ),
    )
    stats = driver.run()
    return {
        "tps": round(stats.tps, 1),
        "aborts": stats.abort_count(),
        "abort_rate": round(stats.abort_rate(), 4),
    }


def run_tps_curves(
    mpls: "tuple[int, ...]", duration: float, mixes: "tuple[str, ...]"
) -> dict:
    out: dict = {}
    for isolation in ISOLATION_CONFIGS:
        out[isolation] = {}
        for mix in mixes:
            out[isolation][mix] = {
                str(mpl): measure_tps(isolation, mpl, mix, duration)
                for mpl in mpls
            }
    return out


# ----------------------------------------------------------------------
# Observability snapshot (latency histograms per isolation level)
# ----------------------------------------------------------------------
def _histogram_summary(h) -> dict:
    return {
        "count": h.count,
        "mean_ms": round(h.mean * 1000, 3),
        "p50_ms": round(h.p50 * 1000, 3),
        "p95_ms": round(h.p95 * 1000, 3),
        "p99_ms": round(h.p99 * 1000, 3),
    }


def collect_metrics_snapshot(
    mpl: int, duration: float, customers: int = 100
) -> dict:
    """Run SI, S2PL and SSI on the balance60 mix with an
    :class:`~repro.obs.Observability` installed and distill the histograms
    the trajectory tracks: response time, lock wait, commit path, WAL
    group-commit batch size and the SSI false-positive abort counter."""
    out: dict = {"mpl": mpl, "mix": "balance60"}
    for isolation in ISOLATION_CONFIGS:
        obs = Observability()
        db = build_database(
            ISOLATION_CONFIGS[isolation](),
            PopulationConfig(customers=customers),
        )
        driver = ThreadedDriver(
            db,
            get_strategy("base-si").transactions(),
            ThreadedDriverConfig(
                mpl=mpl,
                customers=customers,
                hotspot=10,
                mix="balance60",
                duration=duration,
                seed=7,
            ),
            obs=obs,
        )
        driver.run()
        m = obs.metrics
        wal_batch = m.histogram("repro_wal_batch_size")
        out[isolation] = {
            "response_time": _histogram_summary(
                m.histogram("repro_response_time_seconds")
            ),
            "lock_wait": _histogram_summary(
                m.histogram("repro_lock_wait_seconds")
            ),
            "commit_path": _histogram_summary(
                m.histogram("repro_commit_path_seconds")
            ),
            "wal_batch": {
                "count": wal_batch.count,
                "mean": round(wal_batch.mean, 2),
                "p95": round(wal_batch.p95, 2),
            },
            "lock_waits": int(m.counter("repro_lock_waits_total").value),
            "ssi_aborts": int(m.counter("repro_ssi_aborts_total").value),
        }
    return out


# ----------------------------------------------------------------------
# Perf-trajectory file
# ----------------------------------------------------------------------
def append_bench_record(record: dict, path: Path = BENCH_JSON) -> None:
    """Append one run record to the BENCH_engine.json trajectory."""
    data: dict = {"benchmark": "bench_scaling", "runs": []}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except (ValueError, OSError):
            pass  # corrupt or unreadable trajectory: start fresh
        if not isinstance(data.get("runs"), list):
            data = {"benchmark": "bench_scaling", "runs": []}
    data["runs"].append(record)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


# ----------------------------------------------------------------------
# pytest entry points (not part of tier-1: testpaths excludes benchmarks/)
# ----------------------------------------------------------------------
def test_lockfree_reads_beat_global_mutex() -> None:
    """MPL-8 SI reads must clearly outscale the single-mutex engine."""
    scaling = run_read_scaling((1, 8), duration=0.6)
    ratio = scaling["lockfree"]["8"] / scaling["legacy"]["8"]
    assert ratio >= 2.0, f"lock-free/legacy MPL-8 ratio {ratio:.2f} < 2.0"


def test_read_throughput_survives_mpl() -> None:
    """No convoy: MPL-8 aggregate read rate stays near the MPL-1 rate."""
    scaling = run_read_scaling((1, 8), duration=0.6)
    retention = scaling["lockfree"]["8"] / scaling["lockfree"]["1"]
    assert retention >= 0.5, f"MPL-8/MPL-1 retention {retention:.2f} < 0.5"


def test_all_isolation_levels_make_progress_threaded() -> None:
    for isolation in ISOLATION_CONFIGS:
        result = measure_tps(isolation, mpl=16, mix="balance60", duration=0.5)
        assert result["tps"] > 0, f"{isolation} made no progress at MPL 16"


# ----------------------------------------------------------------------
# CLI entry point
# ----------------------------------------------------------------------
def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced grid + CI-safe assertion margins",
    )
    parser.add_argument(
        "--read-duration", type=float, default=None,
        help="seconds per read-microbenchmark point",
    )
    parser.add_argument(
        "--tps-duration", type=float, default=None,
        help="seconds per driver TPS point",
    )
    parser.add_argument(
        "--no-json", action="store_true",
        help="skip appending to BENCH_engine.json",
    )
    args = parser.parse_args(argv)

    mpls = SMOKE_MPLS if args.smoke else MPLS
    read_duration = args.read_duration or (0.6 if args.smoke else 1.0)
    tps_duration = args.tps_duration or (0.5 if args.smoke else 1.0)
    mixes = ("readonly",) if args.smoke else ("readonly", "balance60")
    # Full mode asserts the PR's acceptance ratio; smoke keeps a margin
    # wide enough for noisy shared CI runners.
    min_ratio = 1.5 if args.smoke else 3.0
    min_retention = 0.5 if args.smoke else 0.6

    print(f"== SI read microbenchmark (reads/s, {read_duration:.1f}s/point) ==")
    scaling = run_read_scaling(mpls, read_duration)
    for mpl in mpls:
        lockfree = scaling["lockfree"][str(mpl)]
        legacy = scaling["legacy"][str(mpl)]
        print(
            f"  MPL {mpl:>2}: lock-free {lockfree:>9,d}/s   "
            f"global-mutex {legacy:>9,d}/s   ({lockfree / legacy:4.2f}x)"
        )
    ratio = scaling["lockfree"]["8"] / scaling["legacy"]["8"]
    retention = scaling["lockfree"]["8"] / scaling["lockfree"]["1"]
    print(f"  MPL-8 lock-free vs global-mutex: {ratio:.2f}x (floor {min_ratio}x)")
    print(f"  MPL-8 / MPL-1 retention:         {retention:.2f} (floor {min_retention})")

    print(f"== SmallBank threaded TPS ({tps_duration:.1f}s/point) ==")
    curves = run_tps_curves(mpls, tps_duration, mixes)
    for isolation, by_mix in curves.items():
        for mix, by_mpl in by_mix.items():
            points = "  ".join(
                f"mpl{mpl}={by_mpl[str(mpl)]['tps']:.0f}" for mpl in mpls
            )
            print(f"  {isolation:<5} {mix:<10} {points}")

    metrics_mpl = 8 if args.smoke else 20
    print(f"== Latency histograms (balance60, MPL {metrics_mpl}) ==")
    metrics = collect_metrics_snapshot(metrics_mpl, tps_duration)
    for isolation in ISOLATION_CONFIGS:
        snap = metrics[isolation]
        print(
            f"  {isolation:<5} rt p95 {snap['response_time']['p95_ms']:8.3f}ms"
            f"   lock-wait p95 {snap['lock_wait']['p95_ms']:8.3f}ms"
            f"   wal batch mean {snap['wal_batch']['mean']:5.2f}"
            f"   ssi aborts {snap['ssi_aborts']}"
        )

    failures = 0
    if ratio < min_ratio:
        print(f"FAIL: MPL-8 speedup {ratio:.2f}x below the {min_ratio}x floor")
        failures += 1
    if retention < min_retention:
        print(f"FAIL: MPL-8/MPL-1 retention {retention:.2f} below {min_retention}")
        failures += 1
    for isolation, by_mix in curves.items():
        for mix, by_mpl in by_mix.items():
            if any(p["tps"] <= 0 for p in by_mpl.values()):
                print(f"FAIL: {isolation}/{mix} made no progress")
                failures += 1

    if not args.no_json:
        append_bench_record(
            {
                "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
                "mode": "smoke" if args.smoke else "full",
                "read_scaling": scaling,
                "mpl8_speedup_vs_global_mutex": round(ratio, 2),
                "mpl8_over_mpl1_retention": round(retention, 2),
                "smallbank_tps": curves,
                "metrics": metrics,
            }
        )
        print(f"appended run record to {BENCH_JSON.name}")

    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
