"""Figures 1-3: the SDG analysis (static derivation benchmark)."""

from __future__ import annotations

from repro.bench.static import render_sdg_figures


def test_sdg_figures(benchmark):
    rendered = benchmark.pedantic(render_sdg_figures, rounds=1, iterations=1)
    print()
    print(rendered)
    assert "Balance -(v)-> WriteCheck -(v)-> TransactSaving" in rendered
    # Every post-fix SDG must certify serializability.
    assert rendered.count("no dangerous structure") == 4
