"""Table I: overview of tables updated with each option (derived)."""

from __future__ import annotations

from repro.bench.static import render_table1
from repro.smallbank.strategies import get_strategy


def test_table1(benchmark):
    rendered = benchmark.pedantic(render_table1, rounds=1, iterations=1)
    print()
    print(rendered)
    # Spot-check the derivation against the paper's printed table.
    assert get_strategy("promote-all").table_one_row()["Balance"] == (
        "Checking",
        "Saving",
    )
    assert "MaterializeALL" in rendered
    assert rendered.count("Conf") >= 9  # 2 (WT) + 2 (BW) + 5 (ALL)
