"""Shared helpers for the figure benchmarks.

Each benchmark regenerates one paper table/figure on a reduced grid
(fewer repetitions and a shorter measurement window than the paper's
5 x 60 s — the *shape* checks are unaffected) and asserts the figure's
qualitative claims.  ``pedantic(rounds=1)`` keeps pytest-benchmark from
re-running multi-second simulations; the recorded time is the cost of
regenerating the figure.

For paper-fidelity numbers run ``python -m repro.bench <figure>
--paper-scale --reps 5 --measure 60 --ramp-up 30``.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.bench.figures import FigureResult, FigureSpec, run_figure

#: Reduced MPL grids per figure (keep endpoints + the knee region).
REDUCED_MPLS = (1, 10, 20, 30)


def reduced(spec: FigureSpec, mpls: "tuple[int, ...] | None" = None) -> FigureSpec:
    if len(spec.mpls) == 1:  # single-point figures (fig6) stay as-is
        return spec
    wanted = mpls if mpls is not None else REDUCED_MPLS
    kept = tuple(m for m in spec.mpls if m in wanted) or spec.mpls
    return replace(spec, mpls=kept)


def bench_figure(
    benchmark,
    spec: FigureSpec,
    *,
    repetitions: int = 1,
    measure: float = 1.5,
) -> FigureResult:
    result = benchmark.pedantic(
        lambda: run_figure(spec, repetitions=repetitions, measure=measure),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    return result


@pytest.fixture
def figure_runner():
    return bench_figure
