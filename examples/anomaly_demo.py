#!/usr/bin/env python3
"""The read-only-transaction anomaly, step by step.

Walks the exact scenario the SmallBank benchmark was contrived around
(Fekete, O'Neil & O'Neil, SIGMOD Record 2004 — reference [19] of the
paper): a customer with $0 in both accounts, a $20 savings deposit, a $10
check, and a balance inquiry that proves no serial order exists.  Then it
shows each class of fix stopping the exact same interleaving, and finally
model-checks *every* interleaving of the scenario.

Run:  python examples/anomaly_demo.py
"""

from repro.analysis import (
    InterleavingExplorer,
    ScriptedProgram,
    SerializabilityChecker,
)
from repro.engine import Database, EngineConfig, Session
from repro.engine.session import NoWaitWaiter, WouldBlock
from repro.errors import TransactionAborted
from repro.smallbank import PopulationConfig, build_database, customer_name, get_strategy

NAME = customer_name(1)


def zeroed_db(config: EngineConfig) -> Database:
    return build_database(
        config,
        PopulationConfig(
            customers=1, min_saving=0, max_saving=0,
            min_checking=0, max_checking=0,
        ),
    )


def drive(db: Database, strategy_key: str) -> str:
    """The anomaly interleaving; returns what happened to WriteCheck."""
    txns = get_strategy(strategy_key).transactions()
    wc = Session(db, waiter=NoWaitWaiter())
    ts = Session(db, waiter=NoWaitWaiter())
    bal = Session(db, waiter=NoWaitWaiter())

    wc.begin("WriteCheck")  # snapshot taken: sees S=0, C=0
    ts.begin("TransactSaving")
    txns.transact_saving(ts, {"N": NAME, "V": 20.0})
    ts.commit()
    print("  TS committed: deposited $20 to savings")

    bal.begin("Balance")
    total = txns.balance(bal, {"N": NAME})
    bal.commit()
    print(f"  Bal committed: saw total = ${total:.0f} (deposit visible)")

    try:
        penalized = txns.write_check(wc, {"N": NAME, "V": 10.0})
        wc.commit()
        outcome = "penalized!" if penalized else "no penalty"
        print(f"  WC committed on its old snapshot: {outcome}")
        return outcome
    except (TransactionAborted, WouldBlock) as exc:
        wc.rollback()
        print(f"  WC could not proceed: {type(exc).__name__}")
        return type(exc).__name__


print("=== Plain SI: the anomaly happens ===")
db = zeroed_db(EngineConfig.postgres())
checker = SerializabilityChecker(db)
outcome = drive(db, "base-si")
report = checker.report()
print(" ", report.describe())
assert outcome == "penalized!"
assert not report.serializable
print(
    "  -> Balance saw $20 total (penalty impossible), yet the penalty "
    "was charged.\n     No serial order of TS, Bal, WC explains both."
)

for strategy_key, label in [
    ("promote-wt-upd", "PromoteWT-upd (identity write on Saving in WC)"),
    ("materialize-bw", "MaterializeBW (Conflict updates in Bal and WC)"),
]:
    print(f"\n=== {label} ===")
    db = zeroed_db(EngineConfig.postgres())
    checker = SerializabilityChecker(db)
    outcome = drive(db, strategy_key)
    report = checker.report()
    print(" ", report.describe())
    assert outcome in ("SerializationFailure", "WouldBlock")
    assert report.serializable

print("\n=== SSI engine (the future-work direction): no program changes ===")
db = zeroed_db(EngineConfig.ssi())
checker = SerializabilityChecker(db)
outcome = drive(db, "base-si")
print(" ", checker.report().describe())
assert checker.report().serializable

print("\n=== Exhaustive check: every interleaving of the scenario ===")


def bal_body(session: Session) -> None:
    session.select("Saving", 1)
    session.select("Checking", 1)


def ts_body(session: Session) -> None:
    session.update("Saving", 1, lambda row: {"Balance": row["Balance"] + 20.0})


def wc_body(session: Session) -> None:
    saving = session.select("Saving", 1)["Balance"]
    checking = session.select("Checking", 1)["Balance"]
    debit = 11.0 if saving + checking < 10.0 else 10.0
    session.update(
        "Checking", 1, lambda row: {"Balance": row["Balance"] - debit}
    )


summary = InterleavingExplorer(
    lambda: zeroed_db(EngineConfig.postgres()),
    [
        ScriptedProgram("Balance", bal_body),
        ScriptedProgram("TransactSaving", ts_body),
        ScriptedProgram("WriteCheck", wc_body),
    ],
).explore()
print(f"  plain SI: {summary.describe()}")
print(f"  anomaly classification counts: {summary.anomaly_counts}")
assert not summary.all_serializable

summary = InterleavingExplorer(
    lambda: zeroed_db(EngineConfig.ssi()),
    [
        ScriptedProgram("Balance", bal_body),
        ScriptedProgram("TransactSaving", ts_body),
        ScriptedProgram("WriteCheck", wc_body),
    ],
).explore()
print(f"  SSI engine: {summary.describe()}")
assert summary.all_serializable
print("\nAll assertions passed.")
