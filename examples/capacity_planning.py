#!/usr/bin/env python3
"""Capacity planning with the simulator: choosing a strategy for *your* SLA.

The paper's guidelines say which vulnerable edge to fix; this example
shows how to quantify the decision for a given deployment: sweep MPL for
the candidate strategies on both platform models, then report peak
throughput, throughput at the operating point, and the response-time cost.

Run:  python examples/capacity_planning.py            (about a minute)
      python examples/capacity_planning.py --fast     (coarser sweep)
"""

import sys

from repro.sim import SimulationConfig, run_replicated

FAST = "--fast" in sys.argv
MPLS = (5, 15, 25) if FAST else (1, 5, 10, 15, 20, 25, 30)
REPS = 1 if FAST else 2
CANDIDATES = ("base-si", "promote-wt-upd", "materialize-wt", "promote-bw-upd")
OPERATING_MPL = 15


def sweep(platform: str) -> dict[str, dict[int, object]]:
    table: dict[str, dict[int, object]] = {}
    for strategy in CANDIDATES:
        table[strategy] = {}
        for mpl in MPLS:
            table[strategy][mpl] = run_replicated(
                SimulationConfig(
                    strategy=strategy,
                    platform=platform,
                    mpl=mpl,
                    measure=1.0 if FAST else 2.0,
                    ramp_up=0.2,
                ),
                repetitions=REPS,
            )
    return table


for platform in ("postgres", "commercial"):
    print(f"\n=== Platform: {platform} ===")
    table = sweep(platform)
    header = f"{'MPL':>4} " + " ".join(f"{s:>16}" for s in CANDIDATES)
    print(header)
    for mpl in MPLS:
        cells = [f"{table[s][mpl].tps:10.0f} TPS" for s in CANDIDATES]
        print(f"{mpl:>4} " + " ".join(f"{c:>16}" for c in cells))

    print("\nDecision summary:")
    base_peak = max(table["base-si"][mpl].tps for mpl in MPLS)
    for strategy in CANDIDATES[1:]:
        peak = max(table[strategy][mpl].tps for mpl in MPLS)
        at_op = table[strategy][OPERATING_MPL]
        base_op = table["base-si"][OPERATING_MPL]
        print(
            f"  {strategy:>16}: peak {peak:6.0f} TPS "
            f"({peak / base_peak * 100:5.1f}% of SI), "
            f"at MPL {OPERATING_MPL}: {at_op.tps:6.0f} TPS, "
            f"rt {at_op.mean_response_time * 1000:6.2f} ms "
            f"(SI: {base_op.mean_response_time * 1000:6.2f} ms), "
            f"aborts {at_op.abort_rate() * 100:4.1f}%"
        )

print(
    "\nReading the output: on the PostgreSQL model PromoteWT-upd is free; "
    "on the commercial model prefer MaterializeWT or SFU promotion, and "
    "avoid the BW options — exactly the paper's guidelines, now with "
    "numbers for your own operating point."
)
