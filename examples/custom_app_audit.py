#!/usr/bin/env python3
"""Audit-and-fix workflow for your own application mix.

This is the DBA workflow the paper's guidelines describe, applied to an
application that is *not* SmallBank — a small ticket-booking system:

* ``CheckAvailability(e)`` — read-only dashboard over an event's seat
  count and its waitlist length;
* ``BookSeat(e)`` — reads seats and waitlist, decrements seats;
* ``JoinWaitlist(e)`` — reads seats (only full events get a waitlist),
  increments the waitlist row;
* ``CloseEvent(e)`` — zeroes both (reads-then-writes both rows).

The script builds the SDG, finds the dangerous structures, asks the
minimal-fix search for the cheapest repair with each method, applies the
paper's Guideline 2/3 reasoning, and verifies the result.

Run:  python examples/custom_app_audit.py
"""

from repro.core import (
    ProgramSet,
    ProgramSpec,
    build_sdg,
    greedy_fix,
    materialize_all,
    minimal_fix,
    read,
    write,
)

mix = ProgramSet(
    [
        ProgramSpec(
            "CheckAvailability",
            ("e",),
            (read("Seats", "e", "Free"), read("Waitlist", "e", "Len")),
            description="dashboard (read-only)",
        ),
        ProgramSpec(
            "BookSeat",
            ("e",),
            (
                read("Seats", "e", "Free"),
                read("Waitlist", "e", "Len"),
                write("Seats", "e", "Free"),
            ),
            description="take a seat if the waitlist allows it",
        ),
        ProgramSpec(
            "JoinWaitlist",
            ("e",),
            (
                read("Seats", "e", "Free"),
                read("Waitlist", "e", "Len"),
                write("Waitlist", "e", "Len"),
            ),
            description="queue for a full event",
        ),
        ProgramSpec(
            "CloseEvent",
            ("e",),
            (
                read("Seats", "e", "Free"),
                write("Seats", "e", "Free"),
                read("Waitlist", "e", "Len"),
                write("Waitlist", "e", "Len"),
            ),
            description="close an event",
        ),
    ],
    name="ticket-booking",
)

print("=== Step 1: build the SDG ===")
sdg = build_sdg(mix)
print(sdg.describe())
print()
print("Graphviz available via sdg.to_dot():")
print(sdg.to_dot())

assert not sdg.is_si_serializable(), "this mix is intentionally unsafe"
structures = sdg.dangerous_structures()
print(f"\n{len(structures)} dangerous structures; pivots: {sdg.pivots()}")

print("\n=== Step 2: minimal fixes per method ===")
for method in ("materialize", "promote-upd"):
    plan = minimal_fix(mix, method=method)
    print(f"  {method:>12}: fix {plan.describe()}")
    fixed_sdg = build_sdg(plan.programs)
    assert fixed_sdg.is_si_serializable()
    readonly_touched = any(
        mix[m.program].is_read_only for m in plan.modifications
    )
    note = (
        "touches a read-only program (Guideline 2 warns about this!)"
        if readonly_touched
        else "keeps read-only programs untouched (good: Guideline 2)"
    )
    print(f"               -> serializable; {note}")

print("\n=== Step 3: greedy heuristic on the same mix ===")
plan = greedy_fix(mix, method="promote-upd")
print(f"  greedy: {plan.describe()}")
assert build_sdg(plan.programs).is_si_serializable()

print("\n=== Step 4: the SDG-blind alternative, for comparison ===")
blind, modifications = materialize_all(mix)
print(
    f"  MaterializeALL needs {len(modifications)} modifications "
    f"(vs {len(plan.modifications)} for the targeted fix) and makes "
    "the dashboard transaction an updater -- the configuration the "
    "paper measured at up to 60% throughput loss."
)
assert build_sdg(blind).is_si_serializable()

print("\nAudit complete: ship the targeted fix, not the blind one.")
