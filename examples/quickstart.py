#!/usr/bin/env python3
"""Quickstart: the library in five minutes.

1. build an SI database and run transactions on it;
2. see Snapshot Isolation allow write skew;
3. analyze a program mix with the Static Dependency Graph;
4. fix the mix with promotion and verify the theorem holds;
5. reproduce one data point of the paper's evaluation.

Run:  python examples/quickstart.py
"""

from repro.analysis import SerializabilityChecker
from repro.core import ProgramSet, ProgramSpec, build_sdg, promote_edge, read, write
from repro.engine import Column, Database, EngineConfig, Session, TableSchema
from repro.sim import SimulationConfig, run_replicated


def section(title: str) -> None:
    print()
    print(f"--- {title} ---")


# ----------------------------------------------------------------------
section("1. An MVCC database with Snapshot Isolation")

accounts = TableSchema(
    name="Accounts",
    columns=(Column("Id", "int"), Column("Balance", "numeric")),
    primary_key="Id",
)
db = Database([accounts], EngineConfig.postgres())
db.load_row("Accounts", {"Id": 1, "Balance": 100.0})
db.load_row("Accounts", {"Id": 2, "Balance": 100.0})

session = Session(db)
session.begin("deposit")
session.update("Accounts", 1, lambda row: {"Balance": row["Balance"] + 50})
session.commit()

session.begin("read")
print("account 1 balance:", session.select("Accounts", 1)["Balance"])
session.commit()

# ----------------------------------------------------------------------
section("2. SI allows write skew (the reason the paper exists)")

checker = SerializabilityChecker(db)

t1, t2 = Session(db), Session(db)
t1.begin("withdraw-from-1")
t2.begin("withdraw-from-2")
# Both enforce the constraint "sum of both accounts >= 0" on their
# snapshot, then update different rows: SI commits both.
for txn in (t1, t2):
    total = (
        txn.select("Accounts", 1)["Balance"]
        + txn.select("Accounts", 2)["Balance"]
    )
    assert total - 200 >= 0
t1.update("Accounts", 1, lambda row: {"Balance": row["Balance"] - 200})
t2.update("Accounts", 2, lambda row: {"Balance": row["Balance"] - 200})
t1.commit()
t2.commit()

report = checker.report()
print(report.describe())
assert not report.serializable and "write-skew" in report.anomalies

# ----------------------------------------------------------------------
section("3. Static analysis: is a program mix safe on SI?")

mix = ProgramSet(
    [
        ProgramSpec(
            "Audit",
            ("x",),
            (read("Accounts", "x", "Balance"), read("Shadow", "x", "Balance")),
        ),
        ProgramSpec(
            "Withdraw",
            ("x",),
            (
                read("Accounts", "x", "Balance"),
                read("Shadow", "x", "Balance"),
                write("Accounts", "x", "Balance"),
            ),
        ),
        ProgramSpec(
            "Reconcile",
            ("x",),
            (read("Shadow", "x", "Balance"), write("Shadow", "x", "Balance")),
        ),
    ],
    name="mini-app",
)
sdg = build_sdg(mix)
print(sdg.describe())
assert not sdg.is_si_serializable()

# ----------------------------------------------------------------------
section("4. Fix it with promotion; the theorem certifies the result")

fixed, modifications = promote_edge(mix, "Withdraw", "Reconcile", via="update")
for modification in modifications:
    print("applied:", modification.describe())
print("serializable now?", build_sdg(fixed).is_si_serializable())
assert build_sdg(fixed).is_si_serializable()

# ----------------------------------------------------------------------
section("5. One data point of the paper's evaluation (simulated)")

result = run_replicated(
    SimulationConfig(strategy="promote-wt-upd", mpl=20, measure=1.0),
    repetitions=2,
)
print("PromoteWT-upd @ MPL 20:", result.describe())

print()
print("Next: python -m repro.bench list")
