#!/usr/bin/env python3
"""Why TPC-C never needed fixing: the contrast that motivates SmallBank.

The paper's introduction: TPC-C "always give[s] serializable
[executions], even when the platform uses SI" — which is exactly why the
authors had to contrive SmallBank to study the fixing strategies at all.
This example walks the structural comparison.

Run:  python examples/tpcc_safety.py
"""

from repro.apps.tpcc import tpcc_sdg
from repro.core import build_sdg
from repro.smallbank import smallbank_specs

print("=== TPC-C (column-granularity dataflow, as in TODS 2005) ===")
sdg = tpcc_sdg(column_granularity=True)
print(sdg.describe())
assert sdg.is_si_serializable()

print()
print(
    "Note the shape: TPC-C *has* vulnerable edges (from its two read-only\n"
    "programs, OrderStatus and StockLevel), but every updater reads an\n"
    "item only if it also writes it -- so no vulnerable edge ever leaves\n"
    "an updater, no two vulnerable edges are consecutive, and the main\n"
    "theorem certifies every SI execution serializable."
)

print()
print("=== The same analysis at row granularity (too coarse) ===")
coarse = tpcc_sdg(column_granularity=False)
print(
    f"dangerous structures found: {len(coarse.dangerous_structures())} "
    "(all spurious: NewOrder's customer-discount read collides with\n"
    "Payment's balance write only at row level; the columns are disjoint)"
)
assert not coarse.is_si_serializable()

print()
print("=== SmallBank, for contrast ===")
smallbank = build_sdg(smallbank_specs(), column_granularity=True)
structures = smallbank.dangerous_structures()
print(f"dangerous structures: {[str(s) for s in structures]}")
assert not smallbank.is_si_serializable()
print(
    "\nSmallBank's WriteCheck breaks the TPC-C pattern on purpose: it\n"
    "reads Saving without writing it, so the read-only Balance edge into\n"
    "WriteCheck is followed by the vulnerable WriteCheck->TransactSaving\n"
    "edge -- the dangerous structure every strategy in the paper exists\n"
    "to destroy."
)
