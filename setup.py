"""Legacy entry point so ``pip install -e .`` works without ``wheel``.

All project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
