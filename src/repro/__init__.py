"""repro — reproduction of *The Cost of Serializability on Platforms That
Use Snapshot Isolation* (Alomari, Cahill, Fekete, Röhm; ICDE 2008).

The package contains everything the paper's evaluation rests on, built from
scratch:

* :mod:`repro.engine` — an in-memory MVCC engine with Snapshot Isolation
  (first-updater-wins and first-committer-wins), both platform flavours of
  ``SELECT FOR UPDATE``, strict 2PL, and an SSI certifier extension.
* :mod:`repro.core` — the Static Dependency Graph theory: conflict and
  vulnerability analysis, dangerous-structure detection, and the
  materialization / promotion program transformations.
* :mod:`repro.analysis` — dynamic serializability checking via
  multi-version serialization graphs, anomaly classification, and a bounded
  interleaving explorer.
* :mod:`repro.smallbank` — the SmallBank benchmark (schema, the five
  programs, and all modification strategies from the paper).
* :mod:`repro.workload` / :mod:`repro.sim` — the closed-system test driver,
  both threaded (real concurrency) and on a deterministic discrete-event
  simulation of the paper's hardware platforms.
* :mod:`repro.bench` — one experiment per paper table and figure.

Start with ``examples/quickstart.py`` or ``python -m repro.bench list``.

The blessed client surface (DESIGN.md §11) is re-exported here::

    import repro

    conn = repro.connect("local://", schemas=..., isolation="si")
    with conn.transaction("deposit") as txn:
        ...

Re-exports resolve lazily (PEP 562) so ``import repro`` stays free of the
workload/observability machinery until it is actually used.
"""

__version__ = "1.1.0"

#: name -> defining module, resolved on first attribute access.
_EXPORTS = {
    "connect": "repro.api",
    "Connection": "repro.api",
    "LocalConnection": "repro.api",
    "TransactionContext": "repro.api",
    "SessionLike": "repro.api",
    "ISOLATION_CONFIGS": "repro.api",
    "NetworkConnection": "repro.net.client",
    "DatabaseServer": "repro.net.server",
    "ReproError": "repro.errors",
    "ERROR_CODES": "repro.errors",
    "error_from_code": "repro.errors",
    "RetryPolicy": "repro.workload.retry",
    "Observability": "repro.obs",
}

__all__ = ["__version__", *sorted(_EXPORTS)]


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: __getattr__ fires at most once per name
    return value


def __dir__() -> "list[str]":
    return sorted(set(globals()) | set(_EXPORTS))
