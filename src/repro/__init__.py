"""repro — reproduction of *The Cost of Serializability on Platforms That
Use Snapshot Isolation* (Alomari, Cahill, Fekete, Röhm; ICDE 2008).

The package contains everything the paper's evaluation rests on, built from
scratch:

* :mod:`repro.engine` — an in-memory MVCC engine with Snapshot Isolation
  (first-updater-wins and first-committer-wins), both platform flavours of
  ``SELECT FOR UPDATE``, strict 2PL, and an SSI certifier extension.
* :mod:`repro.core` — the Static Dependency Graph theory: conflict and
  vulnerability analysis, dangerous-structure detection, and the
  materialization / promotion program transformations.
* :mod:`repro.analysis` — dynamic serializability checking via
  multi-version serialization graphs, anomaly classification, and a bounded
  interleaving explorer.
* :mod:`repro.smallbank` — the SmallBank benchmark (schema, the five
  programs, and all modification strategies from the paper).
* :mod:`repro.workload` / :mod:`repro.sim` — the closed-system test driver,
  both threaded (real concurrency) and on a deterministic discrete-event
  simulation of the paper's hardware platforms.
* :mod:`repro.bench` — one experiment per paper table and figure.

Start with ``examples/quickstart.py`` or ``python -m repro.bench list``.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
