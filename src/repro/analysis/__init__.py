"""Dynamic serializability analysis: MVSG checking and exploration.

Check any workload after the fact::

    from repro.analysis import SerializabilityChecker

    checker = SerializabilityChecker(db)
    ...run transactions...
    report = checker.report()
    assert report.serializable, report.describe()

Or model-check a small scenario exhaustively::

    from repro.analysis import InterleavingExplorer, ScriptedProgram

    summary = InterleavingExplorer(make_db, [
        ScriptedProgram("WriteCheck", wc_body),
        ScriptedProgram("TransactSaving", ts_body),
    ]).explore()
    assert summary.all_serializable
"""

from repro.analysis.checker import (
    SerializabilityChecker,
    SerializabilityReport,
    check_history,
    classify_cycle,
)
from repro.analysis.distributed import (
    DistributedReport,
    GlobalTransaction,
    global_id,
    merge_shard_histories,
    split_label,
)
from repro.analysis.extract import (
    extract_smallbank_specs,
    extract_spec,
    extracted_smallbank_program_set,
    footprint_signature,
    merge_specs,
)
from repro.analysis.explorer import (
    ExplorationSummary,
    InterleavingExplorer,
    ScheduleOutcome,
    ScriptedProgram,
)
from repro.analysis.history import check_history_text, parse_history
from repro.analysis.mvsg import (
    Cycle,
    DependencyEdge,
    MultiVersionSerializationGraph,
    find_cycle_in,
)
from repro.analysis.recorder import (
    CommittedTransaction,
    ExecutionRecorder,
    committed_from_dict,
    committed_to_dict,
    dump_history_jsonl,
    load_history_jsonl,
    record_database,
    salvage_durable_history,
)

__all__ = [
    "CommittedTransaction",
    "Cycle",
    "DependencyEdge",
    "DistributedReport",
    "ExecutionRecorder",
    "ExplorationSummary",
    "GlobalTransaction",
    "InterleavingExplorer",
    "MultiVersionSerializationGraph",
    "ScheduleOutcome",
    "ScriptedProgram",
    "SerializabilityChecker",
    "SerializabilityReport",
    "check_history",
    "check_history_text",
    "classify_cycle",
    "committed_from_dict",
    "committed_to_dict",
    "dump_history_jsonl",
    "extract_smallbank_specs",
    "extract_spec",
    "extracted_smallbank_program_set",
    "find_cycle_in",
    "footprint_signature",
    "global_id",
    "load_history_jsonl",
    "merge_shard_histories",
    "merge_specs",
    "parse_history",
    "record_database",
    "salvage_durable_history",
    "split_label",
]
