"""Serializability verdicts and anomaly classification.

:class:`SerializabilityChecker` is the user-facing facade: attach it to a
database, run any workload, then ask for a :class:`SerializabilityReport`.
Cycles found in the MVSG are classified into the named anomalies the
SI literature uses:

* **write skew** — a two-transaction cycle of two rw anti-dependencies
  (Berenson et al. 1995);
* **read-only transaction anomaly** — a cycle in which some *read-only*
  transaction participates (Fekete, O'Neil & O'Neil, SIGMOD Record 2004 —
  reference [19] of the paper, the basis of SmallBank);
* **dangerous structure** — any cycle with two *consecutive* rw edges
  (the runtime image of the static theory's pivot);
* anything else is reported as a generic serialization cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.mvsg import Cycle, MultiVersionSerializationGraph
from repro.analysis.recorder import (
    CommittedTransaction,
    ExecutionRecorder,
)
from repro.engine.engine import Database


def classify_cycle(
    cycle: Cycle, transactions: dict[int, CommittedTransaction]
) -> tuple[str, ...]:
    """All anomaly labels that apply to a cycle."""
    labels: list[str] = []
    kinds = cycle.kinds
    rw_like = tuple(kind in ("rw", "predicate-rw") for kind in kinds)
    if len(cycle.edges) == 2 and all(rw_like):
        labels.append("write-skew")
    # Two consecutive rw edges (cyclically adjacent).
    count = len(rw_like)
    if any(rw_like[i] and rw_like[(i + 1) % count] for i in range(count)):
        labels.append("dangerous-structure")
    participants = {edge.source for edge in cycle.edges}
    if any(
        txid in transactions and transactions[txid].is_read_only
        for txid in participants
    ):
        labels.append("read-only-transaction-anomaly")
    if not labels:
        labels.append("serialization-cycle")
    return tuple(labels)


@dataclass
class SerializabilityReport:
    """Outcome of checking one committed history."""

    serializable: bool
    committed_count: int
    aborted_count: int
    cycle: Optional[Cycle] = None
    anomalies: tuple[str, ...] = ()
    serial_order: Optional[tuple[int, ...]] = None

    def describe(self) -> str:
        if self.serializable:
            return (
                f"serializable: {self.committed_count} committed "
                f"({self.aborted_count} aborted); equivalent serial order "
                f"exists"
            )
        return (
            f"NOT serializable: cycle [{self.cycle}] "
            f"anomalies={', '.join(self.anomalies)}"
        )


class SerializabilityChecker:
    """Attach to a database, run a workload, then call :meth:`report`."""

    def __init__(self, db: Database, *, phantom_edges: bool = False) -> None:
        self.recorder = ExecutionRecorder().attach(db)
        self.phantom_edges = phantom_edges

    def graph(self) -> MultiVersionSerializationGraph:
        return MultiVersionSerializationGraph(
            self.recorder.committed, phantom_edges=self.phantom_edges
        )

    def report(self) -> SerializabilityReport:
        graph = self.graph()
        cycle = graph.find_cycle()
        if cycle is None:
            return SerializabilityReport(
                serializable=True,
                committed_count=len(self.recorder),
                aborted_count=self.recorder.aborted_count,
                serial_order=graph.topological_commit_order(),
            )
        return SerializabilityReport(
            serializable=False,
            committed_count=len(self.recorder),
            aborted_count=self.recorder.aborted_count,
            cycle=cycle,
            anomalies=classify_cycle(cycle, graph.transactions),
        )


def check_history(
    transactions: "list[CommittedTransaction] | tuple[CommittedTransaction, ...]",
    *,
    phantom_edges: bool = False,
) -> SerializabilityReport:
    """Check an already-collected history without a live database."""
    graph = MultiVersionSerializationGraph(
        transactions, phantom_edges=phantom_edges
    )
    cycle = graph.find_cycle()
    if cycle is None:
        return SerializabilityReport(
            serializable=True,
            committed_count=len(graph.transactions),
            aborted_count=0,
            serial_order=graph.topological_commit_order(),
        )
    return SerializabilityReport(
        serializable=False,
        committed_count=len(graph.transactions),
        aborted_count=0,
        cycle=cycle,
        anomalies=classify_cycle(cycle, graph.transactions),
    )
