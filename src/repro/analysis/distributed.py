"""Cluster-wide serializability: merging per-shard traces into a global MVSG.

A distributed transaction executes one *branch* per shard it touches; each
shard's :class:`~repro.analysis.ExecutionRecorder` captures that branch as
an ordinary :class:`CommittedTransaction`.  The cluster router tags every
branch label with the transaction's global id (``"WriteCheck#g42"``), so
the merge here can stitch the branches of one global transaction back
together without any cross-shard clock.

The construction is the standard one for partitioned data: **every item
lives on exactly one shard**, so every MVSG dependency (ww / wr / rw) is
witnessed entirely by that item's shard.  The global serialization graph
is therefore the edge-union of the per-shard graphs with each shard-local
txid mapped to its global id — no cross-shard version order ever needs to
be invented (which is also why the branches are *not* merged into a single
footprint: each shard has its own commit-timestamp domain, and mixing them
would corrupt the per-item version order).

A cycle in the merged graph that no single shard can see is exactly the
cross-shard SI anomaly of the robustness literature (Beillahi et al.;
Nagar & Jagannathan): each shard's history is perfectly serializable, the
cluster execution is not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.analysis.checker import classify_cycle
from repro.analysis.mvsg import (
    Cycle,
    DependencyEdge,
    MultiVersionSerializationGraph,
    find_cycle_in,
)
from repro.analysis.recorder import CommittedTransaction

#: Label suffix carrying the global transaction id: ``"<label>#g<N>"``.
GTID_TAG = "#g"


def split_label(label: str) -> "tuple[str, Optional[str]]":
    """``("WriteCheck", "g42")`` from ``"WriteCheck#g42"``.

    Returns ``(label, None)`` for an untagged label (a transaction that
    never went through the cluster router).
    """
    base, sep, tag = label.rpartition(GTID_TAG)
    if sep and tag.isdigit():
        return base, f"g{tag}"
    return label, None


def global_id(shard: int, txn: CommittedTransaction) -> str:
    """The merged-graph node id for one branch.

    Router-tagged branches of the same global transaction share one id;
    untagged transactions get a synthetic per-shard id so they still
    appear (as single-branch nodes) in the global graph.
    """
    _, gid = split_label(txn.label)
    if gid is not None:
        return gid
    return f"s{shard}-t{txn.txid}"


@dataclass(frozen=True)
class GlobalTransaction:
    """One global transaction: its branches across the shards it touched."""

    gid: str
    label: str
    branches: "tuple[tuple[int, CommittedTransaction], ...]"

    @property
    def shards(self) -> tuple[int, ...]:
        return tuple(shard for shard, _ in self.branches)

    @property
    def active_branches(self) -> "tuple[tuple[int, CommittedTransaction], ...]":
        """Branches that actually touched data.

        The router's *consistent* snapshot mode broadcasts BEGIN to
        every shard, so a single-shard transaction still leaves empty
        committed branches elsewhere; those carry no dependencies and
        do not make the transaction distributed.
        """
        return tuple(
            (shard, branch)
            for shard, branch in self.branches
            if branch.reads or branch.writes or branch.predicate_reads
        )

    @property
    def is_read_only(self) -> bool:
        """Read-only iff *every* branch is (``classify_cycle`` duck type)."""
        return all(branch.is_read_only for _, branch in self.branches)

    @property
    def is_distributed(self) -> bool:
        return len(self.active_branches) > 1


@dataclass
class DistributedReport:
    """Outcome of certifying one merged cluster execution."""

    serializable: bool
    transactions: "dict[str, GlobalTransaction]"
    edges: tuple[DependencyEdge, ...]
    cycle: Optional[Cycle] = None
    anomalies: tuple[str, ...] = ()
    #: Per-shard *local* cycle witnesses (usually all ``None``: each
    #: shard's own history is serializable even when the merge is not —
    #: that gap is the cross-shard anomaly).
    shard_cycles: "dict[int, Optional[Cycle]]" = None  # type: ignore[assignment]

    @property
    def cross_shard_only(self) -> bool:
        """True when the anomaly is invisible to every individual shard."""
        return (
            not self.serializable
            and all(c is None for c in (self.shard_cycles or {}).values())
        )

    def describe(self) -> str:
        committed = len(self.transactions)
        distributed = sum(
            1 for t in self.transactions.values() if t.is_distributed
        )
        if self.serializable:
            return (
                f"cluster-serializable: {committed} global transactions "
                f"({distributed} cross-shard), merged MVSG acyclic"
            )
        where = (
            "invisible to every single shard"
            if self.cross_shard_only
            else "also visible on some shard"
        )
        return (
            f"NOT cluster-serializable: cycle [{self.cycle}] "
            f"anomalies={', '.join(self.anomalies)} ({where})"
        )


def merge_shard_histories(
    histories: "Mapping[int, Sequence[CommittedTransaction]]",
    *,
    phantom_edges: bool = False,
) -> DistributedReport:
    """Certify a cluster execution from its per-shard committed histories.

    ``histories`` maps shard index to that shard's recorded transactions.
    Builds one MVSG per shard over the shard-local footprints, maps every
    edge endpoint to its global transaction id, and unions the edges into
    the global graph (deduplicating parallel edges of the same kind and
    item).  Intra-transaction edges (both endpoints are branches of the
    same global transaction) are dropped — a transaction never conflicts
    with itself.
    """
    branches: "dict[str, list[tuple[int, CommittedTransaction]]]" = {}
    edges: list[DependencyEdge] = []
    adjacency: "dict[str, list[DependencyEdge]]" = {}
    shard_cycles: "dict[int, Optional[Cycle]]" = {}
    seen: set = set()
    for shard in sorted(histories):
        txns = tuple(histories[shard])
        graph = MultiVersionSerializationGraph(
            txns, phantom_edges=phantom_edges
        )
        shard_cycles[shard] = graph.find_cycle()
        gid_of = {txn.txid: global_id(shard, txn) for txn in txns}
        for txn in txns:
            branches.setdefault(gid_of[txn.txid], []).append((shard, txn))
        for edge in graph.edges:
            source, target = gid_of[edge.source], gid_of[edge.target]
            if source == target:
                continue
            key = (source, target, edge.kind, edge.item)
            if key in seen:
                continue
            seen.add(key)
            merged = DependencyEdge(source, target, edge.kind, edge.item)
            edges.append(merged)
            adjacency.setdefault(source, []).append(merged)
    transactions = {
        gid: GlobalTransaction(
            gid=gid,
            label=split_label(parts[0][1].label)[0],
            branches=tuple(parts),
        )
        for gid, parts in branches.items()
    }
    cycle = find_cycle_in(adjacency, roots=sorted(transactions))
    if cycle is None:
        return DistributedReport(
            serializable=True,
            transactions=transactions,
            edges=tuple(edges),
            shard_cycles=shard_cycles,
        )
    return DistributedReport(
        serializable=False,
        transactions=transactions,
        edges=tuple(edges),
        cycle=cycle,
        anomalies=classify_cycle(cycle, transactions),
        shard_cycles=shard_cycles,
    )
