"""Bounded interleaving exploration (a tiny stateless model checker).

:class:`InterleavingExplorer` runs a small set of transaction programs
under **every** possible statement-level interleaving (up to a schedule
budget) against a freshly built database per schedule, checking each
committed history with the MVSG analysis.  This is how the test-suite
*proves* statements like "plain SI admits the SmallBank read-only anomaly;
strategy X admits no non-serializable schedule of this scenario" instead
of sampling a few lucky thread timings.

Mechanics: each program runs on its own thread whose session gates before
``begin``, before every statement, and before a flushing commit.  A
controller wakes exactly one gated thread at a time, so execution is a
deterministic function of the *choice sequence* (which thread to step at
each decision point).  Lock waits integrate with the controller: a blocked
thread is resumable only after some executed step resolved its blocker, so
blocking never hides schedules.  Exploration is depth-first over choice
prefixes, which enumerates every schedule exactly once.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.analysis.checker import SerializabilityReport, check_history
from repro.analysis.recorder import ExecutionRecorder
from repro.engine.engine import Database, WaitOn
from repro.engine.session import Session, Waiter
from repro.errors import ApplicationRollback, ReproError, TransactionAborted

ProgramBody = Callable[[Session], None]


@dataclass(frozen=True)
class ScriptedProgram:
    """One participant of the exploration scenario."""

    label: str
    body: ProgramBody


@dataclass
class ScheduleOutcome:
    """What one schedule did."""

    choices: tuple[int, ...]
    decision_points: tuple[tuple[int, ...], ...]
    report: SerializabilityReport
    aborted_labels: tuple[str, ...]

    @property
    def serializable(self) -> bool:
        return self.report.serializable


@dataclass
class ExplorationSummary:
    """Aggregate over all explored schedules."""

    schedules: int = 0
    truncated: bool = False
    non_serializable: list[ScheduleOutcome] = field(default_factory=list)
    anomaly_counts: dict[str, int] = field(default_factory=dict)
    schedules_with_aborts: int = 0

    @property
    def all_serializable(self) -> bool:
        return not self.non_serializable

    def describe(self) -> str:
        status = "all serializable" if self.all_serializable else (
            f"{len(self.non_serializable)} non-serializable"
        )
        extra = " (truncated)" if self.truncated else ""
        return f"{self.schedules} schedules explored{extra}: {status}"


class _Controller:
    """Grants one thread at a time permission to execute one step."""

    _STEP_TIMEOUT = 30.0

    def __init__(self, count: int) -> None:
        self.cond = threading.Condition()
        self.states = ["ready"] * count  # ready | running | blocked | done
        self.wakeable = [False] * count
        self.go = [threading.Event() for _ in range(count)]
        self.failure: Optional[BaseException] = None

    # -- worker side ----------------------------------------------------
    def gate(self, tid: int) -> None:
        with self.cond:
            self.states[tid] = "ready"
            self.cond.notify_all()
        if not self.go[tid].wait(timeout=self._STEP_TIMEOUT):
            raise ReproError(f"explorer thread {tid} starved at gate")
        self.go[tid].clear()

    def block(self, tid: int) -> None:
        with self.cond:
            self.states[tid] = "blocked"
            self.cond.notify_all()
        if not self.go[tid].wait(timeout=self._STEP_TIMEOUT):
            raise ReproError(f"explorer thread {tid} starved while blocked")
        self.go[tid].clear()

    def mark_wakeable(self, tid: int) -> None:
        with self.cond:
            self.wakeable[tid] = True
            self.cond.notify_all()

    def finish(self, tid: int, error: Optional[BaseException] = None) -> None:
        with self.cond:
            self.states[tid] = "done"
            if error is not None and self.failure is None:
                self.failure = error
            self.cond.notify_all()

    # -- scheduler side --------------------------------------------------
    def _settled(self) -> bool:
        return all(state != "running" for state in self.states)

    def runnable(self) -> list[int]:
        return [
            tid
            for tid, state in enumerate(self.states)
            if state == "ready" or (state == "blocked" and self.wakeable[tid])
        ]

    def drive(self, choices: Sequence[int]) -> tuple[list[int], list[tuple[int, ...]]]:
        taken: list[int] = []
        decision_points: list[tuple[int, ...]] = []
        position = 0
        while True:
            with self.cond:
                if not self.cond.wait_for(self._settled, timeout=self._STEP_TIMEOUT):
                    raise ReproError("explorer scheduler timed out")
                if self.failure is not None:
                    raise self.failure
                ready = self.runnable()
                if not ready:
                    if all(state == "done" for state in self.states):
                        return taken, decision_points
                    raise ReproError(
                        f"explorer wedged: states={self.states}"
                    )
                decision_points.append(tuple(ready))
                if position < len(choices) and choices[position] in ready:
                    pick = choices[position]
                else:
                    pick = ready[0]
                position += 1
                taken.append(pick)
                self.wakeable[pick] = False
                self.states[pick] = "running"
            self.go[pick].set()


class _ControlledWaiter(Waiter):
    """Session waiter that routes lock waits through the controller."""

    def __init__(self, controller: _Controller, tid: int) -> None:
        self.controller = controller
        self.tid = tid

    def wait_any(self, wait: WaitOn, timeout=None) -> bool:
        for blocker in wait.blockers:
            blocker.add_resolution_callback(
                lambda _txn: self.controller.mark_wakeable(self.tid)
            )
        self.controller.block(self.tid)
        return True


#: Statement kinds that are scheduling points by default.  Plain reads are
#: excluded on purpose: under SI every read comes from the begin-time
#: snapshot and never blocks, so its position within the transaction is
#: irrelevant to the outcome — a sound partial-order reduction that keeps
#: the schedule space exhaustive-friendly.  (``begin`` and flushing commits
#: are always gated; pass ``gate_kinds`` including "select"/"scan" for full
#: granularity, e.g. when exploring read-locking engines in fine detail.)
DEFAULT_GATE_KINDS = frozenset(
    {
        "update",
        "identity-update",
        "materialize-update",
        "insert",
        "delete",
        "select-for-update",
    }
)


class InterleavingExplorer:
    """Explore every interleaving of a scenario (up to ``max_schedules``)."""

    def __init__(
        self,
        make_db: Callable[[], Database],
        programs: Sequence[ScriptedProgram],
        *,
        max_schedules: int = 20_000,
        phantom_edges: bool = False,
        gate_kinds: frozenset[str] = DEFAULT_GATE_KINDS,
    ) -> None:
        if not programs:
            raise ValueError("need at least one program to explore")
        self.make_db = make_db
        self.programs = tuple(programs)
        self.max_schedules = max_schedules
        self.phantom_edges = phantom_edges
        self.gate_kinds = frozenset(gate_kinds)

    # ------------------------------------------------------------------
    def run_schedule(self, choices: Sequence[int]) -> ScheduleOutcome:
        """Execute one schedule (fresh database) and analyze it."""
        db = self.make_db()
        recorder = ExecutionRecorder().attach(db)
        controller = _Controller(len(self.programs))
        aborted: list[str] = []
        aborted_lock = threading.Lock()

        def worker(tid: int, program: ScriptedProgram) -> None:
            def statement_gate(kind: str, txn) -> None:
                if kind in self.gate_kinds:
                    controller.gate(tid)

            session = Session._internal(
                db,
                waiter=_ControlledWaiter(controller, tid),
                statement_hook=statement_gate,
                pre_commit_hook=lambda txn: controller.gate(tid),
            )
            try:
                controller.gate(tid)  # schedule the begin (snapshot point)
                session.begin(program.label)
                program.body(session)
                session.commit()
                controller.finish(tid)
            except (TransactionAborted, ApplicationRollback):
                session.rollback()
                with aborted_lock:
                    aborted.append(program.label)
                controller.finish(tid)
            except BaseException as exc:  # pragma: no cover - plumbing
                session.rollback()
                controller.finish(tid, exc)

        threads = [
            threading.Thread(target=worker, args=(tid, program), daemon=True)
            for tid, program in enumerate(self.programs)
        ]
        for thread in threads:
            thread.start()
        taken, decision_points = controller.drive(choices)
        for thread in threads:
            thread.join(timeout=30)
        report = check_history(
            list(recorder.committed), phantom_edges=self.phantom_edges
        )
        return ScheduleOutcome(
            choices=tuple(taken),
            decision_points=tuple(decision_points),
            report=report,
            aborted_labels=tuple(sorted(aborted)),
        )

    def explore(self) -> ExplorationSummary:
        """Depth-first enumeration of all schedules."""
        summary = ExplorationSummary()
        stack: list[tuple[int, ...]] = [()]
        while stack:
            if summary.schedules >= self.max_schedules:
                summary.truncated = True
                break
            prefix = stack.pop()
            outcome = self.run_schedule(prefix)
            summary.schedules += 1
            if outcome.aborted_labels:
                summary.schedules_with_aborts += 1
            if not outcome.serializable:
                summary.non_serializable.append(outcome)
                for label in outcome.report.anomalies:
                    summary.anomaly_counts[label] = (
                        summary.anomaly_counts.get(label, 0) + 1
                    )
            # Children: alternative decisions beyond the forced prefix.
            for index in range(len(prefix), len(outcome.decision_points)):
                for alternative in outcome.decision_points[index]:
                    if alternative != outcome.choices[index]:
                        stack.append(
                            outcome.choices[:index] + (alternative,)
                        )
        return summary
