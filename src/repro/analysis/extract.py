"""Dynamic footprint extraction: derive ProgramSpecs from executions.

Jorwekar et al. (VLDB 2007, reference [15] of the paper) showed that
detecting SI anomalies can be automated by extracting programs' read/write
summaries instead of writing them by hand.  This module does the dynamic
variant for any transaction program runnable against the engine: execute
the program with *sentinel* row identities, observe the recorded footprint
(:attr:`Transaction.reads` / ``writes`` / ``cc_writes``), and map each
touched row back to the parameter that produced it.

For SmallBank this closes the loop between the two halves of the library:
the hand-written specs of :mod:`repro.smallbank.programs` (from which the
SDGs and Table I are derived) are *validated* against what the executable
mini-SQL programs actually touch — for the base mix and for every strategy
variant (``tests/test_extract.py``).

Limitations, by design: extraction sees one control-flow path per run
(run the program once per interesting path and union the results with
:func:`merge_specs` if branches differ in footprint), and it extracts at
row granularity (observed footprints carry no column sets).
"""

from __future__ import annotations

from typing import Callable, Hashable, Mapping

from repro.core.specs import Access, AccessKind, ProgramSpec
from repro.engine.engine import Database
from repro.engine.session import Session
from repro.errors import AnalysisError


def extract_spec(
    db: Database,
    name: str,
    body: Callable[[Session], object],
    key_to_param: Mapping[tuple[str, Hashable], str],
    params: tuple[str, ...],
) -> ProgramSpec:
    """Run ``body`` once and turn its footprint into a :class:`ProgramSpec`.

    ``key_to_param`` maps the sentinel rows — ``(table, primary key)`` —
    the program is expected to touch to the spec parameter that selected
    them.  Touching a row outside the mapping is an error: it means the
    sentinel identities were not distinctive enough to attribute.
    """
    session = Session._internal(db)
    session.begin(name)
    body(session)
    txn = session.transaction
    accesses: list[Access] = []

    def param_for(row: tuple[str, Hashable]) -> str:
        try:
            return key_to_param[row]
        except KeyError:
            raise AnalysisError(
                f"program {name!r} touched unattributed row {row!r}; "
                "extend key_to_param or use more distinctive sentinels"
            ) from None

    for row, _version in sorted(txn.reads.items(), key=repr):
        if row in txn.sfu_rows:
            continue  # reported as a CC write below (FOR UPDATE read)
        accesses.append(
            Access(AccessKind.READ, row[0], key_param=param_for(row))
        )
    for row in txn.write_order:
        accesses.append(
            Access(AccessKind.WRITE, row[0], key_param=param_for(row))
        )
    # ``sfu_rows`` is recorded by both engine flavours (``cc_writes`` only
    # under commercial semantics); the spec-level CC_WRITE kind carries the
    # platform question to analysis time via ``sfu_is_write``.
    for row in sorted(txn.sfu_rows, key=repr):
        accesses.append(
            Access(AccessKind.CC_WRITE, row[0], key_param=param_for(row))
        )
    session.rollback()  # leave the scratch database untouched
    return ProgramSpec(name, params, tuple(dict.fromkeys(accesses)))


def merge_specs(first: ProgramSpec, second: ProgramSpec) -> ProgramSpec:
    """Union of two extraction runs (e.g. both branches of an IF)."""
    if first.name != second.name or first.params != second.params:
        raise AnalysisError("can only merge extractions of the same program")
    return first.with_access(*second.accesses)


def footprint_signature(spec: ProgramSpec) -> frozenset[tuple[str, str, str]]:
    """Canonical (kind, table, key) triples — the row-granularity footprint.

    Column sets are ignored (extraction cannot observe them) and reads that
    accompany a write of the same item are dropped, because an extracted
    read-modify-write and a declared plain write describe the same conflict
    behaviour.  Used to compare extracted and hand-written specs.
    """
    writes = {
        (access.table, access.describe_key())
        for access in spec.accesses
        if access.kind.is_writeish
    }
    triples = set()
    for access in spec.accesses:
        key = (access.table, access.describe_key())
        if access.kind is AccessKind.READ and key in writes:
            continue
        triples.add((access.kind.value, access.table, access.describe_key()))
    return frozenset(triples)


# ----------------------------------------------------------------------
# SmallBank-specific convenience
# ----------------------------------------------------------------------


def extract_smallbank_specs(strategy_key: str = "base-si"):
    """Extract all five SmallBank specs from the executable programs.

    Returns a dict ``program name -> extracted ProgramSpec``; WriteCheck is
    run on both sides of its overdraft branch and merged.
    """
    from repro.core.specs import ProgramSet
    from repro.smallbank.schema import (
        ACCOUNT,
        CHECKING,
        CONFLICT,
        SAVING,
        PopulationConfig,
        build_database,
        customer_name,
    )
    from repro.smallbank.strategies import get_strategy

    transactions = get_strategy(strategy_key).transactions()

    def attribution(cid_by_param: dict[str, int]):
        mapping: dict[tuple[str, Hashable], str] = {}
        for param, cid in cid_by_param.items():
            mapping[(ACCOUNT, customer_name(cid))] = param
            for table in (SAVING, CHECKING, CONFLICT):
                mapping[(table, cid)] = param
        return mapping

    def fresh_db():
        return build_database(
            population=PopulationConfig(
                customers=2, min_saving=100.0, max_saving=100.0,
                min_checking=100.0, max_checking=100.0,
            )
        )

    one = {"x": 1}
    two = {"x1": 1, "x2": 2}
    specs: dict[str, ProgramSpec] = {}
    specs["Balance"] = extract_spec(
        fresh_db(), "Balance",
        lambda s: transactions.balance(s, {"N": customer_name(1)}),
        attribution(one), ("x",),
    )
    specs["DepositChecking"] = extract_spec(
        fresh_db(), "DepositChecking",
        lambda s: transactions.deposit_checking(
            s, {"N": customer_name(1), "V": 5.0}
        ),
        attribution(one), ("x",),
    )
    specs["TransactSaving"] = extract_spec(
        fresh_db(), "TransactSaving",
        lambda s: transactions.transact_saving(
            s, {"N": customer_name(1), "V": 5.0}
        ),
        attribution(one), ("x",),
    )
    specs["Amalgamate"] = extract_spec(
        fresh_db(), "Amalgamate",
        lambda s: transactions.amalgamate(
            s, {"N1": customer_name(1), "N2": customer_name(2)}
        ),
        attribution(two), ("x1", "x2"),
    )
    no_penalty = extract_spec(
        fresh_db(), "WriteCheck",
        lambda s: transactions.write_check(
            s, {"N": customer_name(1), "V": 5.0}
        ),
        attribution(one), ("x",),
    )
    penalty = extract_spec(
        fresh_db(), "WriteCheck",
        lambda s: transactions.write_check(
            s, {"N": customer_name(1), "V": 5000.0}
        ),
        attribution(one), ("x",),
    )
    specs["WriteCheck"] = merge_specs(no_penalty, penalty)
    return specs


def extracted_smallbank_program_set(strategy_key: str = "base-si"):
    """The extracted specs as a :class:`~repro.core.specs.ProgramSet`."""
    from repro.core.specs import ProgramSet

    return ProgramSet(
        extract_smallbank_specs(strategy_key).values(),
        name=f"SmallBank[{strategy_key}, extracted]",
    )
