"""Textbook-style histories, checked with the MVSG analysis.

The SI literature communicates anomalies as one-line schedules, e.g. the
write-skew history of Berenson et al. (1995)::

    r1(x) r1(y) r2(x) r2(y) w1(x) w2(y) c1 c2

:func:`parse_history` turns that notation into
:class:`~repro.analysis.recorder.CommittedTransaction` footprints (reads
resolve against the versions committed so far, exactly as an SI engine
would serve them), and :func:`check_history_text` runs the serializability
checker on the result — so every classic example from the papers can be
validated in one line, without building a database.

Grammar (whitespace-separated operations):

* ``rT(x)`` — transaction ``T`` reads item ``x``;
* ``wT(x)`` — transaction ``T`` writes item ``x``;
* ``cT``    — ``T`` commits; ``aT`` — ``T`` aborts.

Transaction ids are positive integers; item names are identifiers.  Each
transaction's snapshot is the history position of its first operation
(SI: reads see the last version committed before the snapshot).  Writes
become visible at the commit position.  Operations after a commit/abort,
or commits of transactions that never did anything, are rejected.
"""

from __future__ import annotations

import re

from repro.analysis.checker import SerializabilityReport, check_history
from repro.analysis.recorder import CommittedTransaction
from repro.errors import AnalysisError

_OP_RE = re.compile(
    r"^(?:(?P<kind>[rw])(?P<txid>\d+)\((?P<item>[A-Za-z_][A-Za-z0-9_]*)\)"
    r"|(?P<end>[ca])(?P<end_txid>\d+))$"
)

_TABLE = "H"  # histories live in one implicit table


class _TxnState:
    __slots__ = ("txid", "start", "reads", "writes", "finished")

    def __init__(self, txid: int, start: int) -> None:
        self.txid = txid
        self.start = start
        self.reads: dict[str, int] = {}
        self.writes: list[str] = []
        self.finished = False


def parse_history(text: str) -> list[CommittedTransaction]:
    """Parse a schedule and return the committed transactions' footprints.

    Reads are resolved under SI semantics: a read of ``x`` by ``T`` sees
    the newest version of ``x`` committed before T's snapshot (T's own
    writes shadow that, and are excluded from the footprint like the
    recorder does).  Timestamps are history positions (1-based), commits
    at position ``i`` get commit timestamp ``i``.
    """
    transactions: dict[int, _TxnState] = {}
    committed: list[CommittedTransaction] = []
    # item -> list of (commit position, writer txid), ascending.
    versions: dict[str, list[tuple[int, int]]] = {}

    def state_for(txid: int, position: int) -> _TxnState:
        state = transactions.get(txid)
        if state is None:
            state = _TxnState(txid, position)
            transactions[txid] = state
        if state.finished:
            raise AnalysisError(
                f"operation on finished transaction {txid} at {position}"
            )
        return state

    tokens = text.split()
    if not tokens:
        raise AnalysisError("empty history")
    for position, token in enumerate(tokens, start=1):
        match = _OP_RE.match(token)
        if match is None:
            raise AnalysisError(f"cannot parse history token {token!r}")
        if match["kind"] is not None:
            txid = int(match["txid"])
            item = match["item"]
            state = state_for(txid, position)
            if match["kind"] == "r":
                if item in state.writes:
                    continue  # own-write read: excluded, like the recorder
                visible = 0
                for commit_position, _writer in versions.get(item, ()):
                    if commit_position <= state.start:
                        visible = commit_position
                state.reads.setdefault(item, visible)
            else:
                if item not in state.writes:
                    state.writes.append(item)
        else:
            txid = int(match["end_txid"])
            state = transactions.get(txid)
            if state is None:
                raise AnalysisError(
                    f"transaction {txid} ends at {position} without operations"
                )
            if state.finished:
                raise AnalysisError(f"transaction {txid} ends twice")
            state.finished = True
            if match["end"] == "a":
                continue
            for item in state.writes:
                versions.setdefault(item, []).append((position, txid))
            committed.append(
                CommittedTransaction(
                    txid=txid,
                    label=f"T{txid}",
                    start_ts=state.start,
                    snapshot_ts=state.start,
                    commit_ts=position,
                    reads=tuple(
                        ((_TABLE, item), version_ts)
                        for item, version_ts in sorted(state.reads.items())
                    ),
                    writes=tuple((_TABLE, item) for item in state.writes),
                    cc_writes=(),
                    predicate_reads=(),
                )
            )
    unfinished = [t for t in transactions.values() if not t.finished]
    if unfinished:
        raise AnalysisError(
            "history leaves transactions unfinished: "
            + ", ".join(f"T{t.txid}" for t in unfinished)
        )
    return committed


def check_history_text(text: str) -> SerializabilityReport:
    """Parse a textbook schedule and check its serializability."""
    return check_history(parse_history(text))
