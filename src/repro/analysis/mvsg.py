"""Multi-version serialization graph (MVSG) construction and cycle search.

Following Adya's direct serialization graph over committed transactions:

* **wr** (read dependency): ``T -> U`` when U read the version T installed;
* **ww** (write dependency): ``T -> U`` when U installed the version
  immediately following T's on some item (version order = commit order);
* **rw** (anti-dependency): ``T -> U`` when U installed the version
  immediately following the one T *read* on some item.  Reads of
  "row absent" (version timestamp 0) anti-depend on the item's first
  writer.

The committed history is serializable iff the graph is acyclic; a cycle is
returned as a witness.  Optional conservative phantom edges connect
predicate readers to concurrent later writers of the same table —
disabled by default and unnecessary for workloads (like SmallBank runs)
whose predicate-read tables are never written.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping, Optional, Sequence

from repro.analysis.recorder import CommittedTransaction
from repro.engine.locks import RowId


@dataclass(frozen=True)
class DependencyEdge:
    """One dependency between committed transactions."""

    source: int
    target: int
    kind: str  # "wr" | "ww" | "rw" | "predicate-rw"
    item: Optional[RowId] = None

    def __str__(self) -> str:
        where = f" on {self.item}" if self.item is not None else ""
        return f"T{self.source} --{self.kind}--> T{self.target}{where}"


@dataclass
class Cycle:
    """A cycle in the MVSG: the witness of non-serializability."""

    edges: tuple[DependencyEdge, ...]

    @property
    def transactions(self) -> tuple[int, ...]:
        return tuple(edge.source for edge in self.edges)

    @property
    def kinds(self) -> tuple[str, ...]:
        return tuple(edge.kind for edge in self.edges)

    def __str__(self) -> str:
        return "; ".join(str(edge) for edge in self.edges)


def find_cycle_in(
    adjacency: "Mapping[Hashable, Sequence[DependencyEdge]]",
    roots: "Optional[Sequence[Hashable]]" = None,
) -> Optional[Cycle]:
    """A cycle witness in an arbitrary dependency adjacency, or ``None``.

    Shared by the per-history graph below (integer txids) and the
    cluster-wide global graph (string global transaction ids) — node ids
    only need to be hashable.  ``roots`` fixes the DFS start order (the
    per-history graph passes its txids in numeric order so witnesses stay
    deterministic); by default every node reachable in ``adjacency`` is a
    root, in ``repr`` order.

    Iterative DFS with colouring; reconstructs the edge sequence of the
    first back-edge found.
    """
    if roots is None:
        nodes = set(adjacency)
        for edges in adjacency.values():
            nodes.update(edge.target for edge in edges)
        roots = sorted(nodes, key=repr)
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {node: WHITE for node in roots}
    for root in roots:
        if colour[root] != WHITE:
            continue
        path: list[DependencyEdge] = []
        stack: "list[tuple[Hashable, int]]" = [(root, 0)]
        colour[root] = GREY
        while stack:
            node, edge_index = stack[-1]
            edges = adjacency.get(node, [])
            if edge_index >= len(edges):
                colour[node] = BLACK
                stack.pop()
                if path:
                    path.pop()
                continue
            stack[-1] = (node, edge_index + 1)
            edge = edges[edge_index]
            if colour.get(edge.target, BLACK) == GREY:
                path.append(edge)
                start = next(
                    i for i, e in enumerate(path) if e.source == edge.target
                )
                return Cycle(tuple(path[start:]))
            if colour.get(edge.target, BLACK) == WHITE:
                colour[edge.target] = GREY
                path.append(edge)
                stack.append((edge.target, 0))
        # path is rebuilt per root
    return None


class MultiVersionSerializationGraph:
    """The dependency graph of one committed history."""

    def __init__(
        self,
        transactions: Iterable[CommittedTransaction],
        *,
        phantom_edges: bool = False,
    ) -> None:
        self.transactions = {t.txid: t for t in transactions}
        self.edges: list[DependencyEdge] = []
        self._adjacency: dict[int, list[DependencyEdge]] = {}
        self._build(phantom_edges)

    # ------------------------------------------------------------------
    def _add(self, edge: DependencyEdge) -> None:
        if edge.source == edge.target:
            return
        self.edges.append(edge)
        self._adjacency.setdefault(edge.source, []).append(edge)

    def _build(self, phantom_edges: bool) -> None:
        # Writers per item, ordered by commit timestamp (= version order).
        writers: dict[RowId, list[CommittedTransaction]] = {}
        for txn in self.transactions.values():
            for row in txn.writes:
                writers.setdefault(row, []).append(txn)
        for row, row_writers in writers.items():
            row_writers.sort(key=lambda t: t.commit_ts)
            for earlier, later in zip(row_writers, row_writers[1:]):
                self._add(
                    DependencyEdge(earlier.txid, later.txid, "ww", row)
                )

        writer_by_version: dict[tuple[RowId, int], int] = {}
        for row, row_writers in writers.items():
            for txn in row_writers:
                writer_by_version[(row, txn.commit_ts)] = txn.txid

        for reader in self.transactions.values():
            for row, version_ts in reader.reads:
                # wr: the writer of the version we read (bootstrap = none).
                writer = writer_by_version.get((row, version_ts))
                if writer is not None:
                    self._add(DependencyEdge(writer, reader.txid, "wr", row))
                # rw: the writer of the next version after the one we read.
                successor = self._first_writer_after(
                    writers.get(row, ()), version_ts
                )
                if successor is not None:
                    self._add(
                        DependencyEdge(reader.txid, successor, "rw", row)
                    )
        if phantom_edges:
            self._build_phantom_edges(writers)

    def _build_phantom_edges(
        self, writers: dict[RowId, list[CommittedTransaction]]
    ) -> None:
        """Conservative predicate anti-dependencies (table granularity)."""
        tables_written: dict[str, list[CommittedTransaction]] = {}
        for row, row_writers in writers.items():
            tables_written.setdefault(row[0], []).extend(row_writers)
        for reader in self.transactions.values():
            for predicate in reader.predicate_reads:
                for writer in tables_written.get(predicate.table, ()):
                    if writer.txid == reader.txid:
                        continue
                    if writer.commit_ts > reader.snapshot_ts:
                        self._add(
                            DependencyEdge(
                                reader.txid,
                                writer.txid,
                                "predicate-rw",
                                (predicate.table, predicate.description),
                            )
                        )

    @staticmethod
    def _first_writer_after(
        row_writers: Iterable[CommittedTransaction], version_ts: int
    ) -> Optional[int]:
        best: Optional[CommittedTransaction] = None
        for writer in row_writers:
            if writer.commit_ts > version_ts and (
                best is None or writer.commit_ts < best.commit_ts
            ):
                best = writer
        return best.txid if best is not None else None

    # ------------------------------------------------------------------
    def successors(self, txid: int) -> tuple[DependencyEdge, ...]:
        return tuple(self._adjacency.get(txid, ()))

    def find_cycle(self) -> Optional[Cycle]:
        """A cycle witness, or None when the history is serializable."""
        return find_cycle_in(self._adjacency, roots=sorted(self.transactions))

    @property
    def is_serializable(self) -> bool:
        return self.find_cycle() is None

    def topological_commit_order(self) -> Optional[tuple[int, ...]]:
        """An equivalent serial order (by Kahn's algorithm), or None."""
        indegree: dict[int, int] = {txid: 0 for txid in self.transactions}
        for edge in self.edges:
            indegree[edge.target] += 1
        ready = sorted(
            (txid for txid, degree in indegree.items() if degree == 0),
            key=lambda t: self.transactions[t].commit_ts,
        )
        order: list[int] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for edge in self._adjacency.get(node, ()):
                indegree[edge.target] -= 1
                if indegree[edge.target] == 0:
                    ready.append(edge.target)
            ready.sort(key=lambda t: self.transactions[t].commit_ts)
        if len(order) != len(self.transactions):
            return None
        return tuple(order)
