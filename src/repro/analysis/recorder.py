"""Execution recording for after-the-fact serializability checking.

An :class:`ExecutionRecorder` subscribes to a
:class:`~repro.engine.engine.Database` as an observer and keeps, for every
*committed* transaction, the footprint the multi-version serialization
graph needs: which version of each item was read, which items were
written, and the begin/commit timestamps.  Aborted transactions cannot
affect serializability of the committed history and are only counted.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.engine.engine import Database
from repro.engine.locks import RowId
from repro.engine.transaction import (
    OWN_WRITE,
    PredicateRead,
    Transaction,
    TxnStatus,
)


@dataclass(frozen=True)
class CommittedTransaction:
    """Immutable footprint of one committed transaction."""

    txid: int
    label: str
    start_ts: int
    snapshot_ts: int
    commit_ts: int
    reads: tuple[tuple[RowId, int], ...]
    """(item, commit_ts of the version read); own-write reads excluded."""
    writes: tuple[RowId, ...]
    cc_writes: tuple[RowId, ...]
    predicate_reads: tuple[PredicateRead, ...]

    @property
    def is_read_only(self) -> bool:
        return not self.writes

    def read_version(self, row: RowId) -> Optional[int]:
        for item, version_ts in self.reads:
            if item == row:
                return version_ts
        return None


class ExecutionRecorder:
    """Collects committed-transaction footprints from a live database."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._committed: list[CommittedTransaction] = []
        self.aborted_count = 0

    # ------------------------------------------------------------------
    def attach(self, db: Database) -> "ExecutionRecorder":
        db.add_observer(self.observe)
        return self

    def observe(self, txn: Transaction) -> None:
        """Database observer callback (fires on commit and abort)."""
        if txn.status is TxnStatus.ABORTED:
            with self._lock:
                self.aborted_count += 1
            return
        if txn.status is not TxnStatus.COMMITTED or txn.commit_ts is None:
            return
        record = CommittedTransaction(
            txid=txn.txid,
            label=txn.label,
            start_ts=txn.start_ts,
            snapshot_ts=txn.snapshot_ts,
            commit_ts=txn.commit_ts,
            reads=tuple(
                (row, version_ts)
                for row, version_ts in sorted(txn.reads.items(), key=repr)
                if version_ts != OWN_WRITE
            ),
            writes=tuple(txn.write_order),
            cc_writes=tuple(sorted(txn.cc_writes, key=repr)),
            predicate_reads=tuple(txn.predicate_reads),
        )
        with self._lock:
            self._committed.append(record)

    # ------------------------------------------------------------------
    @property
    def committed(self) -> tuple[CommittedTransaction, ...]:
        with self._lock:
            return tuple(self._committed)

    def __len__(self) -> int:
        with self._lock:
            return len(self._committed)

    def clear(self) -> None:
        with self._lock:
            self._committed.clear()
            self.aborted_count = 0


def record_database(db: Database) -> ExecutionRecorder:
    """Convenience: create a recorder and attach it to ``db``."""
    return ExecutionRecorder().attach(db)


# ----------------------------------------------------------------------
# Durable-horizon salvage (shared by the in-process Cluster and the
# fleet's shard processes — DESIGN.md §13, §14.1)
# ----------------------------------------------------------------------
def salvage_durable_history(
    db: Database,
    recorder: ExecutionRecorder,
    *,
    txid_offset: int = 0,
) -> "list[CommittedTransaction]":
    """The recorder's history truncated to the crashed WAL's durable horizon.

    Call on a *crashed* database.  The recorder observes a commit when
    the status flips, which happens before the group-commit WAL sync — a
    crash can therefore revoke the durability of the newest recorded
    write commits.  Writes past the horizon are dropped (their
    committers saw :class:`~repro.errors.DatabaseCrashed` from the
    sync), and so are read-only commits that *observed* a revoked
    version — their reads would otherwise be misattributed to
    post-restart writers, whose timestamps reuse the crashed clock's
    lost range.  ``txid_offset`` shifts the salvaged txids into a
    disjoint per-crash epoch range: recovery restarts the txid counter
    at 0 and the MVSG keys nodes by txid.
    """
    from dataclasses import replace

    horizon = max(
        (record.commit_ts for record in db.wal.durable_records),
        default=0,
    )
    salvaged: "list[CommittedTransaction]" = []
    for txn in recorder.committed:
        if txn.is_read_only:
            if any(version_ts > horizon for _row, version_ts in txn.reads):
                continue
        elif txn.commit_ts > horizon:
            continue
        salvaged.append(
            replace(txn, txid=txn.txid + txid_offset) if txid_offset else txn
        )
    return salvaged


# ----------------------------------------------------------------------
# History serialisation (JSONL) — how a fleet shard process ships its
# committed footprints back to the parent for the global MVSG merge.
# ----------------------------------------------------------------------
def committed_to_dict(txn: CommittedTransaction) -> dict:
    """JSON-safe dict for one committed footprint (tuples become lists)."""
    return {
        "txid": txn.txid,
        "label": txn.label,
        "start_ts": txn.start_ts,
        "snapshot_ts": txn.snapshot_ts,
        "commit_ts": txn.commit_ts,
        "reads": [
            [[table, key], version_ts]
            for (table, key), version_ts in txn.reads
        ],
        "writes": [[table, key] for table, key in txn.writes],
        "cc_writes": [[table, key] for table, key in txn.cc_writes],
        "predicate_reads": [
            {
                "table": p.table,
                "description": p.description,
                "matched_keys": list(p.matched_keys),
            }
            for p in txn.predicate_reads
        ],
    }


def committed_from_dict(data: dict) -> CommittedTransaction:
    """Inverse of :func:`committed_to_dict`.

    SmallBank row keys are scalars (str / int), which JSON round-trips
    by type — so ``(table, key)`` row ids reconstruct exactly.
    """
    return CommittedTransaction(
        txid=data["txid"],
        label=data["label"],
        start_ts=data["start_ts"],
        snapshot_ts=data["snapshot_ts"],
        commit_ts=data["commit_ts"],
        reads=tuple(
            ((table, key), version_ts)
            for (table, key), version_ts in data["reads"]
        ),
        writes=tuple((table, key) for table, key in data["writes"]),
        cc_writes=tuple((table, key) for table, key in data["cc_writes"]),
        predicate_reads=tuple(
            PredicateRead(
                table=p["table"],
                description=p["description"],
                matched_keys=tuple(p["matched_keys"]),
            )
            for p in data["predicate_reads"]
        ),
    )


def dump_history_jsonl(
    path, committed: "tuple[CommittedTransaction, ...] | list[CommittedTransaction]"
) -> int:
    """Write committed footprints to ``path``, one JSON object per line."""
    import json

    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for txn in committed:
            handle.write(json.dumps(committed_to_dict(txn), sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def load_history_jsonl(path) -> "tuple[CommittedTransaction, ...]":
    """Inverse of :func:`dump_history_jsonl`."""
    import json

    committed: "list[CommittedTransaction]" = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                committed.append(committed_from_dict(json.loads(line)))
    return tuple(committed)
