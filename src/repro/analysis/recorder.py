"""Execution recording for after-the-fact serializability checking.

An :class:`ExecutionRecorder` subscribes to a
:class:`~repro.engine.engine.Database` as an observer and keeps, for every
*committed* transaction, the footprint the multi-version serialization
graph needs: which version of each item was read, which items were
written, and the begin/commit timestamps.  Aborted transactions cannot
affect serializability of the committed history and are only counted.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.engine.engine import Database
from repro.engine.locks import RowId
from repro.engine.transaction import (
    OWN_WRITE,
    PredicateRead,
    Transaction,
    TxnStatus,
)


@dataclass(frozen=True)
class CommittedTransaction:
    """Immutable footprint of one committed transaction."""

    txid: int
    label: str
    start_ts: int
    snapshot_ts: int
    commit_ts: int
    reads: tuple[tuple[RowId, int], ...]
    """(item, commit_ts of the version read); own-write reads excluded."""
    writes: tuple[RowId, ...]
    cc_writes: tuple[RowId, ...]
    predicate_reads: tuple[PredicateRead, ...]

    @property
    def is_read_only(self) -> bool:
        return not self.writes

    def read_version(self, row: RowId) -> Optional[int]:
        for item, version_ts in self.reads:
            if item == row:
                return version_ts
        return None


class ExecutionRecorder:
    """Collects committed-transaction footprints from a live database."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._committed: list[CommittedTransaction] = []
        self.aborted_count = 0

    # ------------------------------------------------------------------
    def attach(self, db: Database) -> "ExecutionRecorder":
        db.add_observer(self.observe)
        return self

    def observe(self, txn: Transaction) -> None:
        """Database observer callback (fires on commit and abort)."""
        if txn.status is TxnStatus.ABORTED:
            with self._lock:
                self.aborted_count += 1
            return
        if txn.status is not TxnStatus.COMMITTED or txn.commit_ts is None:
            return
        record = CommittedTransaction(
            txid=txn.txid,
            label=txn.label,
            start_ts=txn.start_ts,
            snapshot_ts=txn.snapshot_ts,
            commit_ts=txn.commit_ts,
            reads=tuple(
                (row, version_ts)
                for row, version_ts in sorted(txn.reads.items(), key=repr)
                if version_ts != OWN_WRITE
            ),
            writes=tuple(txn.write_order),
            cc_writes=tuple(sorted(txn.cc_writes, key=repr)),
            predicate_reads=tuple(txn.predicate_reads),
        )
        with self._lock:
            self._committed.append(record)

    # ------------------------------------------------------------------
    @property
    def committed(self) -> tuple[CommittedTransaction, ...]:
        with self._lock:
            return tuple(self._committed)

    def __len__(self) -> int:
        with self._lock:
            return len(self._committed)

    def clear(self) -> None:
        with self._lock:
            self._committed.clear()
            self.aborted_count = 0


def record_database(db: Database) -> ExecutionRecorder:
    """Convenience: create a recorder and attach it to ``db``."""
    return ExecutionRecorder().attach(db)
