"""``repro.api`` — the unified client API facade (DESIGN.md §11).

One entry point, two backends::

    import repro

    conn = repro.connect("local://", schemas=schemas, isolation="si")
    with conn.transaction("deposit") as txn:
        row = txn.select("Checking", 1)
        txn.update("Checking", 1, {"Balance": row["Balance"] + 10})
    # committed on clean exit, rolled back on exception

    conn = repro.connect("tcp://127.0.0.1:7654")   # same surface, over TCP

The facade exists because the paper's interesting costs surface at the
boundary of a *networked* multi-client server: one blessed ``Connection``
surface lets the workload drivers and the SmallBank programs run
unmodified against either the in-process engine or a
:class:`repro.net.DatabaseServer`, so over-the-wire and in-process runs
are directly comparable.

Session contract
----------------

``Connection.session()`` returns a *session*: an object with the
statement surface of :class:`repro.engine.session.Session` (``begin`` /
``select`` / ``select_for_update`` / ``lookup_unique`` / ``scan`` /
``update`` / ``identity_update`` / ``write`` / ``insert`` / ``delete`` /
``commit`` / ``rollback`` / ``close`` / ``in_transaction``).  The local
backend hands out real engine sessions; the network backend hands out
proxies that speak the wire protocol.  Prepared mini-SQL statements
(:class:`repro.sqlmini.PreparedStatement`) execute against both — the
network session advertises ``execute_prepared`` and planning moves
server-side.

Deprecation policy: direct :class:`~repro.engine.session.Session`
construction warns with :class:`DeprecationWarning` (the engine session
remains the *implementation* of the local backend, not the public entry
point).  The blessed surface re-exported from :mod:`repro` is covered by
a ``-W error::DeprecationWarning`` CI gate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping, Optional, Protocol, runtime_checkable

from repro.engine.config import EngineConfig
from repro.engine.engine import Database
from repro.engine.session import Session
from repro.engine.storage import TableSchema

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids workload cycle)
    from repro.obs import Observability
    from repro.workload.retry import RetryPolicy

#: ``isolation=`` shorthand accepted by :func:`connect`.
ISOLATION_CONFIGS = {
    "si": EngineConfig.postgres,
    "postgres": EngineConfig.postgres,
    "commercial": EngineConfig.commercial,
    "s2pl": EngineConfig.s2pl,
    "ssi": EngineConfig.ssi,
}


@runtime_checkable
class SessionLike(Protocol):
    """Duck type both backends' sessions satisfy (see module docstring)."""

    def begin(self, label: str = ""): ...
    def commit(self) -> None: ...
    def rollback(self) -> None: ...
    def close(self) -> None: ...
    @property
    def in_transaction(self) -> bool: ...


class TransactionContext:
    """``with conn.transaction() as txn:`` — commit on exit, rollback on error.

    ``txn`` is the backend's session with a transaction already begun.  A
    body that ends the transaction itself (e.g. a business-rule
    ``rollback()``) is respected: the exit handler only commits/rolls back
    while the transaction is still active.
    """

    def __init__(self, connection: "Connection", label: str = "") -> None:
        self._connection = connection
        self._label = label
        self._session: Optional[SessionLike] = None

    def __enter__(self) -> SessionLike:
        session = self._connection.session()
        try:
            session.begin(self._label)
        except BaseException:
            session.close()
            raise
        self._session = session
        return session

    def __exit__(self, exc_type, exc, tb) -> bool:
        session = self._session
        self._session = None
        assert session is not None
        try:
            if session.in_transaction:
                if exc_type is None:
                    session.commit()
                else:
                    session.rollback()
        finally:
            session.close()
        return False


class Connection:
    """A client's handle on one database backend (local or network).

    Subclasses implement :meth:`session`, :meth:`ping`, :meth:`stats` and
    :meth:`close`; everything else is shared.  ``retry_policy`` is carried
    for drivers (the facade itself never retries — retry semantics belong
    to the closed-loop driver protocol, see :mod:`repro.workload.retry`).
    """

    url: str = ""
    retry_policy: Optional[RetryPolicy] = None

    def session(self) -> SessionLike:
        raise NotImplementedError

    def transaction(self, label: str = "") -> TransactionContext:
        return TransactionContext(self, label)

    def ping(self) -> bool:
        raise NotImplementedError

    def stats(self) -> dict:
        raise NotImplementedError

    def vacuum(self) -> int:
        """Prune version-chain history; returns the versions dropped.

        Every backend exposes the engine's :meth:`Database.vacuum`
        maintenance entry point: locally it is a direct call, the network
        backend sends a ``VACUUM`` op, and the cluster backend fans out to
        every shard and sums.
        """
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.url!r}>"


class LocalConnection(Connection):
    """The in-process backend: sessions straight onto a :class:`Database`.

    Deliberately thin — an in-process session is *exactly* what direct
    ``Session(db)`` used to hand out, so pre-facade behaviour (and every
    measured figure) is preserved bit-for-bit.
    """

    def __init__(
        self,
        database: Database,
        *,
        retry_policy: Optional[RetryPolicy] = None,
        obs: "Observability | None" = None,
        url: str = "local://",
    ) -> None:
        self.db = database
        self.retry_policy = retry_policy
        self.url = url
        if obs is not None:
            database.install_observability(obs)

    def session(self) -> Session:
        return Session._internal(self.db)

    def ping(self) -> bool:
        return not self.db.is_crashed

    def stats(self) -> dict:
        return {
            "backend": "local",
            "active_transactions": len(self.db.active_transactions),
            "clock": self.db.clock.last,
            "crashed": self.db.is_crashed,
        }

    def vacuum(self) -> int:
        return self.db.vacuum()

    def close(self) -> None:
        """Nothing to release: the database outlives its connections."""


def _resolve_config(isolation: "str | EngineConfig | None") -> EngineConfig:
    if isolation is None:
        return EngineConfig.postgres()
    if isinstance(isolation, EngineConfig):
        return isolation
    try:
        return ISOLATION_CONFIGS[isolation]()
    except KeyError:
        raise ValueError(
            f"unknown isolation {isolation!r}; expected one of "
            f"{sorted(ISOLATION_CONFIGS)} or an EngineConfig"
        ) from None


def connect(
    url: str = "local://",
    *,
    database: Optional[Database] = None,
    schemas: Optional[Iterable[TableSchema]] = None,
    isolation: "str | EngineConfig | None" = None,
    retry_policy: Optional[RetryPolicy] = None,
    obs: "Observability | None" = None,
    pool_size: int = 8,
    timeout: Optional[float] = 10.0,
) -> Connection:
    """Open a connection to a repro database.

    Parameters
    ----------
    url:
        ``local://`` for the in-process engine, ``tcp://host:port`` for a
        running :class:`repro.net.DatabaseServer`, or
        ``cluster://host:port,host:port[,...]`` for a sharded deployment
        fronted by the :mod:`repro.cluster` router (one ``host:port`` per
        shard, in shard order).
    database / schemas / isolation:
        Local backend only.  Pass an existing :class:`Database` *or* table
        ``schemas`` plus an ``isolation`` (``"si"`` / ``"commercial"`` /
        ``"s2pl"`` / ``"ssi"``, or a full :class:`EngineConfig`) to build a
        fresh one.  The network backend rejects all three — the *server*
        owns its engine configuration.
    retry_policy:
        Carried on the connection for closed-loop drivers.
    obs:
        Local: installed on the database.  Network: used for client-side
        instrumentation (the server has its own bundle).
    pool_size / timeout:
        Network backend: wire-connection pool bound and socket timeout.
    """
    scheme, _, rest = url.partition("://")
    if scheme == "local":
        if database is not None and isolation is not None:
            raise ValueError(
                "pass either an existing database or isolation, not both "
                "(the database already carries its EngineConfig)"
            )
        if database is None:
            if schemas is None:
                raise ValueError(
                    "local:// needs database=... or schemas=... to build one"
                )
            database = Database(list(schemas), _resolve_config(isolation))
        return LocalConnection(
            database, retry_policy=retry_policy, obs=obs, url=url
        )
    if scheme == "tcp":
        if database is not None or schemas is not None or isolation is not None:
            raise ValueError(
                "tcp:// connects to a running server; database/schemas/"
                "isolation are server-side configuration"
            )
        host, _, port_text = rest.partition(":")
        if not host or not port_text:
            raise ValueError(f"tcp URL must be tcp://host:port, got {url!r}")
        try:
            port = int(port_text)
        except ValueError:
            raise ValueError(f"invalid port in {url!r}") from None
        from repro.net.client import NetworkConnection

        return NetworkConnection(
            host,
            port,
            retry_policy=retry_policy,
            obs=obs,
            pool_size=pool_size,
            timeout=timeout,
            url=url,
        )
    if scheme == "cluster":
        if database is not None or schemas is not None or isolation is not None:
            raise ValueError(
                "cluster:// connects to running shard servers; database/"
                "schemas/isolation are server-side configuration"
            )
        addresses: list[tuple[str, int]] = []
        for part in rest.split(","):
            host, _, port_text = part.strip().partition(":")
            if not host or not port_text:
                raise ValueError(
                    f"cluster URL must be cluster://host:port[,host:port...],"
                    f" got {url!r}"
                )
            try:
                addresses.append((host, int(port_text)))
            except ValueError:
                raise ValueError(f"invalid port in {url!r}") from None
        from repro.cluster.router import ClusterConnection

        return ClusterConnection(
            addresses,
            retry_policy=retry_policy,
            obs=obs,
            pool_size=pool_size,
            timeout=timeout,
            url=url,
        )
    raise ValueError(
        f"unsupported URL scheme {scheme!r} in {url!r}; "
        "expected local://, tcp://host:port or cluster://host:port,..."
    )


__all__ = [
    "Connection",
    "ISOLATION_CONFIGS",
    "LocalConnection",
    "SessionLike",
    "TransactionContext",
    "connect",
]
