"""Application mixes beyond SmallBank, modelled for SDG analysis."""

from repro.apps.tpcc import tpcc_specs

__all__ = ["tpcc_specs"]
