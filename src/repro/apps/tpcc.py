"""TPC-C as a program-spec mix: the paper's canonical *safe* application.

Section I of the paper: "Some applications always give serializable
[executions], even when the platform uses SI.  A famous example is the set
of transaction programs that make up TPC-C" — proved by Fekete et al.
(TODS 2005), which is why Oracle7 was allowed in TPC-C benchmarking.  This
module reproduces that result with the generic analysis of
:mod:`repro.core`.

Modelling choices (documented because they carry the proof):

* **Row identities are parameters.**  Inserted rows (the new order and its
  lines, a payment's history record) are modelled as writes to rows named
  by their own parameter (``o``, ``h``): two program instances touch the
  same such row exactly when the parameters coincide, which covers the
  order hand-off from NewOrder to Delivery (scenario ``o = o'`` gives the
  write-write conflict that protects their interaction).
* **Columns matter.**  The TODS proof depends on *dataflow* granularity:
  NewOrder reads a customer's discount/credit while Payment writes the
  same customer's balance — same row, disjoint columns, no logical
  anti-dependency.  Analyze with ``column_granularity=True``; the test
  suite also shows that row-granularity analysis conservatively flags a
  (spurious) dangerous structure, i.e. the refinement is necessary, not
  cosmetic.
* The five programs carry their TPC-C access patterns reduced to the
  tables/columns that participate in any cross-program conflict.
"""

from __future__ import annotations

from repro.core.sdg import StaticDependencyGraph
from repro.core.specs import ProgramSet, ProgramSpec, read, write

NEW_ORDER = ProgramSpec(
    "NewOrder",
    ("w", "d", "c", "i", "o"),
    (
        read("Warehouse", "w", "W_TAX"),
        read("District", "d", "D_TAX", "D_NEXT_O_ID"),
        write("District", "d", "D_NEXT_O_ID"),
        read("Customer", "c", "C_DISCOUNT", "C_LAST", "C_CREDIT"),
        read("Item", "i", "I_PRICE", "I_NAME", "I_DATA"),
        read("Stock", "i", "S_QUANTITY", "S_YTD", "S_ORDER_CNT", "S_DIST"),
        write("Stock", "i", "S_QUANTITY", "S_YTD", "S_ORDER_CNT"),
        # The inserted ORDERS / NEW_ORDER / ORDER_LINE rows.
        write("Order", "o", "O_ENTRY", "O_CARRIER_ID", "OL_AMOUNTS"),
    ),
    description="enter an order: the hottest update path",
)

PAYMENT = ProgramSpec(
    "Payment",
    ("w", "d", "c", "h"),
    (
        read("Warehouse", "w", "W_NAME", "W_YTD"),
        write("Warehouse", "w", "W_YTD"),
        read("District", "d", "D_NAME", "D_YTD"),
        write("District", "d", "D_YTD"),
        read(
            "Customer",
            "c",
            "C_BALANCE",
            "C_YTD_PAYMENT",
            "C_PAYMENT_CNT",
            "C_CREDIT",
            "C_DATA",
        ),
        write(
            "Customer", "c", "C_BALANCE", "C_YTD_PAYMENT", "C_PAYMENT_CNT",
            "C_DATA",
        ),
        write("History", "h", "H_AMOUNT"),  # inserted history record
    ),
    description="record a customer payment",
)

ORDER_STATUS = ProgramSpec(
    "OrderStatus",
    ("c", "o"),
    (
        read("Customer", "c", "C_BALANCE", "C_FIRST", "C_MIDDLE", "C_LAST"),
        read("Order", "o", "O_ENTRY", "O_CARRIER_ID", "OL_AMOUNTS"),
    ),
    description="read-only: a customer's latest order",
)

DELIVERY = ProgramSpec(
    "Delivery",
    ("d", "o", "c"),
    (
        read("Order", "o", "O_ENTRY", "O_CARRIER_ID"),
        write("Order", "o", "O_CARRIER_ID", "OL_AMOUNTS"),
        read("Customer", "c", "C_BALANCE", "C_DELIVERY_CNT"),
        write("Customer", "c", "C_BALANCE", "C_DELIVERY_CNT"),
    ),
    description="deliver the oldest undelivered order of a district",
)

STOCK_LEVEL = ProgramSpec(
    "StockLevel",
    ("d", "o", "i"),
    (
        read("District", "d", "D_NEXT_O_ID"),
        read("Order", "o", "OL_AMOUNTS"),
        read("Stock", "i", "S_QUANTITY"),
    ),
    description="read-only: recent orders' low-stock items",
)


def tpcc_specs() -> ProgramSet:
    return ProgramSet(
        [NEW_ORDER, PAYMENT, ORDER_STATUS, DELIVERY, STOCK_LEVEL],
        name="TPC-C",
    )


def tpcc_sdg(*, column_granularity: bool = True) -> StaticDependencyGraph:
    """The TPC-C SDG; ``column_granularity=True`` is the TODS setting."""
    return StaticDependencyGraph(
        tpcc_specs(), column_granularity=column_granularity
    )
