"""The experiment harness: one spec per paper table/figure.

Programmatic use::

    from repro.bench import get_figure, run_figure

    result = run_figure(get_figure("fig5"), repetitions=2)
    print(result.render())
    assert result.all_claims_hold

CLI: ``python -m repro.bench list``.
"""

from repro.bench.figures import (
    FIG4,
    FIG5,
    FIG6,
    FIG7,
    FIG8,
    FIG9,
    FIGURES,
    Claim,
    FigureResult,
    FigureSpec,
    get_figure,
    run_figure,
)
from repro.bench.static import (
    TABLE1_STRATEGIES,
    render_sdg_figures,
    render_strategy_summary,
    render_table1,
)

__all__ = [
    "Claim",
    "FIG4",
    "FIG5",
    "FIG6",
    "FIG7",
    "FIG8",
    "FIG9",
    "FIGURES",
    "FigureResult",
    "FigureSpec",
    "TABLE1_STRATEGIES",
    "get_figure",
    "render_sdg_figures",
    "render_strategy_summary",
    "render_table1",
    "run_figure",
]
