"""Command-line experiment harness.

Regenerate any table or figure of the paper::

    python -m repro.bench list
    python -m repro.bench table1
    python -m repro.bench sdg
    python -m repro.bench fig4
    python -m repro.bench fig5 --reps 5 --measure 4
    python -m repro.bench fig8 --paper-scale      # full 18000/1000, 30+60s
    python -m repro.bench all
    python -m repro.bench fig4 --metrics-out fig4_metrics.json

``--metrics-out`` installs a :class:`repro.obs.Observability` on every
simulated run and writes the accumulated registry after the sweep (JSON,
or Prometheus text exposition when the path ends in ``.prom``).  Without
the flag no recorder exists and the figures are bit-identical to the
seed.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.figures import FIGURES, get_figure, run_figure
from repro.bench.static import (
    render_sdg_figures,
    render_strategy_summary,
    render_table1,
)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench",
        description=(
            "Reproduce the tables and figures of 'The Cost of "
            "Serializability on Platforms That Use Snapshot Isolation' "
            "(ICDE 2008)."
        ),
    )
    parser.add_argument(
        "experiment",
        help="one of: list, all, table1, sdg, summary, "
        + ", ".join(sorted(FIGURES)),
    )
    parser.add_argument(
        "--reps", type=int, default=2,
        help="repetitions per data point (paper: 5)",
    )
    parser.add_argument(
        "--measure", type=float, default=2.0,
        help="measurement window in simulated seconds (paper: 60)",
    )
    parser.add_argument(
        "--ramp-up", type=float, default=0.3,
        help="ramp-up in simulated seconds (paper: 30)",
    )
    parser.add_argument(
        "--paper-scale", action="store_true",
        help="full 18000-customer population and 30s+60s windows",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress lines"
    )
    parser.add_argument(
        "--csv", metavar="PREFIX", default=None,
        help="also write <PREFIX>_<figure>.csv per figure",
    )
    parser.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="collect engine/driver metrics over the sweep and write the "
        "registry to PATH (JSON; Prometheus text if PATH ends in .prom)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        print("static : table1, sdg, summary")
        for key in sorted(FIGURES):
            print(f"{key:>7}: {FIGURES[key].title}")
        return 0
    if args.experiment == "table1":
        print(render_table1())
        return 0
    if args.experiment == "sdg":
        print(render_sdg_figures())
        return 0
    if args.experiment == "summary":
        print(render_strategy_summary())
        return 0

    keys = sorted(FIGURES) if args.experiment == "all" else [args.experiment]
    if args.experiment == "all":
        print(render_table1())
        print()
        print(render_sdg_figures())
        print()

    obs = None
    if args.metrics_out is not None:
        from repro.obs import Observability

        obs = Observability()

    failed = False
    for key in keys:
        try:
            spec = get_figure(key)
        except KeyError as exc:
            parser.error(str(exc))
        started = time.time()
        progress = None if args.quiet else (
            lambda line: print(f"  ... {line}", file=sys.stderr)
        )
        result = run_figure(
            spec,
            repetitions=args.reps,
            measure=args.measure,
            ramp_up=args.ramp_up,
            paper_scale=args.paper_scale,
            progress=progress,
            obs=obs,
        )
        print(result.render())
        print(f"({time.time() - started:.1f}s)")
        print()
        if args.csv is not None:
            path = f"{args.csv}_{key}.csv"
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(result.to_csv() + "\n")
            print(f"wrote {path}", file=sys.stderr)
        failed = failed or not result.all_claims_hold
    if obs is not None:
        if args.metrics_out.endswith(".prom"):
            obs.metrics.dump_prometheus(args.metrics_out)
        else:
            obs.metrics.dump_json(args.metrics_out)
        print(f"wrote {args.metrics_out}", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
