"""Experiment specifications for every figure of the paper's evaluation.

Each :class:`FigureSpec` names the strategies, MPL sweep, mix and hotspot
of one figure; :func:`run_figure` executes the grid on the simulator and
returns a :class:`FigureResult` that renders the same series the paper
plots (absolute TPS, TPS relative to SI, or per-program abort rates) and
evaluates the figure's qualitative *claims* — the findings the paper
states in prose — as pass/fail checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.sim.runner import SimulationConfig, run_replicated

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Observability
from repro.smallbank.programs import PROGRAM_NAMES, SHORT_NAMES
from repro.smallbank.strategies import get_strategy
from repro.workload.stats import AggregateResult

BASE = "base-si"

Grid = dict[int, dict[str, AggregateResult]]


@dataclass(frozen=True)
class Claim:
    """One qualitative finding the figure must reproduce."""

    description: str
    check: Callable[["FigureResult"], bool]

    def evaluate(self, result: "FigureResult") -> tuple[bool, str]:
        ok = self.check(result)
        return ok, f"[{'PASS' if ok else 'FAIL'}] {self.description}"


@dataclass(frozen=True)
class FigureSpec:
    key: str
    title: str
    platform: str
    strategies: tuple[str, ...]
    mpls: tuple[int, ...] = (1, 5, 10, 15, 20, 25, 30)
    mix: str = "uniform"
    hotspot: Optional[int] = None  # None = the runner's default scale
    customers: Optional[int] = None
    show_relative: bool = False
    abort_figure: bool = False
    claims: tuple[Claim, ...] = ()

    def config(self, strategy: str, mpl: int, **overrides) -> SimulationConfig:
        kwargs = dict(
            strategy=strategy,
            platform=self.platform,
            mpl=mpl,
            mix=self.mix,
        )
        if self.hotspot is not None:
            kwargs["hotspot"] = self.hotspot
        if self.customers is not None:
            kwargs["customers"] = self.customers
        kwargs.update(overrides)
        return SimulationConfig(**kwargs)


@dataclass
class FigureResult:
    spec: FigureSpec
    grid: Grid

    # ------------------------------------------------------------------
    # Series access
    # ------------------------------------------------------------------
    def tps(self, strategy: str, mpl: int) -> float:
        return self.grid[mpl][strategy].tps

    def relative(self, strategy: str, mpl: int) -> float:
        base = self.tps(BASE, mpl)
        return self.tps(strategy, mpl) / base if base else 0.0

    def peak(self, strategy: str) -> float:
        return max(self.tps(strategy, mpl) for mpl in self.spec.mpls)

    def peak_mpl(self, strategy: str) -> int:
        return max(self.spec.mpls, key=lambda mpl: self.tps(strategy, mpl))

    def abort_rate(self, strategy: str, mpl: int, program: str) -> float:
        return self.grid[mpl][strategy].abort_rate(program)

    # ------------------------------------------------------------------
    # Rendering (the "same rows/series the paper reports")
    # ------------------------------------------------------------------
    def render(self) -> str:
        lines = [f"== {self.spec.key}: {self.spec.title} =="]
        if self.spec.abort_figure:
            lines.extend(self._render_aborts())
        else:
            lines.extend(self._render_throughput())
            if self.spec.show_relative:
                lines.append("")
                lines.extend(self._render_relative())
        lines.append("")
        lines.extend(self.evaluate_claims())
        return "\n".join(lines)

    def _labels(self) -> list[str]:
        return [get_strategy(key).label for key in self.spec.strategies]

    def _render_throughput(self) -> list[str]:
        header = f"{'MPL':>4} " + " ".join(
            f"{label:>16}" for label in self._labels()
        )
        lines = ["Throughput (TPS, mean +/- 95% CI):", header]
        for mpl in self.spec.mpls:
            cells = []
            for key in self.spec.strategies:
                agg = self.grid[mpl][key]
                cells.append(f"{agg.tps:9.1f}+-{agg.tps_ci:5.1f}")
            lines.append(f"{mpl:>4} " + " ".join(f"{c:>16}" for c in cells))
        return lines

    def _render_relative(self) -> list[str]:
        header = f"{'MPL':>4} " + " ".join(
            f"{label:>16}" for label in self._labels() if label != "SI"
        )
        lines = ["Throughput relative to SI:", header]
        for mpl in self.spec.mpls:
            cells = [
                f"{self.relative(key, mpl) * 100:7.1f}%"
                for key in self.spec.strategies
                if key != BASE
            ]
            lines.append(f"{mpl:>4} " + " ".join(f"{c:>16}" for c in cells))
        return lines

    def _render_aborts(self) -> list[str]:
        mpl = self.spec.mpls[0]
        header = f"{'strategy':>16} " + " ".join(
            f"{SHORT_NAMES[p]:>8}" for p in PROGRAM_NAMES
        )
        lines = [
            f"Serialization-failure abort rate per program (MPL={mpl}):",
            header,
        ]
        for key in self.spec.strategies:
            label = get_strategy(key).label
            cells = [
                f"{self.abort_rate(key, mpl, p) * 100:7.2f}%"
                for p in PROGRAM_NAMES
            ]
            lines.append(f"{label:>16} " + " ".join(f"{c:>8}" for c in cells))
        return lines

    def to_csv(self) -> str:
        """Machine-readable export (one row per MPL x strategy)."""
        lines = [
            "figure,mpl,strategy,tps,tps_ci,abort_rate,mean_response_time_ms"
        ]
        for mpl in self.spec.mpls:
            for key in self.spec.strategies:
                agg = self.grid[mpl][key]
                lines.append(
                    f"{self.spec.key},{mpl},{key},{agg.tps:.2f},"
                    f"{agg.tps_ci:.2f},{agg.abort_rate():.5f},"
                    f"{agg.mean_response_time * 1000:.3f}"
                )
        return "\n".join(lines)

    def evaluate_claims(self) -> list[str]:
        lines = ["Paper-claim checks:"]
        for claim in self.spec.claims:
            _ok, text = claim.evaluate(self)
            lines.append("  " + text)
        return lines

    @property
    def all_claims_hold(self) -> bool:
        return all(claim.check(self) for claim in self.spec.claims)


def run_figure(
    spec: FigureSpec,
    *,
    repetitions: int = 2,
    measure: float = 2.0,
    ramp_up: float = 0.3,
    paper_scale: bool = False,
    progress: Optional[Callable[[str], None]] = None,
    obs: "Observability | None" = None,
) -> FigureResult:
    """Execute a figure's full grid.

    ``obs`` (optional) accumulates metrics over every cell of the grid —
    the ``--metrics-out`` flag of the bench CLI feeds on this.
    """
    grid: Grid = {}
    for mpl in spec.mpls:
        grid[mpl] = {}
        for strategy in spec.strategies:
            config = spec.config(
                strategy, mpl, measure=measure, ramp_up=ramp_up
            )
            if paper_scale:
                config = config.at_paper_scale()
            if progress is not None:
                progress(f"{spec.key}: {strategy} @ MPL {mpl}")
            grid[mpl][strategy] = run_replicated(config, repetitions, obs=obs)
    return FigureResult(spec, grid)


# ----------------------------------------------------------------------
# Claim helpers
# ----------------------------------------------------------------------


def _claim_relative_at_peak(
    strategy: str, low: float, high: float
) -> Claim:
    label = get_strategy(strategy).label

    def check(result: FigureResult) -> bool:
        mpl = result.peak_mpl(BASE)
        return low <= result.relative(strategy, mpl) <= high

    return Claim(
        f"{label} reaches {low * 100:.0f}-{high * 100:.0f}% of SI at SI's peak",
        check,
    )


def _claim_mpl1_relative(strategy: str, low: float, high: float) -> Claim:
    label = get_strategy(strategy).label
    return Claim(
        f"{label} at MPL 1 is {low * 100:.0f}-{high * 100:.0f}% of SI "
        "(the flush-fraction effect)",
        lambda r: low <= r.relative(strategy, 1) <= high,
    )


# ----------------------------------------------------------------------
# The figures
# ----------------------------------------------------------------------

FIG4 = FigureSpec(
    key="fig4",
    title="Costs for SI-serializability when eliminating ALL vulnerable "
    "edges (PostgreSQL)",
    platform="postgres",
    strategies=(BASE, "materialize-all", "promote-all"),
    claims=(
        Claim(
            "SI throughput rises with MPL and plateaus (no decline > 10%)",
            lambda r: r.tps(BASE, 30) > 0.9 * r.peak(BASE)
            and r.peak(BASE) > 3 * r.tps(BASE, 1),
        ),
        _claim_relative_at_peak("materialize-all", 0.62, 0.82),
        Claim(
            "PromoteALL rises to 85-100% of SI by MPL 30 "
            "(paper: 'rises till it reaches about 95%')",
            lambda r: 0.85 <= r.relative("promote-all", 30) <= 1.0,
        ),
        _claim_mpl1_relative("promote-all", 0.72, 0.9),
        Claim(
            "PromoteALL beats MaterializeALL at every MPL >= 10 "
            "(promotion wins on PostgreSQL)",
            lambda r: all(
                r.tps("promote-all", mpl) > r.tps("materialize-all", mpl)
                for mpl in r.spec.mpls
                if mpl >= 10
            ),
        ),
    ),
)

FIG5 = FigureSpec(
    key="fig5",
    title="Eliminating the BW and WT vulnerabilities (PostgreSQL)",
    platform="postgres",
    strategies=(
        BASE,
        "materialize-bw",
        "promote-bw-upd",
        "materialize-wt",
        "promote-wt-upd",
    ),
    show_relative=True,
    claims=(
        Claim(
            "PromoteWT is indistinguishable from SI (within 5% everywhere)",
            lambda r: all(
                abs(r.relative("promote-wt-upd", mpl) - 1.0) < 0.05
                for mpl in r.spec.mpls
            ),
        ),
        _claim_relative_at_peak("materialize-wt", 0.82, 0.97),
        _claim_relative_at_peak("materialize-bw", 0.80, 0.95),
        _claim_mpl1_relative("materialize-bw", 0.72, 0.9),
        _claim_mpl1_relative("promote-bw-upd", 0.72, 0.9),
        _claim_mpl1_relative("materialize-wt", 0.95, 1.05),
        _claim_mpl1_relative("promote-wt-upd", 0.95, 1.05),
        Claim(
            "BW penalty shrinks with MPL while WT penalty grows "
            "(the reversal of Section IV-C)",
            lambda r: r.relative("promote-bw-upd", 30)
            > r.relative("promote-bw-upd", 1)
            and r.relative("materialize-wt", 30)
            < r.relative("materialize-wt", 1),
        ),
        Claim(
            "PromoteBW approaches SI's peak by MPL 30 (>= 90%)",
            lambda r: r.relative("promote-bw-upd", 30) >= 0.90,
        ),
    ),
)

FIG6 = FigureSpec(
    key="fig6",
    title="Comparison of abort rates at MPL 20 (PostgreSQL)",
    platform="postgres",
    strategies=(
        BASE,
        "materialize-bw",
        "promote-bw-upd",
        "materialize-wt",
        "promote-wt-upd",
    ),
    mpls=(20,),
    # Abort rates are hotspot-sensitive: use the paper's exact population.
    customers=18_000,
    hotspot=1_000,
    abort_figure=True,
    claims=(
        Claim(
            "Balance aborts appear only under PromoteBW "
            "(and stay 0 under SI / WT options)",
            lambda r: r.abort_rate("promote-bw-upd", 20, "Balance") > 0
            and r.abort_rate(BASE, 20, "Balance") == 0
            and r.abort_rate("promote-wt-upd", 20, "Balance") == 0
            and r.abort_rate("materialize-wt", 20, "Balance") == 0,
        ),
        Claim(
            "PromoteBW raises DepositChecking and Amalgamate aborts above SI",
            lambda r: r.abort_rate("promote-bw-upd", 20, "DepositChecking")
            > r.abort_rate(BASE, 20, "DepositChecking")
            and r.abort_rate("promote-bw-upd", 20, "Amalgamate")
            > r.abort_rate(BASE, 20, "Amalgamate"),
        ),
        Claim(
            "All abort rates stay in the paper's axis range (< 5%)",
            lambda r: all(
                r.abort_rate(s, 20, p) < 0.05
                for s in r.spec.strategies
                for p in PROGRAM_NAMES
            ),
        ),
    ),
)

FIG7 = FigureSpec(
    key="fig7",
    title="Costs with high contention (PostgreSQL; hotspot 10, 60% Balance)",
    platform="postgres",
    strategies=(
        BASE,
        "materialize-bw",
        "materialize-wt",
        "promote-wt-upd",
        "promote-bw-upd",
        "materialize-all",
        "promote-all",
    ),
    mpls=(5, 10, 15, 20, 25, 30),
    mix="balance60",
    hotspot=10,
    claims=(
        Claim(
            "Eliminating WT costs at most ~10% even under high contention",
            lambda r: min(
                r.relative("promote-wt-upd", mpl) for mpl in r.spec.mpls
            )
            > 0.88
            and min(r.relative("materialize-wt", mpl) for mpl in r.spec.mpls)
            > 0.85,
        ),
        Claim(
            "MaterializeBW loses roughly half of SI's peak throughput",
            lambda r: 0.35
            <= r.peak("materialize-bw") / r.peak(BASE)
            <= 0.65,
        ),
        Claim(
            "MaterializeALL/PromoteALL are the worst (up to ~60% loss)",
            lambda r: r.peak("materialize-all") / r.peak(BASE) <= 0.55
            and r.peak("promote-all") / r.peak(BASE) <= 0.60,
        ),
        Claim(
            "SDG-blind strategies do worse than targeted MaterializeBW",
            lambda r: r.peak("materialize-all") < r.peak("materialize-bw"),
        ),
    ),
)

FIG8 = FigureSpec(
    key="fig8",
    title="Eliminating vulnerability between WriteCheck and TransactSaving "
    "(Commercial Platform)",
    platform="commercial",
    strategies=(BASE, "materialize-wt", "promote-wt-sfu", "promote-wt-upd"),
    mpls=(1, 3, 5, 10, 15, 20, 25, 30),
    claims=(
        Claim(
            "SI peaks around MPL 20-25 and then declines rapidly "
            "(>= 20% below peak at MPL 30)",
            lambda r: r.peak_mpl(BASE) in (15, 20, 25)
            and r.tps(BASE, 30) < 0.8 * r.peak(BASE),
        ),
        Claim(
            "PromoteWT-sfu reaches essentially SI's peak (>= 97%)",
            lambda r: r.peak("promote-wt-sfu") >= 0.97 * r.peak(BASE),
        ),
        Claim(
            "PromoteWT-upd is similar up to the peak (>= 90%)",
            lambda r: r.peak("promote-wt-upd") >= 0.90 * r.peak(BASE),
        ),
        Claim(
            "MaterializeWT stays within ~5% of SI",
            lambda r: r.peak("materialize-wt") >= 0.95 * r.peak(BASE),
        ),
    ),
)

FIG9 = FigureSpec(
    key="fig9",
    title="Eliminating vulnerability between Balance and WriteCheck "
    "(Commercial Platform)",
    platform="commercial",
    strategies=(BASE, "materialize-bw", "promote-bw-sfu", "promote-bw-upd"),
    mpls=(1, 3, 5, 10, 15, 20, 25, 30),
    show_relative=True,
    claims=(
        Claim(
            "every BW option peaks at least 10% below SI",
            lambda r: all(
                r.peak(s) <= 0.90 * r.peak(BASE)
                for s in (
                    "materialize-bw",
                    "promote-bw-sfu",
                    "promote-bw-upd",
                )
            ),
        ),
        Claim(
            "PromoteBW-upd peaks at ~80% of SI (paper: 630 vs ~800)",
            lambda r: 0.72 <= r.peak("promote-bw-upd") / r.peak(BASE) <= 0.88,
        ),
        Claim(
            "materialization beats promotion-by-update on the commercial "
            "platform (the reverse of PostgreSQL)",
            lambda r: r.peak("materialize-bw") > r.peak("promote-bw-upd"),
        ),
    ),
)

FIGURES: dict[str, FigureSpec] = {
    spec.key: spec for spec in (FIG4, FIG5, FIG6, FIG7, FIG8, FIG9)
}


def get_figure(key: str) -> FigureSpec:
    try:
        return FIGURES[key]
    except KeyError:
        known = ", ".join(sorted(FIGURES))
        raise KeyError(f"unknown figure {key!r}; known: {known}") from None
