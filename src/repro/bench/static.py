"""The static artifacts of the paper: Table I and the SDG figures 1-3.

Everything here is *derived* from the strategy transforms — these are the
renderers that print them in the paper's layout.
"""

from __future__ import annotations

from repro.core import build_sdg
from repro.smallbank.programs import PROGRAM_NAMES, SHORT_NAMES, smallbank_specs
from repro.smallbank.schema import CHECKING, CONFLICT, SAVING
from repro.smallbank.strategies import ALL_STRATEGIES, get_strategy

_TABLE_ABBREV = {SAVING: "Sav", CHECKING: "Check", CONFLICT: "Conf"}

#: Row order of the paper's Table I.
TABLE1_STRATEGIES = (
    "materialize-wt",
    "promote-wt-upd",
    "materialize-bw",
    "promote-bw-upd",
    "materialize-all",
    "promote-all",
)


def render_table1(strategy_keys: tuple[str, ...] = TABLE1_STRATEGIES) -> str:
    """Table I: overview of tables updated with each option."""
    lines = [
        "== Table I: Overview of tables updated with each option ==",
        f"{'Option/TX':>16} " + " ".join(
            f"{SHORT_NAMES[p]:>12}" for p in PROGRAM_NAMES
        ),
    ]
    for key in strategy_keys:
        strategy = get_strategy(key)
        row = strategy.table_one_row()
        cells = []
        for program in PROGRAM_NAMES:
            tables = row.get(program, ())
            cells.append(
                "+".join(_TABLE_ABBREV[t] for t in tables) if tables else "-"
            )
        lines.append(
            f"{strategy.label:>16} " + " ".join(f"{c:>12}" for c in cells)
        )
    return "\n".join(lines)


def render_sdg_figures(*, sfu_is_write: bool = True) -> str:
    """Figures 1, 2 and 3: the SDGs before and after each option."""
    sections = [
        "== Figure 1: SDG for the SmallBank benchmark ==",
        build_sdg(smallbank_specs()).describe(),
    ]
    for key, figure in (
        ("materialize-wt", "Figure 2 (Option WT, materialized)"),
        ("promote-wt-upd", "Figure 2 (Option WT, promoted)"),
        ("materialize-bw", "Figure 3(a): MaterializeBW"),
        ("promote-bw-upd", "Figure 3(b): PromoteBW-upd"),
    ):
        strategy = get_strategy(key)
        sections.append("")
        sections.append(f"== {figure} ==")
        sections.append(
            build_sdg(strategy.specs(), sfu_is_write=sfu_is_write).describe()
        )
    return "\n".join(sections)


def render_strategy_summary() -> str:
    """One line per strategy: guarantees and modification counts."""
    lines = ["== Strategy summary =="]
    for strategy in ALL_STRATEGIES:
        if strategy.is_baseline:
            guarantee = "NOT serializable (baseline)"
        else:
            postgres = "yes" if strategy.serializable_on_postgres else "NO"
            commercial = "yes" if strategy.serializable_on_commercial else "NO"
            guarantee = f"serializable: postgres={postgres} commercial={commercial}"
        lines.append(
            f"  {strategy.label:>16}: {len(strategy.modifications()):d} "
            f"modifications; {guarantee}"
        )
    return "\n".join(lines)
