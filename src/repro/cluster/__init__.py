"""``repro.cluster`` — sharded deployment with cross-shard 2PC (DESIGN.md §12).

SmallBank hash-partitioned by customer across N independent
:class:`~repro.net.DatabaseServer` shards, fronted by a shard-aware
router that the facade exposes as ``repro.connect("cluster://...")``.
Cross-shard transactions commit with presumed-abort two-phase commit;
single-shard transactions (the overwhelming majority under customer
partitioning) skip the prepare round entirely.

Per-shard execution traces merge into one global serialization graph
(:func:`repro.analysis.merge_shard_histories`), so the paper's
certification story extends cluster-wide: plain SI across shards
exhibits write-skew no individual shard can see, and the promotion /
materialization strategies restore acyclicity of the *merged* graph.

``python -m repro.cluster --shards 2`` stands up a local cluster and
prints its ``cluster://`` URL.
"""

from repro.cluster.chaos import ChaosConfig, ChaosResult, run_chaos
from repro.cluster.coordinator import DecisionLog, TwoPhaseCoordinator
from repro.cluster.fleet import ProcessCluster, ShardFleet, ShardProcess
from repro.cluster.oracle import TimestampOracle
from repro.cluster.partition import (
    PARTITION_COLUMNS,
    HashPartitioner,
    build_shard_database,
)
from repro.cluster.router import (
    Cluster,
    ClusterConnection,
    ClusterSession,
    ShardHealth,
)

__all__ = [
    "ChaosConfig",
    "ChaosResult",
    "Cluster",
    "ClusterConnection",
    "ClusterSession",
    "DecisionLog",
    "HashPartitioner",
    "PARTITION_COLUMNS",
    "ProcessCluster",
    "ShardFleet",
    "ShardHealth",
    "ShardProcess",
    "TimestampOracle",
    "TwoPhaseCoordinator",
    "build_shard_database",
    "run_chaos",
]
