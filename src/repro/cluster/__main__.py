"""``python -m repro.cluster`` — stand up a local sharded deployment.

Builds N hash-partitioned SmallBank shards, serves each from its own
:class:`~repro.net.DatabaseServer`, and prints the ``cluster://`` URL a
client hands to :func:`repro.connect`.  Runs until stdin reaches EOF
(same subprocess-control convention as ``python -m repro.net``)::

    LISTENING <port> <port> ...     once every shard socket is bound
    CLUSTER cluster://host:p1,host:p2
    STATS <json>                    merged counters after shutdown

Quickstart::

    PYTHONPATH=src python -m repro.cluster --shards 2 &
    PYTHONPATH=src python -c "
    import repro
    conn = repro.connect('cluster://127.0.0.1:7751,127.0.0.1:7752')
    with conn.transaction('Balance') as txn:
        print(txn.select('Checking', 1))"

``--smoke`` instead runs a short self-contained workload (all five
SmallBank programs at MPL 4) against the cluster, certifies the merged
global trace, and exits non-zero if it is not serializable under the
requested strategy — the CI cluster smoke job.

``--chaos-smoke`` runs the seeded distributed chaos soak
(:mod:`repro.cluster.chaos`): network faults, a shard kill/restart and
coordinator crashes over ≥ 2 shards at MPL 8, then recovery to a fixed
point.  Exits non-zero unless the merged MVSG is acyclic, the ledger is
exactly conserved, and zero transactions remain in doubt.  Writes the
result record to ``BENCH_chaos_cluster.json`` (``--out`` overrides).

``--procs`` switches any of the above from the in-process
:class:`~repro.cluster.Cluster` to the multi-process
:class:`~repro.cluster.ProcessCluster` — one OS process per shard, real
parallelism on multi-core hosts.  Under ``--chaos-smoke`` the
certification then also requires that no shard process is orphaned.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.api import ISOLATION_CONFIGS
from repro.cluster.router import Cluster


def _smoke(
    cluster: Cluster,
    mpl: int,
    duration: float,
    strategy_key: str,
    customers: int,
) -> int:
    """Five-program uniform mix at MPL ``mpl``; certify the merged trace."""
    from repro.analysis import merge_shard_histories
    from repro.smallbank.strategies import get_strategy
    from repro.workload.driver import ThreadedDriver, ThreadedDriverConfig

    strategy = get_strategy(strategy_key)
    connection = cluster.connect()
    try:
        stats = ThreadedDriver(
            None,
            strategy.transactions(),
            ThreadedDriverConfig(
                mpl=mpl,
                customers=customers,
                hotspot=max(2, customers // 4),
                mix="uniform",
                duration=duration,
            ),
            connection=connection,
        ).run()
        connection.flush()  # settle deferred read-only COMMITs
        counters = connection.counters()
    finally:
        connection.close()
    report = merge_shard_histories(cluster.histories())
    print(f"SMOKE {report.describe()}", flush=True)
    print(
        "STATS "
        + json.dumps(
            {
                "commits": stats.total_commits,
                "aborts": stats.abort_count(),
                "serializable": report.serializable,
                "strategy": strategy_key,
                **counters,
            },
            sort_keys=True,
        ),
        flush=True,
    )
    return 0 if report.serializable else 1


def _chaos_smoke(args) -> int:
    """Seeded chaos soak + certification; the CI chaos-cluster gate."""
    from repro.cluster.chaos import ChaosConfig, run_chaos

    config = ChaosConfig(
        shards=max(2, args.shards),
        customers=args.customers,
        mpl=max(8, args.mpl),
        duration=3.0 if args.duration is None else args.duration,
        seed=args.seed,
        isolation=args.isolation,
        strategy=args.strategy,
        process_model="multiproc" if args.procs else "inproc",
    )
    result = run_chaos(config)
    record = result.to_record()
    if args.out:
        with open(args.out, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    print(f"CHAOS {result.report_description}", flush=True)
    print("STATS " + json.dumps(record, sort_keys=True), flush=True)
    if not result.ok:
        print(
            "FAIL "
            + json.dumps(record["checks"], sort_keys=True),
            file=sys.stderr,
            flush=True,
        )
        return 1
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--customers", type=int, default=100)
    parser.add_argument(
        "--isolation", default="si", choices=sorted(ISOLATION_CONFIGS)
    )
    parser.add_argument(
        "--autovacuum", type=float, default=None, metavar="SECONDS",
        help="per-shard periodic version-chain vacuum",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="run a short five-program workload, certify, and exit",
    )
    parser.add_argument(
        "--chaos-smoke", action="store_true",
        help="seeded fault soak (shard + coordinator crashes), certify, exit",
    )
    parser.add_argument(
        "--procs", action="store_true",
        help="one OS process per shard (multi-process fleet) instead of "
        "in-process servers",
    )
    parser.add_argument("--mpl", type=int, default=4)
    parser.add_argument(
        "--duration", type=float, default=None,
        help="workload duration in seconds (default 1.0, chaos 3.0)",
    )
    parser.add_argument(
        "--strategy", default="promote-all",
        help="SmallBank strategy key for --smoke (e.g. base-si, promote-all)",
    )
    parser.add_argument(
        "--seed", type=int, default=11,
        help="fault-schedule / population seed for --chaos-smoke",
    )
    parser.add_argument(
        "--out", default="BENCH_chaos_cluster.json", metavar="PATH",
        help="result-record file for --chaos-smoke ('' disables)",
    )
    args = parser.parse_args(argv)

    if args.chaos_smoke:
        return _chaos_smoke(args)

    if args.procs:
        from repro.cluster.fleet import ProcessCluster

        cluster = ProcessCluster(
            args.shards,
            customers=args.customers,
            isolation=args.isolation,
            autovacuum_interval=args.autovacuum,
        )
    else:
        cluster = Cluster(
            args.shards,
            customers=args.customers,
            isolation=args.isolation,
            autovacuum_interval=args.autovacuum,
        )
    try:
        ports = " ".join(str(port) for _host, port in cluster.addresses)
        print(f"LISTENING {ports}", flush=True)
        print(f"CLUSTER {cluster.url}", flush=True)
        if args.smoke:
            code = _smoke(
                cluster,
                args.mpl,
                1.0 if args.duration is None else args.duration,
                args.strategy,
                args.customers,
            )
            if args.procs:
                cluster.shutdown()
                if cluster.fleet.alive_count or cluster.fleet.kill_count:
                    print(
                        "FAIL orphaned or force-killed shard processes",
                        file=sys.stderr,
                        flush=True,
                    )
                    return 1
            return code
        try:
            sys.stdin.read()  # block until the parent closes our stdin
        except KeyboardInterrupt:
            pass
        if args.procs:
            cluster.shutdown()  # children print STATS as they drain
            stats = [shard.stats for shard in cluster.fleet.shards]
        else:
            stats = [server.stats() for server in cluster.servers]
        print(f"STATS {json.dumps(stats, sort_keys=True)}", flush=True)
        return 0
    finally:
        cluster.shutdown()


if __name__ == "__main__":
    raise SystemExit(main())
