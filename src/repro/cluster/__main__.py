"""``python -m repro.cluster`` — stand up a local sharded deployment.

Builds N hash-partitioned SmallBank shards, serves each from its own
:class:`~repro.net.DatabaseServer`, and prints the ``cluster://`` URL a
client hands to :func:`repro.connect`.  Runs until stdin reaches EOF
(same subprocess-control convention as ``python -m repro.net``)::

    LISTENING <port> <port> ...     once every shard socket is bound
    CLUSTER cluster://host:p1,host:p2
    STATS <json>                    merged counters after shutdown

Quickstart::

    PYTHONPATH=src python -m repro.cluster --shards 2 &
    PYTHONPATH=src python -c "
    import repro
    conn = repro.connect('cluster://127.0.0.1:7751,127.0.0.1:7752')
    with conn.transaction('Balance') as txn:
        print(txn.select('Checking', 1))"

``--smoke`` instead runs a short self-contained workload (all five
SmallBank programs at MPL 4) against the cluster, certifies the merged
global trace, and exits non-zero if it is not serializable under the
requested strategy — the CI cluster smoke job.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.api import ISOLATION_CONFIGS
from repro.cluster.router import Cluster


def _smoke(
    cluster: Cluster,
    mpl: int,
    duration: float,
    strategy_key: str,
    customers: int,
) -> int:
    """Five-program uniform mix at MPL ``mpl``; certify the merged trace."""
    from repro.analysis import merge_shard_histories
    from repro.smallbank.strategies import get_strategy
    from repro.workload.driver import ThreadedDriver, ThreadedDriverConfig

    strategy = get_strategy(strategy_key)
    connection = cluster.connect()
    try:
        stats = ThreadedDriver(
            None,
            strategy.transactions(),
            ThreadedDriverConfig(
                mpl=mpl,
                customers=customers,
                hotspot=max(2, customers // 4),
                mix="uniform",
                duration=duration,
            ),
            connection=connection,
        ).run()
        connection.flush()  # settle deferred read-only COMMITs
        counters = connection.counters()
    finally:
        connection.close()
    report = merge_shard_histories(cluster.histories())
    print(f"SMOKE {report.describe()}", flush=True)
    print(
        "STATS "
        + json.dumps(
            {
                "commits": stats.total_commits,
                "aborts": stats.abort_count(),
                "serializable": report.serializable,
                "strategy": strategy_key,
                **counters,
            },
            sort_keys=True,
        ),
        flush=True,
    )
    return 0 if report.serializable else 1


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--customers", type=int, default=100)
    parser.add_argument(
        "--isolation", default="si", choices=sorted(ISOLATION_CONFIGS)
    )
    parser.add_argument(
        "--autovacuum", type=float, default=None, metavar="SECONDS",
        help="per-shard periodic version-chain vacuum",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="run a short five-program workload, certify, and exit",
    )
    parser.add_argument("--mpl", type=int, default=4)
    parser.add_argument(
        "--duration", type=float, default=1.0,
        help="smoke workload duration in seconds",
    )
    parser.add_argument(
        "--strategy", default="promote-all",
        help="SmallBank strategy key for --smoke (e.g. base-si, promote-all)",
    )
    args = parser.parse_args(argv)

    cluster = Cluster(
        args.shards,
        customers=args.customers,
        isolation=args.isolation,
        autovacuum_interval=args.autovacuum,
    )
    try:
        ports = " ".join(str(port) for _host, port in cluster.addresses)
        print(f"LISTENING {ports}", flush=True)
        print(f"CLUSTER {cluster.url}", flush=True)
        if args.smoke:
            return _smoke(
                cluster, args.mpl, args.duration, args.strategy, args.customers
            )
        try:
            sys.stdin.read()  # block until the parent closes our stdin
        except KeyboardInterrupt:
            pass
        stats = [server.stats() for server in cluster.servers]
        print(f"STATS {json.dumps(stats, sort_keys=True)}", flush=True)
        return 0
    finally:
        cluster.shutdown()


if __name__ == "__main__":
    raise SystemExit(main())
