"""Seeded distributed chaos harness (DESIGN.md §13).

Runs a money-conserving SmallBank mix (Balance + Amalgamate, so the
cluster-wide balance sum is invariant under *any* interleaving of commits
and aborts — atomicity, not luck, is what the ledger check certifies) at
MPL :attr:`ChaosConfig.mpl` over a live :class:`~repro.cluster.Cluster`
while a fault plan injects network faults (dropped / delayed / duplicated
frames, connection resets), kills and restarts shards mid-flight, and
crashes the 2PC coordinator inside its in-doubt window.

After the storm the harness drives recovery to a fixed point — every
crashed shard restarted, every in-doubt or orphaned-prepared gtid
settled through the coordinator's decision log — and then certifies:

* **zero in-doubt transactions** remain anywhere;
* the **merged MVSG is acyclic** (cluster-serializable) over the
  durable per-shard histories, salvaged across crashes by
  :meth:`~repro.cluster.router.Cluster.crash_shard`;
* the **ledger is exactly conserved**: final balance sum equals the
  initial one.

One known observability gap, by design: an in-doubt gtid whose commit is
re-delivered *after* a shard restart replays from the durable prepare's
redo with no live transaction object, so no recorder observes it.  Its
effects are durable and its absence from the merged graph cannot
manufacture a cycle (a missing node only removes edges); the run's
``in_doubt_commits`` counter bounds how many such gaps exist.

Entry points: :func:`run_chaos` (used by ``python -m repro.cluster
--chaos-smoke`` and ``benchmarks/bench_chaos_cluster.py``).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import asdict, dataclass, field

from repro.cluster.router import Cluster, ClusterConnection
from repro.errors import (
    ConnectionClosed,
    CoordinatorCrashed,
    DatabaseCrashed,
    ReproError,
    ShardUnavailable,
    TransactionAborted,
)
from repro.faults import FaultPlan, FaultSpec
from repro.smallbank import programs as names
from repro.smallbank.schema import customer_name
from repro.smallbank.strategies import get_strategy


@dataclass(frozen=True)
class ChaosConfig:
    """One chaos soak: cluster shape, workload, and fault schedule."""

    shards: int = 2
    customers: int = 40
    mpl: int = 8
    duration: float = 4.0
    seed: int = 11
    isolation: str = "si"
    strategy: str = "promote-all"
    #: ``"inproc"`` runs every shard server inside this interpreter
    #: (:class:`~repro.cluster.router.Cluster`); ``"multiproc"`` launches
    #: one OS process per shard (:class:`~repro.cluster.fleet.ProcessCluster`)
    #: and drives crash/recovery over the control channel.
    process_model: str = "inproc"
    #: Fraction of transactions that are read-mostly Balance checks; the
    #: rest are cross-shard-capable Amalgamates (the 2PC drivers).
    balance_fraction: float = 0.4
    # --- network faults (per outbound response frame) -----------------
    drop_rate: float = 0.01
    delay_rate: float = 0.01
    delay_magnitude: float = 0.01
    reset_rate: float = 0.005
    #: Probability a delivered commit decision is delivered twice.
    dup_rate: float = 0.1
    #: Response frames to let through before network chaos starts.
    net_warmup_frames: int = 200
    # --- process faults -----------------------------------------------
    shard_crashes: int = 1
    shard_downtime: float = 0.3
    #: Controller polls before the first shard crash (poll = 50 ms).
    crash_after_polls: int = 16
    coordinator_crashes: int = 2
    coordinator_crash_rate: float = 0.25
    # --- client hardening ---------------------------------------------
    rpc_deadline: float = 0.5
    heartbeat_interval: float = 0.05
    resolver_interval: float = 0.05
    unhealthy_after: int = 2
    #: Recovery fixed-point deadline (seconds) after the storm.
    recovery_deadline: float = 10.0


@dataclass
class ChaosResult:
    """Everything a bench record or CI gate needs from one soak."""

    config: ChaosConfig
    serializable: bool
    ledger_conserved: bool
    initial_money: float
    final_money: float
    in_doubt_after_recovery: int
    report_description: str
    counters: "dict[str, int]" = field(default_factory=dict)
    router_counters: "dict[str, int]" = field(default_factory=dict)
    fault_injections: "dict[str, int]" = field(default_factory=dict)
    fault_opportunities: "dict[str, int]" = field(default_factory=dict)
    shard_restarts: int = 0
    global_transactions: int = 0
    cross_shard_transactions: int = 0
    #: Shard child processes still alive after shutdown (multiproc only;
    #: always 0 inproc).  Any non-zero value is a process-leak bug.
    orphan_processes: int = 0
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        """The CI gate: serializable, conserved, nothing left in doubt,
        no shard process left behind."""
        return (
            self.serializable
            and self.ledger_conserved
            and self.in_doubt_after_recovery == 0
            and self.orphan_processes == 0
        )

    def to_record(self) -> dict:
        return {
            "benchmark": "chaos_cluster",
            "config": asdict(self.config),
            "ok": self.ok,
            "checks": {
                "serializable": self.serializable,
                "ledger_conserved": self.ledger_conserved,
                "in_doubt_after_recovery": self.in_doubt_after_recovery,
            },
            "initial_money": self.initial_money,
            "final_money": self.final_money,
            "counters": dict(self.counters),
            "router": dict(self.router_counters),
            "faults": {
                "injections": dict(self.fault_injections),
                "opportunities": dict(self.fault_opportunities),
            },
            "shard_restarts": self.shard_restarts,
            "global_transactions": self.global_transactions,
            "cross_shard_transactions": self.cross_shard_transactions,
            "process_model": self.config.process_model,
            "orphan_processes": self.orphan_processes,
            "report": self.report_description,
            "elapsed": round(self.elapsed, 3),
        }


def build_fault_plan(config: ChaosConfig) -> FaultPlan:
    """The seeded fault schedule for one soak."""
    return FaultPlan(
        [
            FaultSpec(
                "net-drop-frame",
                probability=config.drop_rate,
                start_after=config.net_warmup_frames,
            ),
            FaultSpec(
                "net-delay-frame",
                probability=config.delay_rate,
                magnitude=config.delay_magnitude,
                start_after=config.net_warmup_frames,
            ),
            FaultSpec(
                "conn-reset",
                probability=config.reset_rate,
                start_after=2 * config.net_warmup_frames,
            ),
            FaultSpec("net-dup-decision", probability=config.dup_rate),
            FaultSpec(
                "coordinator-crash-window",
                probability=config.coordinator_crash_rate,
                max_fires=config.coordinator_crashes,
                start_after=2,
            ),
            FaultSpec(
                "shard-crash",
                probability=1.0,
                start_after=config.crash_after_polls,
                max_fires=config.shard_crashes,
                magnitude=config.shard_downtime,
            ),
        ],
        seed=config.seed,
    )


def _quiet(callable_) -> None:
    try:
        callable_()
    except ReproError:
        pass


def _worker_loop(
    index: int,
    connection: ClusterConnection,
    config: ChaosConfig,
    stop: threading.Event,
    counters: "dict[str, int]",
    lock: threading.Lock,
    txns,
) -> None:
    """One MPL slot: run random conserving programs until told to stop.

    Every error class has a recovery action — retry, re-session, back
    off — so the worker survives anything the fault plan throws and the
    soak measures the *system's* self-healing, not the client's luck.
    """
    rng = random.Random(f"chaos-worker/{config.seed}/{index}")

    def bump(key: str) -> None:
        with lock:
            counters[key] += 1

    session = connection.session()
    while not stop.is_set():
        # Customer ids are 1-based (the SmallBank population loads
        # customers 1..N).
        if rng.random() < config.balance_fraction:
            program = names.BALANCE
            args: dict = {"N": customer_name(rng.randint(1, config.customers))}
        else:
            first = rng.randint(1, config.customers)
            second = rng.randint(1, config.customers - 1)
            if second >= first:
                second += 1
            program = names.AMALGAMATE
            args = {"N1": customer_name(first), "N2": customer_name(second)}
        try:
            txns.run(session, program, args)
            bump("commits")
        except TransactionAborted:
            bump("aborts")  # ordinary serialization/SSI abort: just retry
            _quiet(session.rollback)
        except CoordinatorCrashed:
            # Outcome unknown; the resolver settles the gtid from the
            # decision log.  Nothing for the worker to do but move on.
            bump("coordinator_crashes_seen")
            _quiet(session.rollback)
        except ShardUnavailable:
            bump("fail_fast")  # health said "down" without dialing
            _quiet(session.rollback)
            stop.wait(0.01)
        except DatabaseCrashed:
            bump("crashed_ops")  # shard died mid-operation
            _quiet(session.rollback)
            stop.wait(0.02)
        except ConnectionClosed:
            bump("disconnects")  # dropped frame deadline, reset, EOF
            _quiet(session.rollback)
            stop.wait(0.02)
        except ReproError:
            bump("other_errors")
            _quiet(session.rollback)
    _quiet(session.close)


def _chaos_controller(
    cluster: Cluster,
    plan: FaultPlan,
    stop: threading.Event,
    counters: "dict[str, int]",
    lock: threading.Lock,
    poll: float = 0.05,
) -> None:
    """Crash/restart shards on the plan's schedule (round-robin victims).

    The restart always happens — even when the stop flag is raised
    during the downtime window — so the controller never exits leaving a
    shard dark.
    """
    victim = 0
    while not stop.wait(poll):
        if not plan.should_fire("shard-crash"):
            continue
        shard = victim % cluster.shard_count
        victim += 1
        cluster.crash_shard(shard)
        with lock:
            counters["shard_crashes"] += 1
        stop.wait(plan.magnitude("shard-crash") or 0.2)
        cluster.restart_shard(shard)
        with lock:
            counters["shard_restarts"] += 1


def _pending_2pc_gtids(cluster) -> "set[str]":
    """Every gtid still prepared or in doubt anywhere in the cluster."""
    return cluster.pending_2pc_gtids()


def _build_cluster(config: ChaosConfig, *, obs=None):
    """The cluster under test, per :attr:`ChaosConfig.process_model`."""
    if config.process_model == "multiproc":
        from repro.cluster.fleet import ProcessCluster

        return ProcessCluster(
            config.shards,
            customers=config.customers,
            isolation=config.isolation,
            seed=config.seed,
            obs=obs,
        )
    if config.process_model != "inproc":
        raise ValueError(
            f"unknown process_model {config.process_model!r}; "
            "known: inproc, multiproc"
        )
    return Cluster(
        config.shards,
        customers=config.customers,
        isolation=config.isolation,
        seed=config.seed,
    )


def run_chaos(config: ChaosConfig = ChaosConfig(), *, obs=None) -> ChaosResult:
    """One full soak: storm, recover to a fixed point, certify.

    With ``process_model="multiproc"`` the shard servers run as child
    processes: engine/server fault points fire from each child's own
    rebuilt copy of the plan (same seed, independent draw sequences), so
    :attr:`ChaosResult.fault_injections` only counts parent-side points
    (decision duplication, coordinator crashes, shard-crash scheduling);
    the certification checks gain "no orphaned shard processes".
    """
    from repro.analysis import merge_shard_histories

    plan = build_fault_plan(config)
    txns = get_strategy(config.strategy).transactions()
    counters = {
        "commits": 0,
        "aborts": 0,
        "coordinator_crashes_seen": 0,
        "fail_fast": 0,
        "crashed_ops": 0,
        "disconnects": 0,
        "other_errors": 0,
        "shard_crashes": 0,
        "shard_restarts": 0,
    }
    lock = threading.Lock()
    started = time.monotonic()
    cluster = _build_cluster(config, obs=obs)
    try:
        initial_money = cluster.total_money()
        cluster.install_faults(plan)
        connection = cluster.connect(
            fault_plan=plan,
            obs=obs,
            pool_size=config.mpl,
            rpc_deadline=config.rpc_deadline,
            unhealthy_after=config.unhealthy_after,
        )
        try:
            connection.start_heartbeats(config.heartbeat_interval)
            connection.start_in_doubt_resolver(config.resolver_interval)
            stop = threading.Event()
            workers = [
                threading.Thread(
                    target=_worker_loop,
                    args=(i, connection, config, stop, counters, lock, txns),
                    name=f"chaos-worker-{i}",
                    daemon=True,
                )
                for i in range(config.mpl)
            ]
            controller = threading.Thread(
                target=_chaos_controller,
                args=(cluster, plan, stop, counters, lock),
                name="chaos-controller",
                daemon=True,
            )
            for worker in workers:
                worker.start()
            controller.start()
            time.sleep(config.duration)
            stop.set()
            for worker in workers:
                worker.join(timeout=30.0)
            controller.join(timeout=30.0)
            # --- recovery to a fixed point ----------------------------
            cluster.recover_crashed()  # controller normally restarts all
            deadline = time.monotonic() + config.recovery_deadline
            while True:
                _quiet(connection.resolve_in_doubt)
                pending = _pending_2pc_gtids(cluster)
                if not pending or time.monotonic() > deadline:
                    break
                time.sleep(0.05)
            _quiet(connection.flush)  # settle deferred read-only COMMITs
            router_counters = connection.counters()
        finally:
            connection.close()
        cluster.install_faults(None)
        final_money = cluster.total_money()
        report = merge_shard_histories(cluster.histories())
        distributed = sum(
            1 for txn in report.transactions.values() if txn.is_distributed
        )
        result = ChaosResult(
            config=config,
            serializable=report.serializable,
            ledger_conserved=final_money == initial_money,
            initial_money=initial_money,
            final_money=final_money,
            in_doubt_after_recovery=len(pending),
            report_description=report.describe(),
            counters=counters,
            router_counters=router_counters,
            fault_injections={
                point: count
                for point, count in plan.injections.items()
                if count
            },
            fault_opportunities=dict(plan.opportunities),
            shard_restarts=counters["shard_restarts"],
            global_transactions=len(report.transactions),
            cross_shard_transactions=distributed,
            elapsed=time.monotonic() - started,
        )
    finally:
        cluster.shutdown()
    if config.process_model == "multiproc":
        result.orphan_processes = cluster.fleet.alive_count
        result.counters["forced_kills"] = cluster.fleet.kill_count
    return result
