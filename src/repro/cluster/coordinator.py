"""Presumed-abort two-phase commit coordinator (DESIGN.md §12.4, §13).

Phase 1 sends ``PREPARE_2PC`` to every *writing* branch in shard order;
a participant votes YES by making the prepare record durable and moving
the transaction to PREPARED, or votes NO by aborting it (any engine
error — serialization failure, SSI doom, integrity violation — IS the NO
vote).  Phase 2 records the decision on the coordinator's
:class:`DecisionLog`, then delivers it: ``COMMIT_2PC`` to every prepared
branch under the oracle's exclusive decision window, or ``ABORT_2PC`` to
the branches already prepared when some later vote came back NO.

*Presumed abort*: participants never ask the coordinator — a durable
prepare followed by a durable decision record in the participant's WAL
means committed; a durable prepare with no decision means aborted.  The
:class:`DecisionLog` is the coordinator half of that story: a commit
decision is recorded there *before* any participant hears it, so a
coordinator crash after the record still commits on recovery
(:meth:`resolve_in_doubt` re-delivers), while a crash before it presumes
abort.  The log models the force-write a real coordinator performs; it
outlives any one :class:`TwoPhaseCoordinator` instance, which is exactly
the coordinator-recovery contract.

Fault injection (DESIGN.md §13): with a :class:`~repro.faults.FaultPlan`
installed, ``coordinator-crash-window`` kills the coordinator after all
prepares and before any decision lands (alternating fires cover both
sides of the log write), surfacing :class:`~repro.errors.CoordinatorCrashed`
— an *outcome-unknown* error, deliberately not a
:class:`~repro.errors.TransactionAborted`.  ``net-dup-decision``
re-delivers a commit decision immediately, exercising the participants'
idempotent-redelivery contract on the live path.

``decision_hook`` is a test seam: called between per-participant
COMMIT_2PC deliveries so a concurrent *lazy-mode* reader can be wedged
into the middle of a decision broadcast (the fractured-read demo).  It
must never be used with consistent-mode readers — those block on the
oracle latch the hook's caller is holding.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.cluster.fanout import FanOutPool, Outcome, first_error
from repro.cluster.oracle import TimestampOracle
from repro.errors import (
    CoordinatorCrashed,
    ReproError,
    TransactionStateError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults import FaultPlan
    from repro.obs import Observability


class DecisionLog:
    """The coordinator's durable decision store (one per cluster).

    Stand-in for the force-written log record a real coordinator hardens
    before broadcasting a commit: decisions recorded here survive the
    coordinator *object* dying (our model of a coordinator process
    crash), so a recovered coordinator — or the in-doubt resolver acting
    on its behalf — re-reads the same outcomes.  Append-only per gtid: a
    decision can be re-recorded identically (idempotent) but never
    flipped.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._decisions: "dict[str, str]" = {}

    def record(self, gtid: str, decision: str) -> None:
        if decision not in ("commit", "abort"):
            raise ValueError(f"decision must be 'commit' or 'abort', got {decision!r}")
        with self._lock:
            existing = self._decisions.setdefault(gtid, decision)
            if existing != decision:
                raise TransactionStateError(
                    f"decision for {gtid!r} already logged as {existing!r}; "
                    f"cannot record {decision!r}"
                )

    def decision_for(self, gtid: str) -> Optional[str]:
        with self._lock:
            return self._decisions.get(gtid)

    def decisions(self) -> "dict[str, str]":
        with self._lock:
            return dict(self._decisions)

    def __len__(self) -> int:
        with self._lock:
            return len(self._decisions)


class TwoPhaseCoordinator:
    """Drives prepare/decide across one cluster's shard branches."""

    def __init__(
        self,
        oracle: TimestampOracle,
        *,
        decision_hook: "Optional[Callable[[str, int], None]]" = None,
        decision_log: "Optional[DecisionLog]" = None,
        fault_plan: "FaultPlan | None" = None,
        obs: "Observability | None" = None,
        fanout: "FanOutPool | None" = None,
    ) -> None:
        self.oracle = oracle
        self.decision_hook = decision_hook
        #: Optional shared fan-out pool: prepares and decision deliveries
        #: broadcast concurrently across shards when set, serially when
        #: not (stand-alone coordinators in unit tests stay single-file).
        self.fanout = fanout
        #: Durable decision store — shareable across coordinator
        #: incarnations (coordinator recovery hands the same log to a
        #: fresh instance).
        self.log = decision_log if decision_log is not None else DecisionLog()
        self.faults = fault_plan
        self.obs = obs
        self._lock = threading.Lock()
        #: Gtids with a ``commit_two_phase`` currently in flight.  The
        #: background in-doubt resolver must not touch these: a prepared
        #: branch of a live 2PC is not an orphan, its decision broadcast
        #: just has not reached it yet.
        self._in_flight: "set[str]" = set()

    def install_faults(self, plan: "FaultPlan | None") -> None:
        self.faults = plan

    def decision_for(self, gtid: str) -> Optional[str]:
        return self.log.decision_for(gtid)

    @property
    def in_flight(self) -> "frozenset[str]":
        with self._lock:
            return frozenset(self._in_flight)

    def _broadcast(self, tasks, *, op: str) -> "list[Outcome]":
        """Run per-participant tasks via the fan-out pool (or serially).

        Either way every task runs to completion and outcomes come back
        positionally — 2PC must gather *all* votes even when the first
        one is already a NO.
        """
        if self.fanout is not None:
            return self.fanout.run(tasks, op=op)
        return [FanOutPool._invoke(task) for task in tasks]

    def commit_two_phase(self, gtid: str, writers: Sequence) -> None:
        """Atomically commit ``writers`` (network sessions) under ``gtid``.

        Phase 1 fans PREPARE out to every writer concurrently (when a
        pool is installed) and gathers *all* votes; any NO aborts the
        branches that voted YES and raises the first error in shard
        order, so presumed-abort semantics are unchanged — a branch that
        prepared after the decision fell is an orphan the resolver
        settles from the (already "abort"-recorded) decision log.
        Decision delivery errors (a participant crashing *after* the
        decision was recorded) are re-raised once every reachable
        participant has been told — the decision stands and recovery
        re-delivers it to the rest.
        """
        plan = self.faults
        with self._lock:
            self._in_flight.add(gtid)
        try:
            writers = list(writers)
            votes = self._broadcast(
                [
                    (lambda b=branch: b.prepare_2pc(gtid))
                    for branch in writers
                ],
                op="2pc-prepare",
            )
            prepared = [
                branch for branch, vote in zip(writers, votes) if vote.ok
            ]
            no_vote = first_error(votes)
            if no_vote is not None:
                self.log.record(gtid, "abort")

                def quiet_abort(branch) -> None:
                    try:
                        branch.abort_2pc(gtid)
                    except ReproError:
                        pass  # recovery presumes abort for us

                self._broadcast(
                    [(lambda b=branch: quiet_abort(b)) for branch in prepared],
                    op="2pc-abort",
                )
                raise no_vote
            if plan is not None and plan.should_fire("coordinator-crash-window"):
                # The protocol's in-doubt window: every vote is YES, no
                # participant has heard a decision.  Alternate fires die
                # before vs just after the decision log write, covering
                # presumed abort *and* commit re-delivery on recovery.
                crashed_after_log = plan.fired("coordinator-crash-window") % 2 == 0
                if crashed_after_log:
                    self.log.record(gtid, "commit")
                if self.obs is not None:
                    self.obs.fault_injected("coordinator-crash-window")
                    self.obs.cluster_coordinator_crash()
                raise CoordinatorCrashed(
                    f"coordinator crashed holding {len(prepared)} YES "
                    f"vote(s) for {gtid!r} "
                    f"({'after' if crashed_after_log else 'before'} the "
                    f"decision log write)",
                    gtid=gtid,
                )
            self.log.record(gtid, "commit")

            def deliver(branch) -> None:
                branch.commit_2pc(gtid)
                if plan is not None and plan.should_fire("net-dup-decision"):
                    if self.obs is not None:
                        self.obs.fault_injected("net-dup-decision")
                    branch.commit_2pc(gtid)  # idempotent by contract

            # The decision is durable *before* any participant hears it
            # (the presumed-abort ordering argument) — only the delivery
            # fan-out below runs concurrently, never the log write.
            with self.oracle.decision_window():
                if self.decision_hook is not None:
                    # Test seam: the hook interposes *between* deliveries,
                    # which only means anything serially.
                    delivery_error: Optional[BaseException] = None
                    for index, branch in enumerate(prepared):
                        if index:
                            self.decision_hook(gtid, index)
                        try:
                            deliver(branch)
                        except ReproError as exc:
                            if delivery_error is None:
                                delivery_error = exc
                else:
                    outcomes = self._broadcast(
                        [(lambda b=branch: deliver(b)) for branch in prepared],
                        op="2pc-decision",
                    )
                    delivery_error = first_error(outcomes)
            if delivery_error is not None:
                raise delivery_error
        finally:
            with self._lock:
                self._in_flight.discard(gtid)

    def resolve_in_doubt(self, gtid: str, connections: Sequence) -> str:
        """Re-deliver the outcome of ``gtid`` to recovered participants.

        ``connections`` are shard *connections* (not sessions): decision
        ops address transactions by gtid, independent of any wire
        session.  A gtid with no logged decision is presumed aborted —
        exactly the protocol's answer to "prepared, but the coordinator
        never hardened a commit".
        """
        decision = self.log.decision_for(gtid) or "abort"
        if decision == "abort":
            # Harden the presumption so a later resolver pass (or a
            # recovered coordinator) answers identically.
            self.log.record(gtid, "abort")

        def redeliver(connection) -> None:
            try:
                if decision == "commit":
                    connection.commit_2pc(gtid)
                else:
                    connection.abort_2pc(gtid)
            except TransactionStateError:
                # Participant never prepared this gtid (or already
                # resolved it the same way) — nothing to re-deliver.
                pass

        outcomes = self._broadcast(
            [(lambda c=connection: redeliver(c)) for connection in connections],
            op="2pc-resolve",
        )
        error = first_error(outcomes)
        if error is not None:
            raise error
        return decision
