"""Presumed-abort two-phase commit coordinator (DESIGN.md §12.4).

Phase 1 sends ``PREPARE_2PC`` to every *writing* branch in shard order;
a participant votes YES by making the prepare record durable and moving
the transaction to PREPARED, or votes NO by aborting it (any engine
error — serialization failure, SSI doom, integrity violation — IS the NO
vote).  Phase 2 delivers the decision: ``COMMIT_2PC`` to every prepared
branch under the oracle's exclusive decision window, or ``ABORT_2PC`` to
the branches already prepared when some later vote came back NO.

*Presumed abort*: the coordinator logs nothing.  Its decision lives in
the participants' WALs — a durable prepare followed by a durable
decision record means committed; a durable prepare with no decision
means the coordinator presumed abort (participants surface such
transactions as *in doubt* after recovery, and :meth:`resolve_in_doubt`
re-delivers the outcome).  The in-memory ``_decisions`` map stands in
for the coordinator's volatile state in the protocol's recovery story.

``decision_hook`` is a test seam: called between per-participant
COMMIT_2PC deliveries so a concurrent *lazy-mode* reader can be wedged
into the middle of a decision broadcast (the fractured-read demo).  It
must never be used with consistent-mode readers — those block on the
oracle latch the hook's caller is holding.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.cluster.oracle import TimestampOracle
from repro.errors import ReproError, TransactionStateError


class TwoPhaseCoordinator:
    """Drives prepare/decide across one cluster's shard branches."""

    def __init__(
        self,
        oracle: TimestampOracle,
        *,
        decision_hook: "Optional[Callable[[str, int], None]]" = None,
    ) -> None:
        self.oracle = oracle
        self.decision_hook = decision_hook
        #: gtid -> "commit" | "abort" (volatile coordinator memory).
        self._decisions: "dict[str, str]" = {}

    def decision_for(self, gtid: str) -> Optional[str]:
        return self._decisions.get(gtid)

    def commit_two_phase(self, gtid: str, writers: Sequence) -> None:
        """Atomically commit ``writers`` (network sessions) under ``gtid``.

        Raises the first NO vote's error after rolling the already
        prepared branches back.  Decision delivery errors (a participant
        crashing *after* the decision was recorded) are re-raised once
        every reachable participant has been told — the decision stands
        and recovery re-delivers it to the rest.
        """
        prepared = []
        try:
            for branch in writers:
                branch.prepare_2pc(gtid)
                prepared.append(branch)
        except BaseException:
            self._decisions[gtid] = "abort"
            for branch in prepared:
                try:
                    branch.abort_2pc(gtid)
                except ReproError:
                    pass  # recovery presumes abort for us
            raise
        self._decisions[gtid] = "commit"
        delivery_error: Optional[BaseException] = None
        with self.oracle.decision_window():
            for index, branch in enumerate(prepared):
                if index and self.decision_hook is not None:
                    self.decision_hook(gtid, index)
                try:
                    branch.commit_2pc(gtid)
                except ReproError as exc:
                    if delivery_error is None:
                        delivery_error = exc
        if delivery_error is not None:
            raise delivery_error

    def resolve_in_doubt(self, gtid: str, connections: Sequence) -> str:
        """Re-deliver the outcome of ``gtid`` to recovered participants.

        ``connections`` are shard *connections* (not sessions): decision
        ops address transactions by gtid, independent of any wire
        session.  Unknown gtids are presumed aborted — exactly the
        protocol's answer to "prepared, but the coordinator forgot".
        """
        decision = self._decisions.get(gtid, "abort")
        for connection in connections:
            try:
                if decision == "commit":
                    connection.commit_2pc(gtid)
                else:
                    connection.abort_2pc(gtid)
            except TransactionStateError:
                # Participant never prepared this gtid (or already
                # resolved it the same way) — nothing to re-deliver.
                pass
        return decision
