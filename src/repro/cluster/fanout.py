"""Bounded concurrent fan-out over shard RPCs (DESIGN.md §14.2).

The router's per-shard broadcasts — 2PC PREPARE rounds, decision
deliveries, consistent-mode BEGINs, multi-shard scans, heartbeat /
stats / vacuum sweeps — used to be Python ``for`` loops: one RPC per
shard, strictly serially, so every broadcast cost ``shards × RTT`` and a
single slow shard stalled probes of all the others.  With shards in
their own OS processes (:mod:`repro.cluster.fleet`) those loops are the
scaling bottleneck: the fleet can execute in parallel but the router
only ever keeps one shard busy.

:class:`FanOutPool` is a small bounded thread pool purpose-built for
that shape.  Worker threads spend their lives blocked on socket reads —
which releases the GIL — so N in-flight RPCs really do overlap across N
shard processes.  Calls run **inline-first**: the caller's own thread
executes the first task while the pool runs the rest, so a single-shard
broadcast (the 1-shard cluster, the fast path) never pays a thread
hand-off at all and degrades to exactly the old serial code.

Every task's outcome — value or exception — is captured positionally;
nothing is raised until the whole broadcast has settled, which is what
2PC needs (all votes must be gathered even when the first one is a NO).
"""

from __future__ import annotations

import threading
from concurrent.futures import CancelledError, ThreadPoolExecutor
from typing import TYPE_CHECKING, Any, Callable, NamedTuple, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability


class Outcome(NamedTuple):
    """What one fan-out task produced: a value or an exception."""

    value: Any
    error: Optional[BaseException]

    @property
    def ok(self) -> bool:
        return self.error is None


def first_error(outcomes: "Sequence[Outcome]") -> Optional[BaseException]:
    """The first (in task order) exception among ``outcomes``, if any.

    Task order is shard order everywhere the router broadcasts, so the
    raised error is deterministic even though completion order is not.
    """
    for outcome in outcomes:
        if outcome.error is not None:
            return outcome.error
    return None


class FanOutPool:
    """Bounded executor for per-shard RPC broadcasts.

    One pool per :class:`~repro.cluster.ClusterConnection`, shared by all
    of its sessions and background threads.  ``max_workers`` bounds the
    *total* thread-hand-off concurrency; per-shard socket concurrency is
    already bounded by each :class:`~repro.net.NetworkConnection`'s wire
    pool, so one shared executor is enough.  Tasks must not themselves
    call back into the pool (broadcasts never nest in the router).
    """

    def __init__(
        self,
        max_workers: int,
        *,
        name: str = "cluster",
        obs: "Observability | None" = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self.obs = obs
        self._lock = threading.Lock()
        self._executor: Optional[ThreadPoolExecutor] = None
        self._name = name
        self._closed = False

    def _ensure_executor(self) -> Optional[ThreadPoolExecutor]:
        # Lazily created so a cluster connection that never broadcasts to
        # more than one shard (the 1-shard cluster) spawns zero threads.
        # After shutdown() this returns None and run() degrades to the
        # serial loop: a background sweep that outlives close()'s join
        # timeout must finish quietly, not die on a dead executor.
        with self._lock:
            if self._closed:
                return None
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix=f"repro-fanout-{self._name}",
                )
            return self._executor

    # ------------------------------------------------------------------
    def run(
        self,
        tasks: "Sequence[Callable[[], Any]]",
        *,
        op: str = "broadcast",
    ) -> "list[Outcome]":
        """Run every task, inline-first, and gather all outcomes in order.

        The caller's thread executes ``tasks[0]`` while the pool runs the
        rest; with zero or one task no pool thread is touched.  Returns
        one :class:`Outcome` per task, positionally — exceptions are
        captured, never raised from here.
        """
        if not tasks:
            return []
        if len(tasks) == 1:
            return [self._invoke(tasks[0])]
        executor = self._ensure_executor()
        if executor is None:  # closed: serial fallback, same semantics
            return [self._invoke(task) for task in tasks]
        # A concurrent shutdown() can reject submits (RuntimeError) or
        # cancel queued futures; both fall back to inline execution so
        # the gather contract — one Outcome per task, in order — holds.
        futures = []
        try:
            for task in tasks[1:]:
                futures.append((executor.submit(self._invoke, task), task))
        except RuntimeError:
            pending = tasks[1 + len(futures) :]
        else:
            pending = ()
        outcomes = [self._invoke(tasks[0])]
        for future, task in futures:
            try:
                outcomes.append(future.result())
            except CancelledError:  # never started; run it here
                outcomes.append(self._invoke(task))
        outcomes.extend(self._invoke(task) for task in pending)
        if self.obs is not None:
            self.obs.cluster_fanout(op, len(tasks))
        return outcomes

    @staticmethod
    def _invoke(task: "Callable[[], Any]") -> Outcome:
        try:
            return Outcome(task(), None)
        except BaseException as exc:  # gathered, re-raised by callers
            return Outcome(None, exc)

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        with self._lock:
            executor, self._executor = self._executor, None
            self._closed = True
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "FanOutPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False
