"""Multi-process shard fleet: each shard is its own OS process.

The in-process :class:`~repro.cluster.router.Cluster` hosts every shard
server inside one interpreter, so at MPL ≥ shard count the shards
contend for a single GIL and adding shards cannot add throughput.  The
fleet launches each shard as ``python -m repro.net --shard-index i
--shard-count n`` — a separate interpreter per shard, real parallelism
on multi-core hosts — and drives crash/recovery *inside* each child
over the entrypoint's line-oriented control channel (the WAL is
in-memory, so killing the process would lose the durable state the
crash model is supposed to preserve).

Three layers:

:class:`ShardProcess`
    One child process: spawn, readiness probe (``LISTENING <port>``),
    control commands (CRASH / RECOVER / DUMP / FAULTS / PING), graceful
    shutdown via stdin EOF with a kill fallback (counted, so tests can
    assert clean teardown), and reaping.

:class:`ShardFleet`
    N shard processes launched concurrently, plus the cluster-facing
    conveniences: ``addresses`` / ``url`` / ``connect()``.

:class:`ProcessCluster`
    Mirrors the :class:`~repro.cluster.router.Cluster` surface the chaos
    harness and benchmarks drive — ``crash_shard`` / ``restart_shard`` /
    ``install_faults`` / ``histories`` / ``total_money`` /
    ``pending_2pc_gtids`` / ``recover_crashed`` — so the same scenario
    code runs against either process model.

::

    with ProcessCluster(shard_count=2, customers=40) as cluster:
        conn = cluster.connect()
        ...
        report = merge_shard_histories(cluster.histories())
    assert cluster.fleet.kill_count == 0   # no orphaned processes
"""

from __future__ import annotations

import os
import queue
import subprocess
import sys
import tempfile
import threading
import time
from typing import TYPE_CHECKING, Optional

from repro.errors import ConnectionClosed, ReproError, TransactionStateError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.router import ClusterConnection
    from repro.faults import FaultPlan
    from repro.obs import Observability

#: How long a child gets to bind its socket / finish recovery before the
#: parent declares the spawn failed.  Population is O(customers) and
#: interpreter start is the dominant cost; generous beats flaky.
DEFAULT_STARTUP_DEADLINE = 60.0

#: How long graceful shutdown (stdin EOF → child drains and exits) may
#: take before the parent escalates to SIGTERM and then SIGKILL.
DEFAULT_SHUTDOWN_TIMEOUT = 20.0


def _repro_pythonpath() -> str:
    """PYTHONPATH entry that makes ``-m repro.net`` importable in a child."""
    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = os.environ.get("PYTHONPATH")
    return src if not existing else src + os.pathsep + existing


class ShardProcessError(ReproError):
    """A shard child process misbehaved (died, hung, or spoke garbage)."""


class ShardProcess:
    """One shard served by its own ``python -m repro.net`` child process.

    The constructor only spawns; call :meth:`wait_ready` (or let
    :class:`ShardFleet` do it) before using :attr:`port`.  All control
    traffic runs over the child's stdin/stdout pipes; a reader thread
    feeds stdout lines into a queue so every wait is deadline-bounded
    without racing buffered reads against ``select``.
    """

    def __init__(
        self,
        shard_index: int,
        shard_count: int,
        *,
        customers: int = 40,
        isolation: str = "si",
        seed: Optional[int] = None,
        partitioner: str = "hash",
        host: str = "127.0.0.1",
        port: int = 0,
        record: bool = True,
        autovacuum_interval: Optional[float] = None,
        fault_plan: "FaultPlan | None" = None,
        startup_deadline: float = DEFAULT_STARTUP_DEADLINE,
    ) -> None:
        self.shard_index = shard_index
        self.host = host
        self.port: Optional[int] = None
        self.crashed = False
        self.kill_count = 0
        self.stats: Optional[dict] = None
        self._startup_deadline = startup_deadline
        self._lock = threading.Lock()
        argv = [
            sys.executable,
            "-u",
            "-m",
            "repro.net",
            "--host",
            host,
            "--port",
            str(port),
            "--customers",
            str(customers),
            "--isolation",
            isolation,
            "--shard-index",
            str(shard_index),
            "--shard-count",
            str(shard_count),
            "--partitioner",
            partitioner,
        ]
        if seed is not None:
            argv += ["--seed", str(seed)]
        if record:
            argv.append("--record")
        if autovacuum_interval is not None:
            argv += ["--autovacuum", str(autovacuum_interval)]
        if fault_plan is not None:
            argv += ["--faults", fault_plan.to_json()]
        env = dict(os.environ)
        env["PYTHONPATH"] = _repro_pythonpath()
        self.proc = subprocess.Popen(
            argv,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=None,  # child tracebacks stay visible on our stderr
            env=env,
            text=True,
            bufsize=1,
        )
        self._lines: "queue.Queue[str | None]" = queue.Queue()
        self._reader = threading.Thread(
            target=self._pump_stdout,
            name=f"repro-fleet-shard{shard_index}-stdout",
            daemon=True,
        )
        self._reader.start()

    # ------------------------------------------------------------------
    def _pump_stdout(self) -> None:
        for line in self.proc.stdout:
            self._lines.put(line.rstrip("\n"))
        self._lines.put(None)  # EOF sentinel

    def _read_line(self, deadline: float, *, expecting: str) -> str:
        remaining = deadline - time.monotonic()
        while True:
            try:
                line = self._lines.get(timeout=max(0.0, remaining))
            except queue.Empty:
                raise ShardProcessError(
                    f"shard {self.shard_index} (pid {self.proc.pid}): timed "
                    f"out waiting for {expecting}"
                ) from None
            if line is None:
                raise ShardProcessError(
                    f"shard {self.shard_index} exited (code "
                    f"{self.proc.poll()}) while the parent waited for "
                    f"{expecting}"
                )
            return line

    def _expect(self, prefix: str, deadline: float) -> str:
        """Next stdout line starting with ``prefix``; returns the rest."""
        line = self._read_line(deadline, expecting=prefix)
        if not line.startswith(prefix):
            raise ShardProcessError(
                f"shard {self.shard_index}: expected {prefix!r}, got {line!r}"
            )
        return line[len(prefix) :].strip()

    def _send(self, command: str) -> None:
        if self.proc.poll() is not None:
            raise ShardProcessError(
                f"shard {self.shard_index} is dead (exit {self.proc.poll()})"
            )
        try:
            self.proc.stdin.write(command + "\n")
            self.proc.stdin.flush()
        except (OSError, ValueError) as exc:
            raise ShardProcessError(
                f"shard {self.shard_index}: control channel broken: {exc}"
            ) from exc

    def _deadline(self, timeout: Optional[float] = None) -> float:
        return time.monotonic() + (
            timeout if timeout is not None else self._startup_deadline
        )

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self.proc.poll() is None

    @property
    def address(self) -> "tuple[str, int]":
        if self.port is None:
            raise ShardProcessError(
                f"shard {self.shard_index} is not ready (no LISTENING yet)"
            )
        return (self.host, self.port)

    def wait_ready(self) -> "tuple[str, int]":
        """Block until the child prints ``LISTENING <port>``."""
        with self._lock:
            if self.port is None:
                rest = self._expect("LISTENING ", self._deadline())
                self.port = int(rest)
        return (self.host, self.port)

    def ping(self, timeout: float = 5.0) -> bool:
        """Control-channel liveness (distinct from the data-plane port)."""
        try:
            with self._lock:
                self._send("PING")
                self._expect("PONG", self._deadline(timeout))
            return True
        except ShardProcessError:
            return False

    def crash(self) -> None:
        """Power-fail the shard's engine inside the (surviving) child."""
        with self._lock:
            self._send("CRASH")
            self._expect("CRASHED", self._deadline())
            self.crashed = True

    def recover(self) -> "tuple[str, int]":
        """Recover the engine and serve again on the same port."""
        with self._lock:
            self._send("RECOVER")
            rest = self._expect("LISTENING ", self._deadline())
            restarted_port = int(rest)
            if self.port is not None and restarted_port != self.port:
                raise ShardProcessError(
                    f"shard {self.shard_index} recovered on port "
                    f"{restarted_port}, expected {self.port}"
                )
            self.port = restarted_port
            self.crashed = False
        return (self.host, self.port)

    def dump_history(self, path: str) -> int:
        """Write the child's committed history to ``path`` as JSONL."""
        with self._lock:
            self._send(f"DUMP {path}")
            return int(self._expect("DUMPED ", self._deadline()))

    def install_faults(self, plan: "FaultPlan | None") -> None:
        with self._lock:
            self._send(
                "FAULTS off" if plan is None else "FAULTS " + plan.to_json()
            )
            self._expect("FAULTS ok", self._deadline())

    # ------------------------------------------------------------------
    def shutdown(self, timeout: float = DEFAULT_SHUTDOWN_TIMEOUT) -> None:
        """Graceful stop: stdin EOF, collect STATS, reap; escalate only
        if the child hangs (counted in :attr:`kill_count`)."""
        if self.proc.poll() is None:
            try:
                self.proc.stdin.close()
            except OSError:  # pragma: no cover - already broken
                pass
            try:
                self.proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                self.kill_count += 1
                self.proc.terminate()
                try:
                    self.proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    self.proc.kill()
                    self.proc.wait()
        # Drain the reader for the final STATS line (present only after
        # a graceful exit).
        self._reader.join(timeout=5.0)
        while True:
            try:
                line = self._lines.get_nowait()
            except queue.Empty:
                break
            if line is not None and line.startswith("STATS "):
                import json

                self.stats = json.loads(line[len("STATS ") :])


class ShardFleet:
    """N shard processes over one hash-partitioned population.

    Children are spawned first and readiness-probed second, so the
    (interpreter start + population) cost is paid concurrently across
    shards rather than serially.
    """

    def __init__(
        self,
        shard_count: int = 2,
        *,
        customers: int = 40,
        isolation: str = "si",
        seed: Optional[int] = None,
        partitioner: str = "hash",
        record: bool = True,
        autovacuum_interval: Optional[float] = None,
        startup_deadline: float = DEFAULT_STARTUP_DEADLINE,
        obs: "Observability | None" = None,
    ) -> None:
        self.shard_count = shard_count
        self.obs = obs
        self.fault_plan: "FaultPlan | None" = None
        self.restart_count = 0
        self.shards: "list[ShardProcess]" = []
        try:
            for shard in range(shard_count):
                self.shards.append(
                    ShardProcess(
                        shard,
                        shard_count,
                        customers=customers,
                        isolation=isolation,
                        seed=seed,
                        partitioner=partitioner,
                        record=record,
                        autovacuum_interval=autovacuum_interval,
                        startup_deadline=startup_deadline,
                    )
                )
                if obs is not None:
                    obs.fleet_spawn(shard)
            for shard_process in self.shards:
                shard_process.wait_ready()
        except BaseException:
            self.shutdown()
            raise

    # ------------------------------------------------------------------
    @property
    def addresses(self) -> "list[tuple[str, int]]":
        return [shard.address for shard in self.shards]

    @property
    def url(self) -> str:
        return "cluster://" + ",".join(
            f"{host}:{port}" for host, port in self.addresses
        )

    @property
    def kill_count(self) -> int:
        """Children that needed SIGTERM/SIGKILL instead of a clean EOF
        exit — any non-zero value means an orphan-process bug."""
        return sum(shard.kill_count for shard in self.shards)

    @property
    def alive_count(self) -> int:
        return sum(1 for shard in self.shards if shard.alive)

    def connect(self, **kwargs) -> "ClusterConnection":
        from repro.cluster.router import ClusterConnection

        kwargs.setdefault("url", self.url)
        return ClusterConnection(self.addresses, **kwargs)

    def install_faults(self, plan: "FaultPlan | None") -> None:
        """Ship the plan to every child (remembered across restarts).

        Each child rebuilds its own :class:`FaultPlan` from the same
        seed, so per-shard draw sequences are independent — same as the
        in-process cluster, where one shared plan is consulted from
        per-shard server threads in nondeterministic order.
        """
        self.fault_plan = plan
        for shard in self.shards:
            if not shard.crashed:
                shard.install_faults(plan)

    def crash_shard(self, shard: int) -> None:
        self.shards[shard].crash()

    def restart_shard(self, shard: int) -> None:
        self.shards[shard].recover()
        if self.fault_plan is not None:
            self.shards[shard].install_faults(self.fault_plan)
        self.restart_count += 1
        if self.obs is not None:
            self.obs.fleet_restart(shard)

    def shutdown(self) -> None:
        for shard in self.shards:
            shard.shutdown()

    def __enter__(self) -> "ShardFleet":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False


class ProcessCluster:
    """Drop-in :class:`~repro.cluster.router.Cluster` replacement whose
    shards live in child processes.

    State the in-process cluster reads straight off its engines —
    histories, balance totals, pending gtids — is fetched over the wire
    (stats / scans) or the control channel (history dumps) instead, so
    the chaos harness and benchmarks run unmodified against either
    process model.
    """

    def __init__(
        self,
        shard_count: int = 2,
        *,
        customers: int = 40,
        isolation: str = "si",
        seed: Optional[int] = None,
        autovacuum_interval: Optional[float] = None,
        obs: "Observability | None" = None,
    ) -> None:
        self.shard_count = shard_count
        self.fleet = ShardFleet(
            shard_count,
            customers=customers,
            isolation=isolation,
            seed=seed,
            record=True,
            autovacuum_interval=autovacuum_interval,
            obs=obs,
        )
        from repro.cluster.partition import HashPartitioner

        self.partitioner = HashPartitioner(shard_count)

    # ------------------------------------------------------------------
    @property
    def addresses(self) -> "list[tuple[str, int]]":
        return self.fleet.addresses

    @property
    def url(self) -> str:
        return self.fleet.url

    @property
    def fault_plan(self) -> "FaultPlan | None":
        return self.fleet.fault_plan

    @property
    def restart_count(self) -> int:
        return self.fleet.restart_count

    def connect(self, **kwargs) -> "ClusterConnection":
        return self.fleet.connect(**kwargs)

    def install_faults(self, plan: "FaultPlan | None") -> None:
        self.fleet.install_faults(plan)

    def crash_shard(self, shard: int) -> None:
        self.fleet.crash_shard(shard)

    def restart_shard(self, shard: int) -> None:
        self.fleet.restart_shard(shard)

    def recover_crashed(self) -> int:
        """Restart any shard whose engine is crashed; returns the count."""
        restarted = 0
        for shard, process in enumerate(self.fleet.shards):
            if process.crashed:
                self.restart_shard(shard)
                restarted += 1
        return restarted

    # ------------------------------------------------------------------
    def histories(self):
        """Per-shard committed histories, fetched via control-channel
        DUMP and deserialised — same shape as ``Cluster.histories()``."""
        from repro.analysis.recorder import load_history_jsonl

        merged = {}
        with tempfile.TemporaryDirectory(prefix="repro-fleet-") as tmp:
            for shard, process in enumerate(self.fleet.shards):
                path = os.path.join(tmp, f"shard{shard}.jsonl")
                process.dump_history(path)
                merged[shard] = load_history_jsonl(path)
        return merged

    def total_money(self) -> float:
        """Cluster-wide balance sum, read over the wire per shard."""
        from repro.net.client import NetworkConnection

        total = 0.0
        for host, port in self.addresses:
            connection = NetworkConnection(host, port)
            try:
                session = connection.session()
                session.begin("audit")
                for table in ("Saving", "Checking"):
                    for _key, row in session.scan(table, description="audit"):
                        total += row["Balance"]
                session.commit()
                session.close()
            finally:
                connection.close()
        return round(total, 2)

    def pending_2pc_gtids(self) -> "set[str]":
        """Every gtid still prepared or in doubt on any *serving* shard,
        read from the wire-level server stats."""
        pending: "set[str]" = set()
        for shard, process in enumerate(self.fleet.shards):
            if process.crashed:
                raise TransactionStateError(
                    f"shard {shard} is crashed; recover_crashed() first"
                )
            from repro.net.client import NetworkConnection

            connection = NetworkConnection(process.host, process.port)
            try:
                stats = connection.stats()
            except ConnectionClosed as exc:
                raise ShardProcessError(
                    f"shard {shard} unreachable for a 2PC sweep: {exc}"
                ) from exc
            finally:
                connection.close()
            pending.update(stats.get("in_doubt_gtids", ()))
            pending.update(stats.get("prepared_gtids", ()))
        return pending

    def shutdown(self) -> None:
        self.fleet.shutdown()

    def __enter__(self) -> "ProcessCluster":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False
