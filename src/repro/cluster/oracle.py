"""Coordinator-side timestamp oracle (DESIGN.md §12.3, §14.3).

Shards have independent commit clocks, so "one consistent snapshot across
all shards" cannot be expressed as a timestamp — there is no global
clock to name.  The oracle instead serialises *events*: taking a snapshot
(BEGIN broadcast) and applying a 2PC decision (COMMIT_2PC broadcast) are
the two cluster-wide moments that must not interleave, and the oracle is
a **two-group latch** over exactly that pair:

* ``snapshot_window()`` — shared *within the snapshot group*.  Any number
  of transactions may open their per-shard snapshots concurrently; none
  of them can overlap a decision broadcast, so each one sees every
  distributed commit on either *all* shards or *none* (no fractured
  reads).
* ``decision_window()`` — shared *within the decision group*.  Decisions
  for distinct gtids touch disjoint prepared transactions and commute,
  so any number of coordinators may deliver their COMMIT_2PC broadcasts
  concurrently — what matters is only that no snapshot opens while *any*
  decision is mid-broadcast.  (The original design made this window
  exclusive, which serialised every cross-shard commit in the cluster on
  one latch; group sharing removes that bottleneck while preserving the
  fractured-read guarantee, which only ever needed snapshot/decision
  mutual exclusion.)

The two groups mutually exclude; members of the same group run
concurrently.  Decision preference is kept from the reader-writer
original: a queued decision blocks *new* snapshots, so a steady stream
of begins cannot starve commits.

The lazy snapshot mode deliberately bypasses ``snapshot_window()`` (its
per-shard BEGINs happen on first touch, long after cluster-begin) —
that is the mode whose fractured reads the cluster demo exhibits.

The oracle also hands out the monotonically increasing global
transaction ids (``gtid``) that name distributed transactions in 2PC and
in merged traces.  Two amortisations keep this off the hot path:

* :meth:`lease_gtids` grants a contiguous *block* of gtids in one
  mutex acquisition; each :class:`~repro.cluster.ClusterSession` leases
  a block and stamps transactions from it locally.
* ``gtid_base`` offsets the whole gtid space, so independent router
  processes (multi-process load generators sharing one shard fleet) can
  carve disjoint gtid ranges without a shared oracle.  Bases must keep
  gtids numeric: merged-trace labels are ``"<label>#g<digits>"``.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

#: Default gtid block size handed to :meth:`TimestampOracle.lease_gtids`
#: callers that do not choose their own.  Leaked remainders are fine —
#: gtids only need to be unique and monotonic per oracle, not dense.
DEFAULT_GTID_LEASE = 16


class TimestampOracle:
    """Gtid source + snapshot/decision two-group latch."""

    def __init__(self, *, gtid_base: int = 0) -> None:
        if gtid_base < 0:
            raise ValueError(f"gtid_base must be >= 0, got {gtid_base}")
        self._mutex = threading.Lock()
        self._cond = threading.Condition(self._mutex)
        self._next_gtid = gtid_base
        self._snapshots = 0         # open snapshot windows
        self._decisions = 0         # decision broadcasts in progress
        self._decisions_waiting = 0 # decisions queued (blocks new snapshots)

    # ------------------------------------------------------------------
    # Gtid allocation
    # ------------------------------------------------------------------
    def next_gtid(self) -> int:
        with self._mutex:
            self._next_gtid += 1
            return self._next_gtid

    def lease_gtids(self, count: int = DEFAULT_GTID_LEASE) -> range:
        """Grant ``count`` consecutive gtids in one mutex acquisition.

        The caller owns the returned half-open range exclusively and may
        stamp transactions from it without further coordination;
        unconsumed ids are simply never used.
        """
        if count < 1:
            raise ValueError(f"lease count must be >= 1, got {count}")
        with self._mutex:
            start = self._next_gtid + 1
            self._next_gtid += count
            return range(start, start + count)

    # ------------------------------------------------------------------
    # Snapshot / decision groups
    # ------------------------------------------------------------------
    @contextmanager
    def snapshot_window(self):
        """Snapshot-group member: hold while broadcasting BEGIN to every
        shard.  Excludes decisions; shares with other snapshots."""
        with self._cond:
            # Decision preference: a queued decision keeps new snapshots
            # out, so a steady stream of begins cannot starve commits.
            while self._decisions or self._decisions_waiting:
                self._cond.wait()
            self._snapshots += 1
        try:
            yield
        finally:
            with self._cond:
                self._snapshots -= 1
                if self._snapshots == 0:
                    self._cond.notify_all()

    @contextmanager
    def decision_window(self):
        """Decision-group member: hold while delivering one gtid's
        COMMIT_2PC to its participants.  Excludes snapshots; shares with
        other decisions (disjoint gtids commute)."""
        with self._cond:
            self._decisions_waiting += 1
            while self._snapshots:
                self._cond.wait()
            self._decisions_waiting -= 1
            self._decisions += 1
        try:
            yield
        finally:
            with self._cond:
                self._decisions -= 1
                if self._decisions == 0:
                    self._cond.notify_all()
