"""Coordinator-side timestamp oracle (DESIGN.md §12.3).

Shards have independent commit clocks, so "one consistent snapshot across
all shards" cannot be expressed as a timestamp — there is no global
clock to name.  The oracle instead serialises *events*: taking a snapshot
(BEGIN broadcast) and applying a 2PC decision (COMMIT_2PC broadcast) are
the two cluster-wide moments that must not interleave, and the oracle is
a reader-writer latch over exactly that pair.

* ``snapshot_window()`` — **shared**.  Any number of transactions may
  open their per-shard snapshots concurrently; none of them can overlap
  a decision broadcast, so each one sees every distributed commit on
  either *all* shards or *none* (no fractured reads).
* ``decision_window()`` — **exclusive**.  One coordinator delivers its
  COMMIT_2PC messages to all participants while no snapshot opens and no
  other decision broadcasts.

The lazy snapshot mode deliberately bypasses ``snapshot_window()`` (its
per-shard BEGINs happen on first touch, long after cluster-begin) —
that is the mode whose fractured reads the cluster demo exhibits.

The oracle also hands out the monotonically increasing global transaction
ids (``gtid``) that name distributed transactions in 2PC and in merged
traces.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager


class TimestampOracle:
    """Gtid source + snapshot/decision reader-writer latch."""

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._cond = threading.Condition(self._mutex)
        self._next_gtid = 0
        self._readers = 0          # open snapshot windows
        self._writer = False       # a decision broadcast in progress
        self._writers_waiting = 0  # decisions queued (blocks new readers)

    def next_gtid(self) -> int:
        with self._mutex:
            self._next_gtid += 1
            return self._next_gtid

    @contextmanager
    def snapshot_window(self):
        """Shared: hold while broadcasting BEGIN to every shard."""
        with self._cond:
            # Writer preference: a queued decision keeps new snapshots
            # out, so a steady stream of begins cannot starve commits.
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def decision_window(self):
        """Exclusive: hold while delivering one COMMIT_2PC to all shards."""
        with self._cond:
            self._writers_waiting += 1
            while self._writer or self._readers:
                self._cond.wait()
            self._writers_waiting -= 1
            self._writer = True
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()
