"""Hash partitioning of SmallBank by customer (DESIGN.md §12.2).

Every SmallBank table is keyed (directly or via the account name) by a
customer id, so partitioning *by customer* keeps each customer's four
rows — Account, Saving, Checking, Conflict — co-located on one shard.
Single-customer programs (Balance, DepositChecking, TransactSavings,
WriteCheck) are then always single-shard and take the router's 2PC-free
fast path; only the two-customer programs (Amalgamate, and WriteCheck /
SendPayment variants drawing two customers) can cross shards.

The map is static: ``shard = customer_id % shard_count``.  No directory,
no rebalancing — shard count is fixed at cluster build time, which is all
the reproduction needs.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.engine import Database, EngineConfig
from repro.smallbank.schema import (
    ACCOUNT,
    CHECKING,
    CONFLICT,
    SAVING,
    PopulationConfig,
    customer_name,
    smallbank_schemas,
)

#: The column whose value determines the owning shard, per table.
PARTITION_COLUMNS = {
    ACCOUNT: "Name",
    SAVING: "CustomerId",
    CHECKING: "CustomerId",
    CONFLICT: "Id",
}


class HashPartitioner:
    """The static customer → shard map shared by router and loaders."""

    def __init__(self, shard_count: int) -> None:
        if shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {shard_count}")
        self.shard_count = shard_count

    def shard_for_customer(self, customer_id: int) -> int:
        return customer_id % self.shard_count

    @staticmethod
    def customer_from_key(table: str, key) -> int:
        """Recover the customer id from a table's partition-column value.

        ``Account`` is keyed by name (``cust0000042``); the other tables
        carry the customer id directly.
        """
        if table == ACCOUNT:
            name = str(key)
            if not name.startswith("cust") or not name[4:].isdigit():
                raise ValueError(
                    f"Account name {key!r} does not encode a customer id"
                )
            return int(name[4:])
        return int(key)

    def shard_for_row(self, table: str, key) -> int:
        """The shard owning the row of ``table`` with partition-key ``key``."""
        if table not in PARTITION_COLUMNS:
            raise ValueError(f"no partition rule for table {table!r}")
        return self.shard_for_customer(self.customer_from_key(table, key))


def build_shard_database(
    config: Optional[EngineConfig] = None,
    population: Optional[PopulationConfig] = None,
    *,
    shard_index: int = 0,
    shard_count: int = 1,
) -> Database:
    """One shard's slice of the SmallBank population.

    Draws from the seeded RNG in *exactly* the order of
    :func:`repro.smallbank.schema.build_database` — both balances for
    every customer, whether or not the customer lands here — so the
    union of all shards is bit-identical to the single-node population
    (``cluster total_money == local total_money`` under the same seed).
    """
    if not 0 <= shard_index < shard_count:
        raise ValueError(
            f"shard_index {shard_index} out of range for {shard_count} shards"
        )
    population = population or PopulationConfig()
    partitioner = HashPartitioner(shard_count)
    rng = random.Random(population.seed)
    db = Database(smallbank_schemas(), config)
    for cid in range(1, population.customers + 1):
        saving = round(
            rng.uniform(population.min_saving, population.max_saving), 2
        )
        checking = round(
            rng.uniform(population.min_checking, population.max_checking), 2
        )
        if partitioner.shard_for_customer(cid) != shard_index:
            continue
        db.load_row(ACCOUNT, {"Name": customer_name(cid), "CustomerId": cid})
        db.load_row(SAVING, {"CustomerId": cid, "Balance": saving})
        db.load_row(CHECKING, {"CustomerId": cid, "Balance": checking})
        db.load_row(CONFLICT, {"Id": cid, "Value": 0})
    return db
