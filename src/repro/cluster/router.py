"""Shard-aware router: ``cluster://`` backend of the facade (DESIGN.md §12).

:class:`ClusterConnection` fronts N independent
:class:`~repro.net.DatabaseServer` shards behind the ordinary
:class:`repro.api.Connection` surface; :class:`ClusterSession` routes
every statement to the shard owning its partition key and commits with
presumed-abort 2PC — unless the transaction wrote on at most one shard,
in which case it takes the **fast path**: a plain per-shard COMMIT with
the existing pipelining/piggybacking intact, no prepare round at all.

Snapshot modes (``snapshot_mode=``):

* ``"consistent"`` (default) — cluster-begin broadcasts BEGIN to every
  shard inside the oracle's shared snapshot window, so no decision
  broadcast can land between the per-shard snapshots: the transaction
  sees every distributed commit on all shards or on none.
* ``"lazy"`` — per-shard BEGINs ride on the first statement touching the
  shard (the single-node deferred-BEGIN behaviour, cheapest, preserves
  the fast path's one-round-trip shape end to end) but admits
  *fractured reads*: a snapshot taken on shard A before a decision and
  on shard B after it sees half a distributed commit.

The in-process :class:`Cluster` helper stands up a full sharded
deployment (partitioned populations, per-shard recorders, real TCP
servers) in one object for tests, demos and the smoke benchmark.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Hashable, Mapping, Optional, Sequence

from repro.api import Connection
from repro.cluster.coordinator import DecisionLog, TwoPhaseCoordinator
from repro.cluster.fanout import FanOutPool, first_error
from repro.cluster.oracle import DEFAULT_GTID_LEASE, TimestampOracle
from repro.cluster.partition import (
    PARTITION_COLUMNS,
    HashPartitioner,
    build_shard_database,
)
from repro.errors import (
    ConnectionClosed,
    CoordinatorCrashed,
    ReproError,
    ShardUnavailable,
    SqlError,
    TransactionStateError,
)
from repro.net.client import NetworkConnection, NetworkSession, _unwrap
from repro.sqlmini.ast import Insert, Select, equality_key, evaluate
from repro.sqlmini.executor import StatementResult, parse_cached

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.engine import Database
    from repro.faults import FaultPlan
    from repro.obs import Observability
    from repro.workload.retry import RetryPolicy

Row = dict


class _UnwrapParams:
    """Read-only params view resolving lazy pipeline bindings on access."""

    __slots__ = ("_params",)

    def __init__(self, params: "Mapping[str, object]") -> None:
        self._params = params

    def __getitem__(self, name: str) -> object:
        return _unwrap(self._params[name])

    def __contains__(self, name: str) -> bool:  # pragma: no cover - parity
        return name in self._params


class ClusterSession:
    """One global transaction at a time across the cluster's shards.

    Mirrors the facade session surface; every operation routes to the
    branch (per-shard :class:`NetworkSession`) owning its partition key.
    The branch labels carry the global transaction id
    (``"Amalgamate#g17"``) so per-shard traces merge back into global
    transactions (:func:`repro.analysis.merge_shard_histories`).
    """

    def __init__(self, cluster: "ClusterConnection") -> None:
        self._cluster = cluster
        self._branches: "dict[int, NetworkSession]" = {}
        self._in_txn = False
        self._label = ""
        self._tagged = ""
        self._gtid = ""
        #: Locally owned gtid block (oracle lease); refilled on exhaustion.
        self._gtid_lease: "range" = range(0)
        self._gtid_lease_pos = 0

    # ------------------------------------------------------------------
    # Transaction control
    # ------------------------------------------------------------------
    def _next_gtid_number(self) -> int:
        """Next gtid from this session's leased block (amortised oracle).

        One oracle mutex acquisition per :data:`DEFAULT_GTID_LEASE`-ish
        transactions instead of one per transaction; unconsumed ids of a
        discarded session's block are simply never used.
        """
        if self._gtid_lease_pos >= len(self._gtid_lease):
            self._gtid_lease = self._cluster.oracle.lease_gtids(
                self._cluster.gtid_lease
            )
            self._gtid_lease_pos = 0
        number = self._gtid_lease[self._gtid_lease_pos]
        self._gtid_lease_pos += 1
        return number

    def begin(self, label: str = "") -> None:
        if self._in_txn:
            raise TransactionStateError(
                "session already has an active transaction"
            )
        number = self._next_gtid_number()
        self._gtid = f"g{number}"
        self._label = label
        self._tagged = f"{label}#{self._gtid}"
        self._in_txn = True
        if self._cluster.snapshot_mode == "consistent":
            # All per-shard snapshots open inside one shared window: no
            # 2PC decision broadcast can interleave them.  The per-shard
            # BEGINs fan out concurrently — they are the price consistent
            # mode pays on every transaction, so they must not cost
            # ``shards × RTT``.
            for shard in range(len(self._cluster.shards)):
                self._cluster._require_healthy(shard)

            def open_branch(connection: "NetworkConnection") -> NetworkSession:
                branch = connection.session()
                try:
                    branch.begin_now(self._tagged)
                except BaseException:
                    branch.close()  # do not leak the pooled wire
                    raise
                return branch

            with self._cluster.oracle.snapshot_window():
                outcomes = self._cluster.fanout.run(
                    [
                        (lambda c=connection: open_branch(c))
                        for connection in self._cluster.shards
                    ],
                    op="begin",
                )
            for shard, outcome in enumerate(outcomes):
                if outcome.ok:
                    self._branches[shard] = outcome.value
            error = first_error(outcomes)
            if error is not None:
                raise error

    @property
    def in_transaction(self) -> bool:
        return self._in_txn

    @property
    def gtid(self) -> str:
        """The current (or last) global transaction id, e.g. ``"g17"``."""
        return self._gtid

    @property
    def shards_touched(self) -> tuple[int, ...]:
        return tuple(sorted(self._branches))

    def _branch(self, shard: int) -> NetworkSession:
        branch = self._branches.get(shard)
        if branch is None:
            if not self._in_txn:
                raise TransactionStateError("no active transaction")
            self._cluster._require_healthy(shard)
            branch = self._cluster.shards[shard].session()
            self._branches[shard] = branch
            branch.begin(self._tagged)  # lazy mode: deferred BEGIN
        return branch

    def _all_branches(self) -> "list[NetworkSession]":
        return [self._branch(s) for s in range(len(self._cluster.shards))]

    def commit(self) -> None:
        """Fast path or 2PC, by how many shards this transaction wrote.

        Read-only branches always commit plainly — under SI a read-only
        commit cannot fail, so there is nothing for them to vote on and
        they keep the single-node deferred-ack shortcut.  With at most
        one *writing* branch, atomicity is that single shard's local
        commit and the writer commits plainly too (no prepare round —
        the fast path the benchmark measures).  Two or more writers go
        through the presumed-abort coordinator.
        """
        try:
            branches = [self._branches[s] for s in sorted(self._branches)]
            writers = [b for b in branches if not b.is_readonly]
            if len(writers) <= 1:
                for branch in branches:
                    branch.commit()
                self._cluster._count("fastpath_commits")
            else:
                for branch in branches:
                    if branch.is_readonly:
                        branch.commit()
                try:
                    self._cluster.coordinator.commit_two_phase(
                        self._gtid, writers
                    )
                except CoordinatorCrashed:
                    # Outcome *unknown*, deliberately not counted as an
                    # abort: the decision log plus the in-doubt resolver
                    # settle the gtid after the fact.
                    self._cluster._count("coordinator_crashes")
                    raise
                except BaseException:
                    self._cluster._count("twopc_aborts")
                    raise
                self._cluster._count("twopc_commits")
        finally:
            self._in_txn = False
            self._release_branches()

    def rollback(self) -> None:
        try:
            for shard in sorted(self._branches):
                branch = self._branches[shard]
                if branch.in_transaction:
                    branch.rollback()
        finally:
            self._in_txn = False
            self._release_branches()

    def close(self) -> None:
        if self._in_txn:
            self.rollback()
        else:
            self._release_branches()

    def _release_branches(self) -> None:
        branches, self._branches = self._branches, {}
        for shard in sorted(branches):
            branches[shard].close()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _shard_for(self, table: str, key: Hashable) -> int:
        return self._cluster.partitioner.shard_for_row(table, _unwrap(key))

    def select(
        self, table: str, key: Hashable, *, kind: str = "select"
    ) -> Optional[Row]:
        return self._branch(self._shard_for(table, key)).select(
            table, key, kind=kind
        )

    def select_for_update(
        self, table: str, key: Hashable, *, kind: str = "select-for-update"
    ) -> Optional[Row]:
        return self._branch(self._shard_for(table, key)).select_for_update(
            table, key, kind=kind
        )

    def lookup_unique(
        self, table: str, column: str, value: Hashable, *, kind: str = "select"
    ) -> "Optional[tuple[Hashable, Row]]":
        partitioner = self._cluster.partitioner
        if column == PARTITION_COLUMNS.get(table):
            shard = partitioner.shard_for_row(table, _unwrap(value))
            return self._branch(shard).lookup_unique(
                table, column, value, kind=kind
            )
        if table == "Account" and column == "CustomerId":
            # Unique but not the partition column; still customer-keyed.
            shard = partitioner.shard_for_customer(int(_unwrap(value)))
            return self._branch(shard).lookup_unique(
                table, column, value, kind=kind
            )
        # No shard-local index: probe all shards concurrently and take
        # the first hit in shard order (the column is unique, so at most
        # one shard answers).
        outcomes = self._cluster.fanout.run(
            [
                (lambda b=branch: b.lookup_unique(table, column, value, kind=kind))
                for branch in self._all_branches()
            ],
            op="lookup",
        )
        error = first_error(outcomes)
        if error is not None:
            raise error
        for outcome in outcomes:
            if outcome.value is not None:
                return outcome.value
        return None

    def scan(
        self,
        table: str,
        predicate: "Optional[Callable[[Row], bool]]" = None,
        description: str = "<scan>",
        *,
        kind: str = "scan",
    ) -> "list[tuple[Hashable, Row]]":
        outcomes = self._cluster.fanout.run(
            [
                (lambda b=branch: b.scan(table, predicate, description, kind=kind))
                for branch in self._all_branches()
            ],
            op="scan",
        )
        error = first_error(outcomes)
        if error is not None:
            raise error
        matches: "list[tuple[Hashable, Row]]" = []
        for outcome in outcomes:
            matches.extend(outcome.value)
        matches.sort(key=lambda pair: repr(pair[0]))
        return matches

    def update(
        self, table: str, key: Hashable, changes, *, kind: str = "update"
    ) -> bool:
        return self._branch(self._shard_for(table, key)).update(
            table, key, changes, kind=kind
        )

    def identity_update(
        self, table: str, key: Hashable, column: str, *, kind: str = "identity-update"
    ) -> bool:
        return self._branch(self._shard_for(table, key)).identity_update(
            table, key, column, kind=kind
        )

    def write(
        self, table: str, key: Hashable, row: Optional[Row], *, kind: str = "update"
    ) -> None:
        self._branch(self._shard_for(table, key)).write(
            table, key, row, kind=kind
        )

    def insert(self, table: str, row: Row, *, kind: str = "insert") -> None:
        column = PARTITION_COLUMNS.get(table)
        if column is None or column not in row:
            raise SqlError(
                f"cannot route INSERT into {table!r}: no partition key"
            )
        shard = self._cluster.partitioner.shard_for_row(table, row[column])
        self._branch(shard).insert(table, row, kind=kind)

    def delete(self, table: str, key: Hashable, *, kind: str = "delete") -> None:
        self._branch(self._shard_for(table, key)).delete(table, key, kind=kind)

    # ------------------------------------------------------------------
    # Mini-SQL
    # ------------------------------------------------------------------
    def _route_meta(self, sql: str):
        """``(table, partition-key expr)`` for one statement, cached.

        The expr is the column-free WHERE conjunct constraining the
        table's partition column (or the INSERT value for it) —
        evaluating it against the call's parameters names the one shard
        the statement can touch.
        """
        meta = self._cluster._route_meta.get(sql)
        if meta is None:
            statement = parse_cached(sql)
            table = statement.table
            column = PARTITION_COLUMNS.get(table)
            expr = None
            if column is not None:
                if isinstance(statement, Insert):
                    if column in statement.columns:
                        expr = statement.values[
                            statement.columns.index(column)
                        ]
                else:
                    expr = equality_key(statement.where, column)
                    if (
                        expr is None
                        and isinstance(statement, Select)
                        and table == "Account"
                    ):
                        # Account is also uniquely customer-keyed.
                        expr = equality_key(statement.where, "CustomerId")
                        if expr is not None:
                            meta = (table, expr, True)
            if meta is None:
                meta = (table, expr, False)
            self._cluster._route_meta[sql] = meta
        return meta

    def execute_prepared(
        self,
        sql: str,
        kind: Optional[str],
        params: "dict[str, object]",
    ) -> StatementResult:
        table, expr, by_customer_id = self._route_meta(sql)
        if expr is None:
            raise SqlError(
                f"cannot route statement on {table!r}: WHERE does not "
                f"constrain the partition column "
                f"{PARTITION_COLUMNS.get(table)!r} by equality"
            )
        # Evaluating the routing expr may force a lazy binding from an
        # earlier pipelined SELECT; the binding drains its own branch's
        # pipeline, so cross-branch dependencies stay correct.
        value = evaluate(expr, None, _UnwrapParams(params))
        if by_customer_id:
            shard = self._cluster.partitioner.shard_for_customer(int(value))
        else:
            shard = self._cluster.partitioner.shard_for_row(table, value)
        return self._branch(shard).execute_prepared(sql, kind, params)


@dataclass
class ShardHealth:
    """Mutable health record for one shard, maintained by heartbeats."""

    shard: int
    healthy: bool = True
    consecutive_failures: int = 0
    last_error: str = ""

    def snapshot(self) -> dict:
        return {
            "shard": self.shard,
            "healthy": self.healthy,
            "consecutive_failures": self.consecutive_failures,
            "last_error": self.last_error,
        }


class ClusterConnection(Connection):
    """Facade connection over one :class:`NetworkConnection` per shard.

    Self-healing (DESIGN.md §13): optional heartbeats mark a shard
    unhealthy after ``unhealthy_after`` consecutive failed pings, and
    sessions then *fail fast* with
    :class:`~repro.errors.ShardUnavailable` instead of dialing a dead
    endpoint; the first successful heartbeat restores it.  An optional
    background resolver sweeps shard stats for in-doubt or orphaned
    prepared gtids and re-delivers (or presumes abort for) each via the
    coordinator's :class:`~repro.cluster.coordinator.DecisionLog`.
    Neither thread runs unless explicitly started, so default behaviour
    is unchanged.
    """

    def __init__(
        self,
        addresses: "Sequence[tuple[str, int]]",
        *,
        retry_policy: "Optional[RetryPolicy]" = None,
        obs: "Observability | None" = None,
        pool_size: int = 8,
        timeout: Optional[float] = 10.0,
        url: str = "",
        snapshot_mode: str = "consistent",
        decision_hook: "Optional[Callable[[str, int], None]]" = None,
        decision_log: "Optional[DecisionLog]" = None,
        fault_plan: "FaultPlan | None" = None,
        rpc_deadline: Optional[float] = None,
        unhealthy_after: int = 3,
        fanout_workers: Optional[int] = None,
        gtid_base: int = 0,
        gtid_lease: int = DEFAULT_GTID_LEASE,
    ) -> None:
        if not addresses:
            raise ValueError("cluster needs at least one shard address")
        if snapshot_mode not in ("consistent", "lazy"):
            raise ValueError(
                f"snapshot_mode must be 'consistent' or 'lazy', "
                f"got {snapshot_mode!r}"
            )
        if unhealthy_after < 1:
            raise ValueError("unhealthy_after must be >= 1")
        self.retry_policy = retry_policy
        self.obs = obs
        self.snapshot_mode = snapshot_mode
        self.url = url or "cluster://" + ",".join(
            f"{host}:{port}" for host, port in addresses
        )
        self.partitioner = HashPartitioner(len(addresses))
        #: Gtid block size each session leases from the oracle at a time.
        self.gtid_lease = gtid_lease
        self.oracle = TimestampOracle(gtid_base=gtid_base)
        #: Shared fan-out pool for every per-shard broadcast this
        #: connection performs (BEGINs, 2PC rounds, scans, sweeps).
        #: Sized so ~pool_size concurrent sessions can each keep their
        #: non-inline shards busy; the per-shard wire pools bound socket
        #: concurrency underneath it.
        self.fanout = FanOutPool(
            fanout_workers
            if fanout_workers is not None
            else max(4, 4 * len(addresses)),
            obs=obs,
        )
        self.coordinator = TwoPhaseCoordinator(
            self.oracle,
            decision_hook=decision_hook,
            decision_log=decision_log,
            fault_plan=fault_plan,
            obs=obs,
            fanout=self.fanout,
        )
        self._counter_lock = threading.Lock()
        self._counters = {
            "fastpath_commits": 0,
            "twopc_commits": 0,
            "twopc_aborts": 0,
            "coordinator_crashes": 0,
            "in_doubt_commits": 0,
            "in_doubt_aborts": 0,
        }
        #: sql -> (table, routing expr, via-CustomerId), shared by sessions.
        self._route_meta: "dict[str, tuple]" = {}
        # --- health / self-healing state ------------------------------
        self.unhealthy_after = unhealthy_after
        self._health_lock = threading.Lock()
        self._health = [ShardHealth(shard=i) for i in range(len(addresses))]
        #: Fail-fast only once heartbeats run: without an active health
        #: signal a "down" verdict could never be revised.
        self._health_enforced = False
        self._stop_background = threading.Event()
        self._heartbeat_thread: "Optional[threading.Thread]" = None
        self._resolver_thread: "Optional[threading.Thread]" = None
        self.shards: "list[NetworkConnection]" = []
        try:
            for host, port in addresses:
                self.shards.append(
                    NetworkConnection(
                        host,
                        port,
                        retry_policy=retry_policy,
                        obs=obs,
                        pool_size=pool_size,
                        timeout=timeout,
                        rpc_deadline=rpc_deadline,
                    )
                )
        except BaseException:
            self.close()
            raise

    def _count(self, name: str) -> None:
        with self._counter_lock:
            self._counters[name] += 1

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def counters(self) -> "dict[str, int]":
        """Router-side commit-path counters (fast path vs 2PC)."""
        with self._counter_lock:
            return dict(self._counters)

    # --- Shard health -------------------------------------------------
    def shard_health(self) -> "list[dict]":
        """Per-shard health snapshots (heartbeat-maintained)."""
        with self._health_lock:
            return [health.snapshot() for health in self._health]

    def _unhealthy_count(self) -> int:
        with self._health_lock:
            return sum(1 for health in self._health if not health.healthy)

    def _require_healthy(self, shard: int) -> None:
        """Fail fast on a known-dead shard instead of dialing into a hang.

        Only enforced while heartbeats are running: they are the signal
        that both demotes a shard and promotes it back.
        """
        if not self._health_enforced:
            return
        with self._health_lock:
            health = self._health[shard]
            if health.healthy:
                return
            last_error = health.last_error
        raise ShardUnavailable(
            f"shard {shard} is marked unhealthy ({last_error or 'heartbeats failing'})"
        )

    def _note_shard_ok(self, shard: int) -> None:
        with self._health_lock:
            health = self._health[shard]
            recovered = not health.healthy
            health.healthy = True
            health.consecutive_failures = 0
            health.last_error = ""
        if recovered and self.obs is not None:
            self.obs.cluster_shard_health(self._unhealthy_count())

    def _note_shard_failure(self, shard: int, exc: BaseException) -> None:
        with self._health_lock:
            health = self._health[shard]
            health.consecutive_failures += 1
            health.last_error = str(exc)
            demoted = (
                health.healthy
                and health.consecutive_failures >= self.unhealthy_after
            )
            if demoted:
                health.healthy = False
        if demoted and self.obs is not None:
            self.obs.cluster_shard_health(self._unhealthy_count())

    def heartbeat(self, deadline: Optional[float] = None) -> "list[bool]":
        """One synchronous health probe of every shard (single attempt).

        Probes fan out concurrently, so one slow or dead shard cannot
        delay the health verdicts of the others past its own deadline.
        """
        outcomes = self.fanout.run(
            [
                (lambda c=connection: c.ping(deadline=deadline))
                for connection in self.shards
            ],
            op="heartbeat",
        )
        results = []
        for shard, outcome in enumerate(outcomes):
            ok = bool(outcome.ok and outcome.value)
            if self.obs is not None:
                self.obs.cluster_heartbeat(shard, ok)
            if ok:
                self._note_shard_ok(shard)
            else:
                self._note_shard_failure(
                    shard, outcome.error or ConnectionClosed("heartbeat ping failed")
                )
            results.append(ok)
        return results

    def start_heartbeats(
        self, interval: float = 0.2, deadline: Optional[float] = None
    ) -> None:
        """Run :meth:`heartbeat` on a daemon thread; enables fail-fast."""
        if self._heartbeat_thread is not None:
            return
        self._health_enforced = True

        def loop() -> None:
            while not self._stop_background.wait(interval):
                try:
                    self.heartbeat(deadline)
                except ReproError:  # pragma: no cover - defensive
                    pass

        self._heartbeat_thread = threading.Thread(
            target=loop, name="repro-cluster-heartbeat", daemon=True
        )
        self._heartbeat_thread.start()

    def start_in_doubt_resolver(self, interval: float = 0.2) -> None:
        """Sweep for in-doubt / orphaned prepared gtids on a daemon thread."""
        if self._resolver_thread is not None:
            return

        def loop() -> None:
            while not self._stop_background.wait(interval):
                try:
                    self.resolve_in_doubt()
                except ReproError:  # pragma: no cover - defensive
                    pass

        self._resolver_thread = threading.Thread(
            target=loop, name="repro-cluster-resolver", daemon=True
        )
        self._resolver_thread.start()

    def stop_background(self) -> None:
        """Stop the heartbeat and resolver threads (idempotent)."""
        self._stop_background.set()
        for thread in (self._heartbeat_thread, self._resolver_thread):
            if thread is not None:
                thread.join(timeout=5.0)
        self._heartbeat_thread = None
        self._resolver_thread = None
        self._stop_background = threading.Event()

    def install_faults(self, plan: "FaultPlan | None") -> None:
        """Install (or clear) the coordinator-side fault plan."""
        self.coordinator.install_faults(plan)

    # --- Connection surface -------------------------------------------
    def session(self) -> ClusterSession:
        return ClusterSession(self)

    def ping(self) -> bool:
        """True iff every shard answers; probes all (no short-circuit).

        Each probe is bounded by the per-shard connection ``timeout`` —
        a down shard yields ``False``, never an indefinite hang.
        """
        outcomes = self.fanout.run(
            [(lambda c=connection: c.ping()) for connection in self.shards],
            op="ping",
        )
        results = [bool(o.ok and o.value) for o in outcomes]
        for shard, ok in enumerate(results):
            if not ok:
                self._note_shard_failure(
                    shard, ConnectionClosed("ping failed")
                )
        return all(results)

    def stats(self) -> dict:
        """Merged stats; per-shard fetches are deadline-bounded and
        fail-soft (an unreachable shard contributes an ``unreachable``
        stub plus its health record instead of an exception or a hang).
        """
        merged: dict = {
            "backend": "cluster",
            "shards": self.shard_count,
            "snapshot_mode": self.snapshot_mode,
            **self.counters(),
        }
        outcomes = self.fanout.run(
            [(lambda c=connection: c.stats()) for connection in self.shards],
            op="stats",
        )
        shard_stats: "list[dict]" = []
        for shard, outcome in enumerate(outcomes):
            if outcome.ok:
                shard_stats.append(outcome.value)
            elif isinstance(outcome.error, ConnectionClosed):
                self._note_shard_failure(shard, outcome.error)
                shard_stats.append(
                    {
                        "backend": "network",
                        "unreachable": True,
                        "error": str(outcome.error),
                    }
                )
            else:
                raise outcome.error
        merged["shard_stats"] = shard_stats
        merged["shard_health"] = self.shard_health()
        return merged

    def vacuum(self) -> int:
        outcomes = self.fanout.run(
            [(lambda c=connection: c.vacuum()) for connection in self.shards],
            op="vacuum",
        )
        error = first_error(outcomes)
        if error is not None:
            raise error
        return sum(outcome.value for outcome in outcomes)

    def flush(self) -> None:
        """Settle deferred read-only COMMITs on every shard's idle wires.

        Call before reading per-shard execution traces: until flushed, a
        read-only transaction's queued COMMIT has not reached its shard
        and the shard's recorder has not observed it.
        """
        outcomes = self.fanout.run(
            [(lambda c=connection: c.flush()) for connection in self.shards],
            op="flush",
        )
        error = first_error(outcomes)
        if error is not None:
            raise error

    def resolve_in_doubt(self) -> "dict[str, str]":
        """Settle every in-doubt or orphaned-prepared gtid the shards report.

        Covers two populations: gtids recovered *in doubt* after a shard
        crash (durable prepare, no decision), and *live* prepared orphans
        whose coordinator died mid-2PC (the branch is PREPARED but no
        decision will ever arrive).  Gtids still in flight on this
        connection's coordinator are skipped — their decision broadcast
        is simply not done yet.  Unreachable shards are skipped too;
        their in-doubt state survives the outage and a later sweep (or
        restart) settles it.
        """
        outcomes: "dict[str, str]" = {}
        in_flight = self.coordinator.in_flight
        #: gtid -> the shard connections reporting it; each gtid is
        #: settled exactly once per sweep, with one delivery per shard
        #: (so the in_doubt_* counters count settled *transactions*).
        pending: "dict[str, list[NetworkConnection]]" = {}
        stat_outcomes = self.fanout.run(
            [(lambda c=connection: c.stats()) for connection in self.shards],
            op="resolve-scan",
        )
        for index, shard in enumerate(self.shards):
            outcome = stat_outcomes[index]
            if not outcome.ok:
                if isinstance(outcome.error, ConnectionClosed):
                    self._note_shard_failure(index, outcome.error)
                    continue
                raise outcome.error
            stats = outcome.value
            gtids = list(stats.get("in_doubt_gtids", ()))
            gtids.extend(
                gtid
                for gtid in stats.get("prepared_gtids", ())
                if gtid not in in_flight and gtid not in gtids
            )
            for gtid in gtids:
                pending.setdefault(gtid, []).append(shard)
        for gtid, shards in pending.items():
            try:
                outcome = self.coordinator.resolve_in_doubt(gtid, shards)
            except ConnectionClosed:  # shard died mid-resolution
                continue
            outcomes[gtid] = outcome
            self._count(
                "in_doubt_commits"
                if outcome == "commit"
                else "in_doubt_aborts"
            )
            if self.obs is not None:
                self.obs.cluster_in_doubt_resolved(outcome)
        return outcomes

    def close(self) -> None:
        self.stop_background()
        for shard in self.shards:
            shard.close()
        self.fanout.shutdown()


class Cluster:
    """An in-process sharded deployment: N servers over partitioned data.

    Owns per-shard databases (partition-identical population),
    per-shard :class:`~repro.analysis.ExecutionRecorder`\\ s, and real
    TCP :class:`~repro.net.DatabaseServer`\\ s — everything a test, demo
    or smoke benchmark needs to exercise the cluster end to end::

        with Cluster(shard_count=2, customers=40) as cluster:
            conn = cluster.connect()
            ...
            report = merge_shard_histories(cluster.histories())
    """

    def __init__(
        self,
        shard_count: int = 2,
        *,
        customers: int = 40,
        isolation: str = "si",
        seed: Optional[int] = None,
        autovacuum_interval: Optional[float] = None,
    ) -> None:
        from repro.api import ISOLATION_CONFIGS
        from repro.analysis.recorder import record_database
        from repro.net.server import DatabaseServer
        from repro.smallbank.schema import PopulationConfig

        population = (
            PopulationConfig(customers=customers)
            if seed is None
            else PopulationConfig(customers=customers, seed=seed)
        )
        self.shard_count = shard_count
        self.partitioner = HashPartitioner(shard_count)
        self._autovacuum_interval = autovacuum_interval
        self.fault_plan: "FaultPlan | None" = None
        self.restart_count = 0
        #: Committed-history prefixes salvaged at each crash, per shard.
        self._history_prefix: "dict[int, list]" = {}
        #: Bumped per crash: salvaged txids are remapped into a disjoint
        #: range (epoch * 10**7) so they can never collide with the
        #: restarted engine's txid counter, which recovery restarts at 0.
        self._salvage_epoch = 0
        self.databases = []
        self.recorders = []
        self.servers = []
        try:
            for shard in range(shard_count):
                db = build_shard_database(
                    ISOLATION_CONFIGS[isolation](),
                    population,
                    shard_index=shard,
                    shard_count=shard_count,
                )
                self.databases.append(db)
                self.recorders.append(record_database(db))
                server = DatabaseServer(
                    db, autovacuum_interval=autovacuum_interval
                )
                server.start_in_thread()
                self.servers.append(server)
        except BaseException:
            self.shutdown()
            raise

    @property
    def addresses(self) -> "list[tuple[str, int]]":
        return [(server.host, server.port) for server in self.servers]

    @property
    def url(self) -> str:
        return "cluster://" + ",".join(
            f"{host}:{port}" for host, port in self.addresses
        )

    def connect(self, **kwargs) -> ClusterConnection:
        kwargs.setdefault("url", self.url)
        return ClusterConnection(self.addresses, **kwargs)

    def install_faults(self, plan: "FaultPlan | None") -> None:
        """Install (or clear) the fault plan on every shard server.

        Remembered so :meth:`restart_shard` re-installs it on the
        replacement server.  Clear with ``None`` before measuring.
        """
        self.fault_plan = plan
        for server in self.servers:
            server.install_faults(plan)

    def crash_shard(self, shard: int) -> None:
        """Power-fail one shard: crash its engine, stop its server.

        The shard's recorder history is salvaged up to the *durable
        horizon* first: the recorder observes a commit when the status
        flips, which happens before the group-commit WAL sync — a crash
        can therefore revoke the durability of the newest recorded write
        commits.  Writes past the horizon are dropped (their committers
        saw :class:`~repro.errors.DatabaseCrashed` from the sync), and so
        are read-only commits that *observed* a revoked version — their
        reads would otherwise be misattributed to post-restart writers,
        whose timestamps reuse the crashed clock's lost range.  Salvaged
        txids are shifted into a per-crash epoch range because recovery
        restarts the txid counter and the MVSG keys nodes by txid.
        """
        from repro.analysis.recorder import salvage_durable_history

        db = self.databases[shard]
        recorder = self.recorders[shard]
        db.crash()
        self.servers[shard].shutdown()
        self._salvage_epoch += 1
        salvaged = salvage_durable_history(
            db, recorder, txid_offset=self._salvage_epoch * 10_000_000
        )
        self._history_prefix.setdefault(shard, []).extend(salvaged)
        recorder.clear()

    def restart_shard(self, shard: int) -> "Database":
        """Recover a crashed shard and serve it again *on the same port*.

        A fresh engine is rebuilt from the durable state (checkpoint
        image + flushed WAL prefix), a fresh recorder attached, and a
        new server bound to the old address so existing client
        connections reconnect transparently.  The remembered fault plan
        is re-installed on the replacement.
        """
        from repro.analysis.recorder import record_database
        from repro.net.server import DatabaseServer

        old_db = self.databases[shard]
        if not old_db.is_crashed:
            raise TransactionStateError(
                f"shard {shard} has not crashed; nothing to restart"
            )
        old_server = self.servers[shard]
        recovered = old_db.recover()
        self.databases[shard] = recovered
        self.recorders[shard] = record_database(recovered)
        server = DatabaseServer(
            recovered,
            host=old_server.host,
            port=old_server.port,
            autovacuum_interval=self._autovacuum_interval,
            fault_plan=self.fault_plan,
        )
        server.start_in_thread()
        self.servers[shard] = server
        self.restart_count += 1
        return recovered

    def histories(self):
        """Per-shard committed histories, ready for the global merge.

        Includes the durable prefixes salvaged by :meth:`crash_shard`
        ahead of whatever the current recorder incarnation has observed.
        """
        merged = {}
        for shard, recorder in enumerate(self.recorders):
            prefix = self._history_prefix.get(shard)
            committed = recorder.committed
            merged[shard] = (
                tuple(prefix) + committed if prefix else committed
            )
        return merged

    def total_money(self) -> float:
        """Cluster-wide balance sum (matches the single-node population)."""
        total = 0.0
        for db in self.databases:
            txn = db.begin("audit")
            for table in ("Saving", "Checking"):
                for _key, row in db.scan(txn, table):
                    total += row["Balance"]
            db.commit(txn)
        return round(total, 2)

    def pending_2pc_gtids(self) -> "set[str]":
        """Every gtid still prepared or in doubt anywhere in the cluster."""
        pending: "set[str]" = set()
        for db in self.databases:
            pending.update(db.recovered_in_doubt)
            pending.update(db.prepared_gtids)
        return pending

    def recover_crashed(self) -> int:
        """Restart any shard whose engine is crashed; returns the count."""
        restarted = 0
        for shard, db in enumerate(self.databases):
            if db.is_crashed:
                self.restart_shard(shard)
                restarted += 1
        return restarted

    def shutdown(self) -> None:
        for server in self.servers:
            server.shutdown()
        self.servers = []

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False
