"""The paper's core contribution layer: SDG theory and program fixes.

Typical workflow (this is what ``examples/custom_app_audit.py`` shows)::

    from repro.core import ProgramSet, build_sdg, minimal_fix, read, write
    from repro.core.specs import ProgramSpec

    mix = ProgramSet([
        ProgramSpec("Report", ("x",), (read("T", "x", "v"),)),
        ProgramSpec("Change", ("x",), (read("T", "x", "v"), write("U", "x", "v"))),
        ...
    ])
    sdg = build_sdg(mix)
    if not sdg.is_si_serializable():
        plan = minimal_fix(mix, method="promote-upd")
        print(plan.describe())
"""

from repro.core.advisor import (
    Prediction,
    ProgramProfile,
    Recommendation,
    predict,
    profile_smallbank_strategy,
    recommend,
    suggest_edges,
)
from repro.core.conflicts import (
    ConflictItem,
    EdgeAnalysis,
    Scenario,
    ScenarioConflicts,
    analyze_edge,
    enumerate_scenarios,
)
from repro.core.edge_selection import FixPlan, greedy_fix, minimal_fix
from repro.core.modify import (
    CONFLICT_TABLE,
    CONFLICT_VALUE_COLUMN,
    Modification,
    materialize_all,
    materialize_edge,
    promote_all,
    promote_edge,
    tables_updated_by,
)
from repro.core.sdg import (
    DangerousStructure,
    StaticDependencyGraph,
    build_sdg,
)
from repro.core.specs import (
    Access,
    AccessKind,
    ProgramSet,
    ProgramSpec,
    cc_write,
    read,
    read_const,
    write,
    write_const,
)

__all__ = [
    "Access",
    "AccessKind",
    "CONFLICT_TABLE",
    "CONFLICT_VALUE_COLUMN",
    "ConflictItem",
    "DangerousStructure",
    "EdgeAnalysis",
    "FixPlan",
    "Modification",
    "Prediction",
    "ProgramProfile",
    "ProgramSet",
    "ProgramSpec",
    "Recommendation",
    "Scenario",
    "ScenarioConflicts",
    "StaticDependencyGraph",
    "analyze_edge",
    "build_sdg",
    "cc_write",
    "enumerate_scenarios",
    "greedy_fix",
    "materialize_all",
    "materialize_edge",
    "minimal_fix",
    "predict",
    "profile_smallbank_strategy",
    "promote_all",
    "promote_edge",
    "read",
    "recommend",
    "suggest_edges",
    "read_const",
    "tables_updated_by",
    "write",
    "write_const",
]
