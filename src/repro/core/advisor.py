"""Performance advisor: predict strategy cost and recommend an edge fix.

The paper closes with: "In future work, we intend to develop a performance
model, that can predict the impact of different mechanisms; we especially
hope for a tool that can suggest which vulnerable edges to deal with, for
least impact on performance."  This module is that tool, built on the two
mechanisms the paper's own analysis identifies:

* **CPU demand** per transaction (statements priced by the platform cost
  model, plus the per-writer overhead) bounds the throughput plateau at
  ``1 / cpu_per_txn``;
* the **flush fraction** (share of transactions that must wait for the
  group-commit WAL flush) dominates low-MPL response time, so strategies
  that turn read-only programs into writers pay the Figure 5(b) penalty.

Statement profiles are measured *empirically*: each program variant runs
once against a scratch SmallBank database with a counting statement hook,
so the profile reflects exactly what the executable programs do (identity
writes, Conflict updates, SFU reads and all).

:func:`recommend` enumerates candidate fix plans (each minimal edge set x
each method valid on the platform) and ranks them by predicted plateau
throughput; ties break toward fewer modifications.  The test-suite checks
the advisor's ranking against the simulator's measurements.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.edge_selection import FixPlan, Method, minimal_fix
from repro.core.sdg import StaticDependencyGraph
from repro.core.specs import ProgramSet
from repro.errors import SpecError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.platform import PlatformModel
    from repro.workload.mix import TransactionMix


@dataclass(frozen=True)
class ProgramProfile:
    """Empirical cost profile of one executable program."""

    name: str
    statement_counts: Counter
    writes_data: bool
    uses_sfu: bool

    def cpu_seconds(self, platform: "PlatformModel") -> float:
        cpu = sum(
            platform.statement_cost(kind) * count
            for kind, count in self.statement_counts.items()
        )
        cpu += platform.commit_cpu
        if platform.needs_flush(
            wrote_data=self.writes_data, used_sfu=self.uses_sfu
        ):
            cpu += platform.write_txn_overhead
        return cpu

    def needs_flush(self, platform: "PlatformModel") -> bool:
        return platform.needs_flush(
            wrote_data=self.writes_data, used_sfu=self.uses_sfu
        )


@dataclass(frozen=True)
class Prediction:
    """Predicted performance of one strategy under one platform/mix."""

    strategy_key: str
    cpu_per_txn: float
    flush_fraction: float
    plateau_tps: float
    mpl1_tps: float

    def describe(self) -> str:
        return (
            f"{self.strategy_key:>16}: plateau ~{self.plateau_tps:6.0f} TPS, "
            f"MPL-1 ~{self.mpl1_tps:5.0f} TPS, "
            f"flush fraction {self.flush_fraction * 100:3.0f}%"
        )


def profile_smallbank_strategy(strategy_key: str) -> dict[str, ProgramProfile]:
    """Measure each SmallBank program's statement profile for a strategy.

    Runs every program once (fixed parameters) on a tiny scratch database
    with a counting statement hook.
    """
    from repro.engine.session import Session
    from repro.smallbank.schema import PopulationConfig, build_database
    from repro.smallbank.schema import customer_name
    from repro.smallbank.strategies import get_strategy

    strategy = get_strategy(strategy_key)
    transactions = strategy.transactions()
    db = build_database(population=PopulationConfig(customers=4))
    args = {
        "Balance": {"N": customer_name(1)},
        "DepositChecking": {"N": customer_name(1), "V": 1.0},
        "TransactSaving": {"N": customer_name(1), "V": 1.0},
        "Amalgamate": {"N1": customer_name(1), "N2": customer_name(2)},
        "WriteCheck": {"N": customer_name(1), "V": 1.0},
    }
    profiles: dict[str, ProgramProfile] = {}
    for program, parameters in args.items():
        counts: Counter = Counter()
        session = Session._internal(
            db, statement_hook=lambda kind, txn: counts.update([kind])
        )
        transactions.run(session, program, parameters)
        txn = session.txn
        profiles[program] = ProgramProfile(
            name=program,
            statement_counts=counts,
            writes_data=bool(txn.writes),
            uses_sfu=bool(txn.sfu_rows or txn.cc_writes),
        )
    return profiles


def predict(
    strategy_key: str,
    platform: "PlatformModel",
    mix: "TransactionMix",
) -> Prediction:
    """Predict plateau and MPL-1 throughput of one SmallBank strategy."""
    profiles = profile_smallbank_strategy(strategy_key)
    total_weight = sum(mix.weights.values())
    cpu = 0.0
    flush_fraction = 0.0
    for program, weight in mix.weights.items():
        share = weight / total_weight
        profile = profiles[program]
        cpu += share * profile.cpu_seconds(platform)
        if profile.needs_flush(platform):
            flush_fraction += share
    plateau = 1.0 / cpu if cpu > 0 else float("inf")
    # At MPL 1 a flushing commit waits the gather window plus the flush.
    flush_wait = platform.wal_commit_delay + platform.wal_flush_time
    mpl1 = 1.0 / (platform.network_rtt + cpu + flush_fraction * flush_wait)
    return Prediction(
        strategy_key=strategy_key,
        cpu_per_txn=cpu,
        flush_fraction=flush_fraction,
        plateau_tps=plateau,
        mpl1_tps=mpl1,
    )


@dataclass(frozen=True)
class Recommendation:
    """The advisor's verdict for one platform/mix."""

    best: Prediction
    ranked: tuple[Prediction, ...]

    def describe(self) -> str:
        lines = [f"recommended strategy: {self.best.strategy_key}"]
        lines.extend("  " + p.describe() for p in self.ranked)
        return "\n".join(lines)


#: SmallBank fixing strategies the advisor considers, per platform.
_CANDIDATES = {
    "postgres": (
        "materialize-wt",
        "promote-wt-upd",
        "materialize-bw",
        "promote-bw-upd",
        "materialize-all",
        "promote-all",
    ),
    "commercial": (
        "materialize-wt",
        "promote-wt-upd",
        "promote-wt-sfu",
        "materialize-bw",
        "promote-bw-upd",
        "promote-bw-sfu",
    ),
}


def recommend(
    platform: "PlatformModel",
    mix: "TransactionMix",
    *,
    candidates: Optional[tuple[str, ...]] = None,
) -> Recommendation:
    """Rank the SmallBank fixing strategies for a platform and mix.

    Only strategies that actually guarantee serializability on the given
    platform are considered (lock-only SFU promotions are excluded on
    PostgreSQL automatically).
    """
    from repro.smallbank.strategies import get_strategy

    keys = candidates or _CANDIDATES.get(
        platform.name, _CANDIDATES["postgres"]
    )
    sfu_is_write = platform.engine_config.sfu.value == "cc-write"
    valid = []
    for key in keys:
        strategy = get_strategy(key)
        serializable = (
            strategy.serializable_on_commercial
            if sfu_is_write
            else strategy.serializable_on_postgres
        )
        if serializable:
            valid.append(key)
    if not valid:
        raise SpecError("no candidate strategy is valid on this platform")
    predictions = sorted(
        (predict(key, platform, mix) for key in valid),
        key=lambda p: (-p.plateau_tps, p.flush_fraction),
    )
    return Recommendation(best=predictions[0], ranked=tuple(predictions))


def suggest_edges(
    programs: ProgramSet,
    *,
    method: Method = "promote-upd",
    sfu_is_write: bool = True,
) -> FixPlan:
    """Generic (non-SmallBank) edge suggestion: the minimal fix that
    avoids touching read-only programs when possible (Guideline 2).

    Tries minimal fixes that leave every read-only program untouched
    first; falls back to the unconstrained minimum.
    """
    sdg = StaticDependencyGraph(programs, sfu_is_write=sfu_is_write)
    if sdg.is_si_serializable():
        return FixPlan(method, (), programs, ())
    plan = minimal_fix(programs, method, sfu_is_write=sfu_is_write)
    read_only = {spec.name for spec in programs if spec.is_read_only}
    if not any(m.program in read_only for m in plan.modifications):
        return plan
    # Search for an equally small plan avoiding read-only programs by
    # retrying with the offending edges' alternatives: brute force over
    # larger budgets, filtering by the guideline.
    from itertools import combinations

    from repro.core.edge_selection import _candidate_edges, _try_subset

    candidates = [
        edge
        for edge in _candidate_edges(sdg)
        if edge[0] not in read_only and edge[1] not in read_only
    ]
    for size in range(1, len(candidates) + 1):
        for subset in combinations(candidates, size):
            attempt = _try_subset(
                programs, subset, method, sfu_is_write=sfu_is_write
            )
            if attempt is not None:
                return attempt
    return plan  # no guideline-respecting plan exists; minimal it is
