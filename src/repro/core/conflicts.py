"""Pairwise conflict and vulnerability analysis between program specs.

Given two programs P and Q, the analysis enumerates every *scenario* — a
way for Q's row parameters to coincide with P's (injective, because
parameters within one program instance bind distinct rows) — and computes
the conflicts between a transaction T from P and a transaction U from Q
under that identification:

* ``rw`` — T reads an item U writes (an anti-dependency, T before U);
* ``ww`` — both write an item;
* ``wr`` — T writes an item U reads.

The **vulnerable edge** rule of Fekete et al. (TODS 2005), quoted in
Section II-A of the paper: the edge P → Q is vulnerable when in some
scenario T and U *can execute concurrently* with a read-write conflict.
Under SI two concurrent transactions that share a written item cannot both
commit, so a scenario whose rw conflict comes with a ww conflict on *some*
item is protected; a scenario with rw and no ww is vulnerable.

``SELECT FOR UPDATE`` accesses (:attr:`AccessKind.CC_WRITE`) count as
writes only under commercial semantics — pass ``sfu_is_write=False`` to
analyze for PostgreSQL, where SFU leaves the interleaving
``read-sfu(T,x) commit(T) write(U,x)`` possible and the edge stays
vulnerable (paper Section II-C).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.core.specs import Access, AccessKind, ProgramSpec

ItemKey = tuple[str, str]
"""Resolved symbolic key: ('p', param) / ('q', param) / ('const', name)."""

Item = tuple[str, ItemKey]
"""A symbolic item: (table, resolved key)."""


@dataclass(frozen=True)
class Scenario:
    """One identification of Q's parameters with P's.

    ``identifications`` maps Q-parameters to P-parameters; Q-parameters not
    mentioned bind rows distinct from all of P's.
    """

    identifications: tuple[tuple[str, str], ...]

    def maps(self, q_param: str) -> Optional[str]:
        for q, p in self.identifications:
            if q == q_param:
                return p
        return None

    def describe(self) -> str:
        if not self.identifications:
            return "disjoint rows"
        return ", ".join(f"{q} = {p}" for q, p in self.identifications)


@dataclass(frozen=True)
class ConflictItem:
    """One conflicting item in one scenario.

    ``p_key`` / ``q_key`` are the parameter names through which P and Q
    reach the item (``None`` when the item is a shared constant row).  The
    strategy transforms use them to decide which parameter keys the
    materialized ``Conflict`` row and which item to promote.
    """

    table: str
    p_key: Optional[str]
    q_key: Optional[str]
    const: Optional[str] = None

    def describe(self) -> str:
        key = self.p_key if self.p_key is not None else f"#{self.const}"
        return f"{self.table}[{key}]"


@dataclass(frozen=True)
class ScenarioConflicts:
    """Conflicts between P-instance T and Q-instance U in one scenario."""

    scenario: Scenario
    rw: tuple[ConflictItem, ...]
    ww: tuple[ConflictItem, ...]
    wr: tuple[ConflictItem, ...]

    @property
    def has_conflict(self) -> bool:
        return bool(self.rw or self.ww or self.wr)

    @property
    def vulnerable(self) -> bool:
        """rw conflict possible between concurrent transactions."""
        return bool(self.rw) and not self.ww


@dataclass(frozen=True)
class EdgeAnalysis:
    """Full analysis of the directed edge P → Q."""

    source: str
    target: str
    scenarios: tuple[ScenarioConflicts, ...]

    @property
    def exists(self) -> bool:
        return any(s.has_conflict for s in self.scenarios)

    @property
    def vulnerable(self) -> bool:
        return any(s.vulnerable for s in self.scenarios)

    @property
    def vulnerable_scenarios(self) -> tuple[ScenarioConflicts, ...]:
        return tuple(s for s in self.scenarios if s.vulnerable)

    @property
    def conflict_kinds(self) -> frozenset[str]:
        kinds: set[str] = set()
        for s in self.scenarios:
            if s.rw:
                kinds.add("rw")
            if s.ww:
                kinds.add("ww")
            if s.wr:
                kinds.add("wr")
        return frozenset(kinds)

    def vulnerable_items(self) -> tuple[ConflictItem, ...]:
        """Distinct rw items across vulnerable scenarios (for promotion)."""
        seen: list[ConflictItem] = []
        for s in self.vulnerable_scenarios:
            for item in s.rw:
                if item not in seen:
                    seen.append(item)
        return tuple(seen)


def enumerate_scenarios(p: ProgramSpec, q: ProgramSpec) -> Iterator[Scenario]:
    """All injective partial maps from Q's parameters into P's."""
    q_params = q.params
    p_params = p.params
    for size in range(min(len(q_params), len(p_params)) + 1):
        for chosen_q in itertools.combinations(q_params, size):
            for chosen_p in itertools.permutations(p_params, size):
                yield Scenario(tuple(zip(chosen_q, chosen_p)))


def _resolve(access: Access, side: str, scenario: Scenario) -> Item:
    """The symbolic item an access touches, under a scenario.

    ``side`` is ``"p"`` or ``"q"``.  A Q access through a parameter that
    the scenario identifies with a P parameter resolves to the P item.
    """
    if access.key_const is not None:
        return (access.table, ("const", access.key_const))
    if side == "p":
        return (access.table, ("p", access.key_param))
    mapped = scenario.maps(access.key_param)
    if mapped is not None:
        return (access.table, ("p", mapped))
    return (access.table, ("q", access.key_param))


@dataclass(frozen=True)
class _ItemAccess:
    """Merged access info for one symbolic item on one side."""

    representative: Access
    columns: Optional[frozenset[str]]
    """Union of accessed columns; ``None`` once any access names no
    columns (treated as touching the whole row)."""


def _merge(
    into: dict[Item, _ItemAccess], item: Item, access: Access
) -> None:
    current = into.get(item)
    columns: Optional[frozenset[str]]
    columns = access.columns if access.columns else None
    if current is None:
        into[item] = _ItemAccess(access, columns)
        return
    if current.columns is None or columns is None:
        merged: Optional[frozenset[str]] = None
    else:
        merged = current.columns | columns
    into[item] = _ItemAccess(current.representative, merged)


def _footprint(
    program: ProgramSpec, side: str, scenario: Scenario, *, sfu_is_write: bool
) -> tuple[dict[Item, _ItemAccess], dict[Item, _ItemAccess]]:
    """(reads, writes) item maps for one side under one scenario."""
    reads: dict[Item, _ItemAccess] = {}
    writes: dict[Item, _ItemAccess] = {}
    for access in program.accesses:
        item = _resolve(access, side, scenario)
        counts_as_write = access.kind is AccessKind.WRITE or (
            access.kind is AccessKind.CC_WRITE and sfu_is_write
        )
        _merge(writes if counts_as_write else reads, item, access)
    return reads, writes


def _columns_overlap(
    a: Optional[frozenset[str]], b: Optional[frozenset[str]]
) -> bool:
    """Whole-row accesses (None) overlap everything."""
    if a is None or b is None:
        return True
    return bool(a & b)


def _conflict_item(
    item: Item, p_access: _ItemAccess, q_access: _ItemAccess
) -> ConflictItem:
    table, (kind, name) = item
    if kind == "const":
        return ConflictItem(table, p_key=None, q_key=None, const=name)
    # kind == "p": reached via p's key_param on P's side and (if the
    # q access is parameterized) via q's key_param on Q's side.
    return ConflictItem(
        table,
        p_key=p_access.representative.key_param,
        q_key=q_access.representative.key_param,
    )


def analyze_edge(
    p: ProgramSpec,
    q: ProgramSpec,
    *,
    sfu_is_write: bool = True,
    column_granularity: bool = False,
) -> EdgeAnalysis:
    """Analyze the directed edge P → Q over every scenario.

    ``column_granularity`` refines rw/wr conflict detection to require the
    read and written *column* sets to intersect (accesses declaring no
    columns touch the whole row).  This is the dataflow granularity the
    TODS-2005 TPC-C proof needs — e.g. NewOrder reads a customer's
    discount while Payment writes the same customer's balance: same row,
    no logical anti-dependency.  Write-write conflicts stay row-level
    regardless, because SI engines version whole rows, so two writers of
    disjoint columns of one row still cannot both commit concurrently —
    the protection side of the vulnerability rule keeps its strength.
    """
    results: list[ScenarioConflicts] = []
    for scenario in enumerate_scenarios(p, q):
        p_reads, p_writes = _footprint(p, "p", scenario, sfu_is_write=sfu_is_write)
        q_reads, q_writes = _footprint(q, "q", scenario, sfu_is_write=sfu_is_write)

        def data_conflict(
            a: dict[Item, _ItemAccess], b: dict[Item, _ItemAccess], item: Item
        ) -> bool:
            if not column_granularity:
                return True
            return _columns_overlap(a[item].columns, b[item].columns)

        rw = tuple(
            _conflict_item(item, p_reads[item], q_writes[item])
            for item in sorted(p_reads.keys() & q_writes.keys())
            if data_conflict(p_reads, q_writes, item)
        )
        ww = tuple(
            _conflict_item(item, p_writes[item], q_writes[item])
            for item in sorted(p_writes.keys() & q_writes.keys())
        )
        wr = tuple(
            _conflict_item(item, p_writes[item], q_reads[item])
            for item in sorted(p_writes.keys() & q_reads.keys())
            if data_conflict(p_writes, q_reads, item)
        )
        conflicts = ScenarioConflicts(scenario, rw=rw, ww=ww, wr=wr)
        if conflicts.has_conflict:
            results.append(conflicts)
    return EdgeAnalysis(p.name, q.name, tuple(results))
