"""Choosing which vulnerable edges to fix.

The paper (Section II-A, citing Jorwekar et al., VLDB 2007): "choosing a
minimal set of appropriate edges is NP-hard".  This module provides

* :func:`minimal_fix` — exact minimum by exhaustive subset search (fine for
  application mixes of realistic size, where the number of vulnerable
  edges involved in dangerous structures is small), and
* :func:`greedy_fix` — the classic set-cover-style heuristic for larger
  graphs: repeatedly fix the edge that participates in the most remaining
  dangerous structures.

Both re-run the full SDG analysis after applying the candidate fixes, so
side effects of a fix (materialization introduces new conflicts; promotion
turns readers into writers) are accounted for rather than assumed away.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Literal, Optional

from repro.core.modify import (
    Modification,
    PromoteVia,
    materialize_edge,
    promote_edge,
)
from repro.core.sdg import StaticDependencyGraph
from repro.core.specs import ProgramSet
from repro.errors import SpecError

Edge = tuple[str, str]
Method = Literal["materialize", "promote-upd", "promote-sfu"]


@dataclass(frozen=True)
class FixPlan:
    """A chosen set of edges plus the resulting (serializable) mix."""

    method: Method
    edges: tuple[Edge, ...]
    programs: ProgramSet
    modifications: tuple[Modification, ...]

    def describe(self) -> str:
        edges = ", ".join(f"{s}->{t}" for s, t in self.edges) or "<none>"
        return f"{self.method} on {edges} ({len(self.modifications)} changes)"


def _apply(
    programs: ProgramSet, edge: Edge, method: Method, *, sfu_is_write: bool
) -> tuple[ProgramSet, list[Modification]]:
    source, target = edge
    if method == "materialize":
        return materialize_edge(
            programs, source, target, sfu_is_write=sfu_is_write
        )
    via: PromoteVia = "update" if method == "promote-upd" else "sfu"
    return promote_edge(
        programs, source, target, via=via, sfu_is_write=sfu_is_write
    )


def _candidate_edges(sdg: StaticDependencyGraph) -> tuple[Edge, ...]:
    """Vulnerable edges that participate in some dangerous structure."""
    involved: set[Edge] = set()
    for structure in sdg.dangerous_structures():
        involved.add((structure.source, structure.pivot))
        involved.add((structure.pivot, structure.sink))
    return tuple(sorted(involved))


def _try_subset(
    programs: ProgramSet,
    subset: tuple[Edge, ...],
    method: Method,
    *,
    sfu_is_write: bool,
) -> Optional[FixPlan]:
    updated = programs
    modifications: list[Modification] = []
    for edge in subset:
        try:
            updated, mods = _apply(
                updated, edge, method, sfu_is_write=sfu_is_write
            )
        except SpecError:
            return None  # edge no longer vulnerable / not promotable
        modifications.extend(mods)
    result = StaticDependencyGraph(updated, sfu_is_write=sfu_is_write)
    if result.is_si_serializable():
        return FixPlan(method, subset, updated, tuple(modifications))
    return None


def minimal_fix(
    programs: ProgramSet,
    method: Method = "materialize",
    *,
    sfu_is_write: bool = True,
    max_edges: int = 6,
) -> FixPlan:
    """Exact minimum-cardinality edge set whose fixing removes every
    dangerous structure (exhaustive search, smallest subsets first).

    Raises :class:`SpecError` when no subset of at most ``max_edges``
    candidate edges works.
    """
    sdg = StaticDependencyGraph(programs, sfu_is_write=sfu_is_write)
    if sdg.is_si_serializable():
        return FixPlan(method, (), programs, ())
    candidates = _candidate_edges(sdg)
    for size in range(1, min(len(candidates), max_edges) + 1):
        for subset in itertools.combinations(candidates, size):
            plan = _try_subset(
                programs, subset, method, sfu_is_write=sfu_is_write
            )
            if plan is not None:
                return plan
    raise SpecError(
        f"no fix of up to {max_edges} edges removes every dangerous "
        f"structure with method {method!r}"
    )


def greedy_fix(
    programs: ProgramSet,
    method: Method = "materialize",
    *,
    sfu_is_write: bool = True,
    max_rounds: int = 32,
) -> FixPlan:
    """Heuristic: repeatedly fix the edge covering the most dangerous
    structures until none remain.  Not guaranteed minimal."""
    updated = programs
    chosen: list[Edge] = []
    modifications: list[Modification] = []
    for _ in range(max_rounds):
        sdg = StaticDependencyGraph(updated, sfu_is_write=sfu_is_write)
        structures = sdg.dangerous_structures()
        if not structures:
            return FixPlan(
                method, tuple(chosen), updated, tuple(modifications)
            )
        coverage: dict[Edge, int] = {}
        for structure in structures:
            for edge in (
                (structure.source, structure.pivot),
                (structure.pivot, structure.sink),
            ):
                coverage[edge] = coverage.get(edge, 0) + 1
        # Highest coverage, ties broken lexicographically for determinism.
        best = max(sorted(coverage), key=lambda e: coverage[e])
        try:
            updated, mods = _apply(
                updated, best, method, sfu_is_write=sfu_is_write
            )
        except SpecError:
            raise SpecError(
                f"greedy fix stuck: cannot apply {method!r} to {best}"
            ) from None
        chosen.append(best)
        modifications.extend(mods)
    raise SpecError("greedy fix did not converge")
