"""Program-modification strategies: materialization and promotion.

These are the techniques of Fekete et al. (TODS 2005) that the paper
evaluates — transformations that remove the vulnerability of a chosen SDG
edge without changing program semantics:

* **Materialization** (:func:`materialize_edge`): both endpoint programs
  get ``UPDATE Conflict SET Value = Value + 1 WHERE Id = :x`` on the
  auxiliary ``Conflict`` table, keyed by the parameter they share in each
  vulnerable scenario, so a write-write conflict arises exactly when the
  read-write conflict would.
* **Promotion** (:func:`promote_edge`): the *source* program gets an
  identity write (``UPDATE t SET col = col``) on each item it reads that
  the target concurrently writes; or, with ``via="sfu"``, its read is
  replaced by ``SELECT ... FOR UPDATE`` (which only de-vulnerates the edge
  on platforms where SFU acts as a concurrency-control write).

:func:`materialize_all` / :func:`promote_all` are the paper's "no SDG
analysis required" variants: they fix *every* vulnerable edge of the graph.

All functions are pure: they return a new
:class:`~repro.core.specs.ProgramSet` plus the list of
:class:`Modification` records (from which Table I of the paper is
derived), leaving the input untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional

from repro.core.conflicts import analyze_edge
from repro.core.sdg import StaticDependencyGraph
from repro.core.specs import (
    Access,
    AccessKind,
    ProgramSet,
    ProgramSpec,
    cc_write,
    write,
    write_const,
)
from repro.errors import SpecError

CONFLICT_TABLE = "Conflict"
CONFLICT_VALUE_COLUMN = "Value"

PromoteVia = Literal["update", "sfu"]


@dataclass(frozen=True)
class Modification:
    """One strategy-introduced access, for reporting (Table I)."""

    program: str
    kind: str  # "materialize" | "promote-upd" | "promote-sfu"
    table: str
    key: Optional[str]  # parameter name; None for a constant row

    def describe(self) -> str:
        key = self.key if self.key is not None else "#shared"
        return f"{self.program}: {self.kind} on {self.table}[{key}]"


def _require_edge(programs: ProgramSet, source: str, target: str) -> None:
    if source not in programs:
        raise SpecError(f"unknown program {source!r}")
    if target not in programs:
        raise SpecError(f"unknown program {target!r}")


# ----------------------------------------------------------------------
# Materialization
# ----------------------------------------------------------------------


def materialize_edge(
    programs: ProgramSet,
    source: str,
    target: str,
    *,
    sfu_is_write: bool = True,
    conflict_table: str = CONFLICT_TABLE,
) -> tuple[ProgramSet, list[Modification]]:
    """Remove the vulnerability of ``source -> target`` by materializing.

    For every vulnerable scenario, both programs receive a write on the
    ``Conflict`` row keyed by the parameter through which they reach the
    conflicting item, so the write-write conflict arises exactly when the
    read-write conflict does (the paper's refinement over a single fixed
    row).  Conflicts on constant rows materialize on a shared constant row.
    """
    _require_edge(programs, source, target)
    analysis = analyze_edge(
        programs[source], programs[target], sfu_is_write=sfu_is_write
    )
    if not analysis.vulnerable:
        raise SpecError(
            f"edge {source} -> {target} is not vulnerable; nothing to do"
        )
    source_extra: list[Access] = []
    target_extra: list[Access] = []
    modifications: list[Modification] = []
    for scenario in analysis.vulnerable_scenarios:
        for item in scenario.rw:
            if item.const is not None or item.p_key is None or item.q_key is None:
                source_extra.append(
                    write_const(conflict_table, "shared", CONFLICT_VALUE_COLUMN)
                )
                target_extra.append(
                    write_const(conflict_table, "shared", CONFLICT_VALUE_COLUMN)
                )
                modifications.append(
                    Modification(source, "materialize", conflict_table, None)
                )
                modifications.append(
                    Modification(target, "materialize", conflict_table, None)
                )
            else:
                source_extra.append(
                    write(conflict_table, item.p_key, CONFLICT_VALUE_COLUMN)
                )
                target_extra.append(
                    write(conflict_table, item.q_key, CONFLICT_VALUE_COLUMN)
                )
                modifications.append(
                    Modification(source, "materialize", conflict_table, item.p_key)
                )
                modifications.append(
                    Modification(target, "materialize", conflict_table, item.q_key)
                )
    updated = programs.replace(programs[source].with_access(*source_extra))
    if target != source:
        updated = updated.replace(updated[target].with_access(*target_extra))
    else:
        updated = updated.replace(updated[source].with_access(*target_extra))
    return updated, _dedupe(modifications)


# ----------------------------------------------------------------------
# Promotion
# ----------------------------------------------------------------------


def promote_edge(
    programs: ProgramSet,
    source: str,
    target: str,
    *,
    via: PromoteVia = "update",
    sfu_is_write: bool = True,
) -> tuple[ProgramSet, list[Modification]]:
    """Remove the vulnerability of ``source -> target`` by promotion.

    Only the *source* program changes (the paper: "we do not alter Q at
    all").  ``via="update"`` adds an identity write on each vulnerable rw
    item; ``via="sfu"`` replaces the corresponding read with
    ``SELECT ... FOR UPDATE``.

    Promotion requires the rw conflict to be on identifiable items — it
    "does not work for conflicts where one transaction changes the set of
    items returned in a predicate evaluation in another" — so conflicts on
    constant rows are fine but a vulnerable scenario without a parameter
    key on the source side is rejected.
    """
    _require_edge(programs, source, target)
    analysis = analyze_edge(
        programs[source], programs[target], sfu_is_write=sfu_is_write
    )
    if not analysis.vulnerable:
        raise SpecError(
            f"edge {source} -> {target} is not vulnerable; nothing to do"
        )
    spec = programs[source]
    modifications: list[Modification] = []
    for item in analysis.vulnerable_items():
        if item.p_key is None and item.const is None:
            raise SpecError(
                f"cannot promote {source} -> {target}: conflict on "
                f"{item.table} is not keyed by a parameter"
            )
        if via == "update":
            columns = _read_columns(spec, item.table, item.p_key, item.const)
            if item.p_key is not None:
                spec = spec.with_access(
                    Access(
                        AccessKind.WRITE,
                        item.table,
                        key_param=item.p_key,
                        columns=columns,
                        note="identity write (promotion)",
                    )
                )
            else:
                spec = spec.with_access(
                    Access(
                        AccessKind.WRITE,
                        item.table,
                        key_const=item.const,
                        columns=columns,
                        note="identity write (promotion)",
                    )
                )
            modifications.append(
                Modification(source, "promote-upd", item.table, item.p_key)
            )
        elif via == "sfu":
            old = _find_read(spec, item.table, item.p_key, item.const)
            new = Access(
                AccessKind.CC_WRITE,
                old.table,
                key_param=old.key_param,
                key_const=old.key_const,
                columns=old.columns,
                note="select for update (promotion)",
            )
            spec = spec.replace_access(old, new)
            modifications.append(
                Modification(source, "promote-sfu", item.table, item.p_key)
            )
        else:  # pragma: no cover - typing guards this
            raise SpecError(f"unknown promotion method {via!r}")
    return programs.replace(spec), _dedupe(modifications)


def _find_read(
    spec: ProgramSpec, table: str, key: Optional[str], const: Optional[str]
) -> Access:
    for access in spec.accesses:
        if (
            access.kind is AccessKind.READ
            and access.table == table
            and access.key_param == key
            and access.key_const == const
        ):
            return access
    raise SpecError(
        f"program {spec.name!r} has no read on {table}[{key or const}] to promote"
    )


def _read_columns(
    spec: ProgramSpec, table: str, key: Optional[str], const: Optional[str]
) -> frozenset[str]:
    try:
        return _find_read(spec, table, key, const).columns
    except SpecError:
        return frozenset()


# ----------------------------------------------------------------------
# Whole-graph variants
# ----------------------------------------------------------------------


def materialize_all(
    programs: ProgramSet, *, sfu_is_write: bool = True
) -> tuple[ProgramSet, list[Modification]]:
    """Materialize every vulnerable edge (no SDG analysis needed by the DBA).

    All edges are analyzed against the *original* graph, then every fix is
    applied; duplicate additions collapse.
    """
    sdg = StaticDependencyGraph(programs, sfu_is_write=sfu_is_write)
    updated = programs
    modifications: list[Modification] = []
    for source, target in sdg.vulnerable_edges():
        analysis = analyze_edge(
            updated[source], updated[target], sfu_is_write=sfu_is_write
        )
        if not analysis.vulnerable:
            continue  # an earlier materialization already covered this edge
        updated, mods = materialize_edge(
            updated, source, target, sfu_is_write=sfu_is_write
        )
        modifications.extend(mods)
    return updated, _dedupe(modifications)


def promote_all(
    programs: ProgramSet, *, via: PromoteVia = "update", sfu_is_write: bool = True
) -> tuple[ProgramSet, list[Modification]]:
    """Promote every vulnerable edge of the graph, to a fixpoint.

    Unlike materialization (whose ``Conflict`` writes create only
    write-write conflicts), promotion turns readers into writers, which
    can create *new* vulnerable edges from other programs that read the
    promoted items without writing them.  The loop therefore re-analyzes
    after each round until no vulnerable edge remains.  Termination: each
    round strictly grows some program's write footprint, which is bounded
    by the finite set of (program, table, key) triples; SmallBank (and
    most realistic mixes) converge in a single round.
    """
    updated = programs
    modifications: list[Modification] = []
    max_rounds = sum(len(spec.accesses) + 1 for spec in programs) + 1
    for _round in range(max_rounds):
        sdg = StaticDependencyGraph(updated, sfu_is_write=sfu_is_write)
        vulnerable = sdg.vulnerable_edges()
        if not vulnerable:
            return updated, _dedupe(modifications)
        progressed = False
        for source, target in vulnerable:
            analysis = analyze_edge(
                updated[source], updated[target], sfu_is_write=sfu_is_write
            )
            if not analysis.vulnerable:
                continue  # an earlier promotion already covered this edge
            updated, mods = promote_edge(
                updated, source, target, via=via, sfu_is_write=sfu_is_write
            )
            modifications.extend(mods)
            progressed = True
        if not progressed:  # pragma: no cover - safety net
            raise SpecError("promote_all failed to make progress")
    raise SpecError("promote_all did not converge")  # pragma: no cover


def tables_updated_by(
    original: ProgramSet, modified: ProgramSet
) -> dict[str, tuple[str, ...]]:
    """Which tables each program *newly* updates — the rows of Table I.

    Compares write/cc-write footprints program by program; read-only
    programs that became updaters show up with their new tables.
    """
    added: dict[str, tuple[str, ...]] = {}
    for name in original.names:
        before = {
            (a.table, a.key_param, a.key_const, a.kind)
            for a in original[name].writeish()
        }
        after = {
            (a.table, a.key_param, a.key_const, a.kind)
            for a in modified[name].writeish()
        }
        new_tables = sorted({table for table, _k, _c, _kind in after - before})
        if new_tables:
            added[name] = tuple(new_tables)
    return added


def _dedupe(modifications: list[Modification]) -> list[Modification]:
    seen: list[Modification] = []
    for modification in modifications:
        if modification not in seen:
            seen.append(modification)
    return seen
