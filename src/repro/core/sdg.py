"""The Static Dependency Graph: construction and dangerous structures.

The main theorem of Fekete et al. (TODS 2005), as used by the paper:

    If the SDG of an application mix has no *dangerous structure* — two
    vulnerable edges in a row, as part of a cycle — then every execution
    of the mix on an SI platform is serializable.

A :class:`StaticDependencyGraph` is built from a
:class:`~repro.core.specs.ProgramSet` by analyzing every ordered pair of
programs (self-edges included: two instances of the same program conflict
too).  :meth:`dangerous_structures` returns every pivot triple
``P -(v)-> Q -(v)-> R`` that lies on a cycle; :meth:`is_si_serializable`
is the theorem check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from repro.core.conflicts import EdgeAnalysis, analyze_edge
from repro.core.specs import ProgramSet, ProgramSpec


@dataclass(frozen=True)
class DangerousStructure:
    """Two consecutive vulnerable edges on a cycle; ``pivot`` is the middle.

    ``source`` and ``sink`` may name the same program (a two-node cycle
    with both edges vulnerable is dangerous).
    """

    source: str
    pivot: str
    sink: str

    def __str__(self) -> str:
        return f"{self.source} -(v)-> {self.pivot} -(v)-> {self.sink}"


class StaticDependencyGraph:
    """The SDG of one program mix."""

    def __init__(
        self,
        programs: ProgramSet,
        *,
        sfu_is_write: bool = True,
        column_granularity: bool = False,
    ) -> None:
        self.programs = programs
        self.sfu_is_write = sfu_is_write
        self.column_granularity = column_granularity
        self._edges: dict[tuple[str, str], EdgeAnalysis] = {}
        names = programs.names
        for source in names:
            for target in names:
                analysis = analyze_edge(
                    programs[source],
                    programs[target],
                    sfu_is_write=sfu_is_write,
                    column_granularity=column_granularity,
                )
                if analysis.exists:
                    self._edges[(source, target)] = analysis

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> tuple[str, ...]:
        return self.programs.names

    def edge(self, source: str, target: str) -> Optional[EdgeAnalysis]:
        return self._edges.get((source, target))

    def edges(self) -> Iterator[EdgeAnalysis]:
        return iter(self._edges.values())

    def has_edge(self, source: str, target: str) -> bool:
        return (source, target) in self._edges

    def is_vulnerable(self, source: str, target: str) -> bool:
        analysis = self._edges.get((source, target))
        return analysis is not None and analysis.vulnerable

    def vulnerable_edges(self) -> tuple[tuple[str, str], ...]:
        return tuple(
            key for key, analysis in sorted(self._edges.items())
            if analysis.vulnerable
        )

    def successors(self, node: str) -> tuple[str, ...]:
        return tuple(
            target for (source, target) in sorted(self._edges) if source == node
        )

    # ------------------------------------------------------------------
    # Dangerous structures / the main theorem
    # ------------------------------------------------------------------
    def _reaches(self, start: str, goal: str) -> bool:
        """Directed reachability over all edges (self-loops count)."""
        if start == goal:
            return True
        seen: set[str] = set()
        stack = [start]
        while stack:
            node = stack.pop()
            if node == goal:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self.successors(node))
        return False

    def dangerous_structures(self) -> tuple[DangerousStructure, ...]:
        """Every pivot triple of two consecutive vulnerable edges on a cycle.

        The cycle condition: after following ``source -> pivot -> sink``,
        the remaining edges of the cycle bring us from ``sink`` back to
        ``source`` (trivially satisfied when ``sink == source``).
        """
        found: list[DangerousStructure] = []
        for (source, pivot) in self.vulnerable_edges():
            for (pivot2, sink) in self.vulnerable_edges():
                if pivot2 != pivot:
                    continue
                if self._reaches(sink, source):
                    found.append(DangerousStructure(source, pivot, sink))
        return tuple(found)

    def pivots(self) -> tuple[str, ...]:
        """Programs that sit in the middle of a dangerous structure."""
        return tuple(sorted({d.pivot for d in self.dangerous_structures()}))

    def is_si_serializable(self) -> bool:
        """The TODS 2005 theorem: no dangerous structure => serializable."""
        return not self.dangerous_structures()

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Human-readable summary (the textual Figure 1/2/3)."""
        lines = [f"SDG for {self.programs.name!r}"]
        for program in self.programs:
            marker = "update" if program.is_update_program else "read-only"
            lines.append(f"  node {program.name} [{marker}]")
        for (source, target), analysis in sorted(self._edges.items()):
            style = "vulnerable" if analysis.vulnerable else "protected"
            kinds = ",".join(sorted(analysis.conflict_kinds))
            lines.append(f"  {source} -> {target} [{style}; {kinds}]")
        structures = self.dangerous_structures()
        if structures:
            lines.append("  DANGEROUS STRUCTURES:")
            lines.extend(f"    {s}" for s in structures)
        else:
            lines.append("  no dangerous structure: SI executions are serializable")
        return "\n".join(lines)

    def to_dot(self) -> str:
        """Graphviz rendering: dashed edges are vulnerable, shaded nodes
        are update programs — the conventions of the paper's figures."""
        lines = [
            "digraph SDG {",
            "  rankdir=LR;",
            '  node [shape=ellipse, style=filled, fillcolor=white];',
        ]
        for program in self.programs:
            fill = "lightgrey" if program.is_update_program else "white"
            lines.append(f'  "{program.name}" [fillcolor={fill}];')
        for (source, target), analysis in sorted(self._edges.items()):
            style = "dashed" if analysis.vulnerable else "solid"
            lines.append(f'  "{source}" -> "{target}" [style={style}];')
        lines.append("}")
        return "\n".join(lines)


def build_sdg(
    programs: "ProgramSet | Iterable[ProgramSpec]",
    *,
    sfu_is_write: bool = True,
    column_granularity: bool = False,
    name: str = "mix",
) -> StaticDependencyGraph:
    """Convenience constructor accepting a bare iterable of specs."""
    if not isinstance(programs, ProgramSet):
        programs = ProgramSet(programs, name=name)
    return StaticDependencyGraph(
        programs,
        sfu_is_write=sfu_is_write,
        column_granularity=column_granularity,
    )
