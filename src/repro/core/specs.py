"""Symbolic transaction-program specifications.

The Static Dependency Graph theory of Fekete et al. (TODS 2005) reasons
about *programs*, not executions: each program is summarized by the items
it may read and write, symbolically parameterized.  A
:class:`ProgramSpec` captures that summary:

* ``params`` — the row-identity parameters (e.g. the customer id ``x`` that
  a SmallBank program derives from its name parameter ``N``);
* ``accesses`` — declarations like "reads ``Saving[x]``" or "writes
  ``Checking[x]``".  An access can also target a *constant* row shared by
  every instance of every program (``key_const``), which models the
  "simplest approach" single-row materialization the paper mentions.

Assumption (standard for this analysis, and true of SmallBank): distinct
parameters of a *single* program instance bind distinct rows — e.g.
``Amalgamate(N1, N2)`` is called with two different customers.  Parameters
of *different* instances may coincide arbitrarily; the conflict analysis
enumerates those identification scenarios.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Iterable, Optional

from repro.errors import SpecError


class AccessKind(enum.Enum):
    READ = "r"
    WRITE = "w"
    CC_WRITE = "cw"
    """A commercial-style ``SELECT FOR UPDATE``: participates in write-write
    conflict detection, but writes no data (and forces no WAL flush)."""

    @property
    def is_writeish(self) -> bool:
        """Counts as a write for conflict/vulnerability purposes."""
        return self in (AccessKind.WRITE, AccessKind.CC_WRITE)


@dataclass(frozen=True)
class Access:
    """One symbolic item access of a program.

    Exactly one of ``key_param`` (row chosen by a parameter) or
    ``key_const`` (a fixed row, same for all instances) must be set.
    """

    kind: AccessKind
    table: str
    key_param: Optional[str] = None
    key_const: Optional[str] = None
    columns: frozenset[str] = frozenset()
    note: str = ""

    def __post_init__(self) -> None:
        if (self.key_param is None) == (self.key_const is None):
            raise SpecError(
                f"access on {self.table!r} needs exactly one of "
                "key_param / key_const"
            )

    def describe_key(self) -> str:
        return self.key_param if self.key_param is not None else f"#{self.key_const}"

    def __str__(self) -> str:
        return f"{self.kind.value}({self.table}[{self.describe_key()}])"


def read(table: str, key: str, *columns: str, note: str = "") -> Access:
    """Shorthand: ``read("Saving", "x", "Balance")``."""
    return Access(AccessKind.READ, table, key_param=key,
                  columns=frozenset(columns), note=note)


def write(table: str, key: str, *columns: str, note: str = "") -> Access:
    return Access(AccessKind.WRITE, table, key_param=key,
                  columns=frozenset(columns), note=note)


def cc_write(table: str, key: str, *columns: str, note: str = "") -> Access:
    return Access(AccessKind.CC_WRITE, table, key_param=key,
                  columns=frozenset(columns), note=note)


def read_const(table: str, const: str, *columns: str, note: str = "") -> Access:
    return Access(AccessKind.READ, table, key_const=const,
                  columns=frozenset(columns), note=note)


def write_const(table: str, const: str, *columns: str, note: str = "") -> Access:
    return Access(AccessKind.WRITE, table, key_const=const,
                  columns=frozenset(columns), note=note)


@dataclass(frozen=True)
class ProgramSpec:
    """Symbolic read/write summary of one transaction program."""

    name: str
    params: tuple[str, ...]
    accesses: tuple[Access, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if len(set(self.params)) != len(self.params):
            raise SpecError(f"duplicate parameter in program {self.name!r}")
        for access in self.accesses:
            if access.key_param is not None and access.key_param not in self.params:
                raise SpecError(
                    f"program {self.name!r}: access {access} references "
                    f"unknown parameter {access.key_param!r}"
                )

    # ------------------------------------------------------------------
    def reads(self) -> tuple[Access, ...]:
        return tuple(a for a in self.accesses if a.kind is AccessKind.READ)

    def writes(self) -> tuple[Access, ...]:
        return tuple(a for a in self.accesses if a.kind is AccessKind.WRITE)

    def writeish(self) -> tuple[Access, ...]:
        return tuple(a for a in self.accesses if a.kind.is_writeish)

    @property
    def is_read_only(self) -> bool:
        """No true writes (CC writes don't count: they flush nothing)."""
        return not self.writes()

    @property
    def is_update_program(self) -> bool:
        return bool(self.writes())

    def tables_written(self) -> frozenset[str]:
        return frozenset(a.table for a in self.writes())

    def with_access(self, *extra: Access, suffix: str = "") -> "ProgramSpec":
        """A copy with additional accesses (used by the strategy transforms).

        Duplicate declarations are dropped so that applying a strategy twice
        is idempotent.
        """
        merged = list(self.accesses)
        for access in extra:
            if access not in merged:
                merged.append(access)
        name = self.name + suffix if suffix else self.name
        return replace(self, name=name, accesses=tuple(merged))

    def replace_access(self, old: Access, new: Access) -> "ProgramSpec":
        """A copy with ``old`` swapped for ``new`` (promotion via SFU)."""
        if old not in self.accesses:
            raise SpecError(
                f"program {self.name!r} has no access {old} to replace"
            )
        accesses = tuple(new if a == old else a for a in self.accesses)
        return replace(self, accesses=accesses)

    def __str__(self) -> str:
        args = ", ".join(self.params)
        body = " ".join(str(a) for a in self.accesses)
        return f"{self.name}({args}): {body}"


class ProgramSet:
    """A named collection of program specs (one application mix)."""

    def __init__(self, programs: Iterable[ProgramSpec], name: str = "mix") -> None:
        self.name = name
        self._programs: dict[str, ProgramSpec] = {}
        for program in programs:
            if program.name in self._programs:
                raise SpecError(f"duplicate program name {program.name!r}")
            self._programs[program.name] = program

    def __iter__(self):
        return iter(self._programs.values())

    def __len__(self) -> int:
        return len(self._programs)

    def __contains__(self, name: str) -> bool:
        return name in self._programs

    def __getitem__(self, name: str) -> ProgramSpec:
        try:
            return self._programs[name]
        except KeyError:
            raise SpecError(f"unknown program {name!r}") from None

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._programs)

    def replace(self, program: ProgramSpec) -> "ProgramSet":
        """A new set with ``program`` substituted by name."""
        if program.name not in self._programs:
            raise SpecError(f"unknown program {program.name!r}")
        updated = dict(self._programs)
        updated[program.name] = program
        return ProgramSet(updated.values(), name=self.name)
