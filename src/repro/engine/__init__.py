"""The MVCC engine substrate: storage, locks, transactions, sessions.

Quick tour::

    from repro.engine import Database, EngineConfig, Session, TableSchema, Column

    schema = TableSchema(
        name="Checking",
        columns=(Column("CustomerId", "int"), Column("Balance", "numeric")),
        primary_key="CustomerId",
    )
    db = Database([schema], EngineConfig.postgres())
    db.load_row("Checking", {"CustomerId": 1, "Balance": 100})

    conn = repro.connect("local://", database=db)
    with conn.transaction("deposit") as session:
        session.update(
            "Checking", 1, lambda row: {"Balance": row["Balance"] + 10}
        )

(:func:`repro.connect` is the blessed session entry point; constructing a
:class:`Session` directly is deprecated.)
"""

from repro.engine.clock import LogicalClock
from repro.engine.config import (
    EngineConfig,
    IsolationLevel,
    SfuSemantics,
    WriteConflictPolicy,
)
from repro.engine.engine import Database, Row, WaitOn
from repro.engine.recovery import recover_database, replay_records
from repro.engine.locks import LockManager, LockMode, RowId
from repro.engine.session import (
    NoWaitWaiter,
    Session,
    ThreadedWaiter,
    Waiter,
    WouldBlock,
)
from repro.engine.storage import Catalog, Column, Table, TableSchema
from repro.engine.transaction import OWN_WRITE, Transaction, TxnStatus
from repro.engine.versions import UncommittedVersion, Version, VersionChain
from repro.engine.wal import RedoEntry, WalRecord, WriteAheadLog

__all__ = [
    "Catalog",
    "Column",
    "Database",
    "EngineConfig",
    "IsolationLevel",
    "LockManager",
    "LockMode",
    "LogicalClock",
    "NoWaitWaiter",
    "OWN_WRITE",
    "RedoEntry",
    "Row",
    "recover_database",
    "replay_records",
    "RowId",
    "Session",
    "SfuSemantics",
    "Table",
    "TableSchema",
    "ThreadedWaiter",
    "Transaction",
    "TxnStatus",
    "UncommittedVersion",
    "Version",
    "VersionChain",
    "WaitOn",
    "Waiter",
    "WalRecord",
    "WouldBlock",
    "WriteAheadLog",
    "WriteConflictPolicy",
]
