"""Logical timestamps for the MVCC engine.

Snapshot Isolation reasoning only needs a total order over "events of
interest" (transaction starts and commits).  A monotonically increasing
integer counter provides that order; wall-clock time never enters the
engine, which keeps executions deterministic and replayable.
"""

from __future__ import annotations

import itertools
import threading


class LogicalClock:
    """Thread-safe monotonic counter used for start and commit timestamps.

    Timestamps start at 1 so that 0 can serve as a "before everything"
    sentinel (the timestamp of bootstrap data loaded outside any
    transaction).
    """

    BOOTSTRAP_TS = 0

    def __init__(self) -> None:
        self._counter = itertools.count(1)
        self._lock = threading.Lock()
        self._last = 0

    def next(self) -> int:
        """Return the next timestamp (strictly greater than all before)."""
        with self._lock:
            self._last = next(self._counter)
            return self._last

    @property
    def last(self) -> int:
        """The most recently issued timestamp (0 if none issued yet)."""
        return self._last

    def peek_next(self) -> int:
        """The timestamp the next :meth:`next` call will issue.

        Used by the engine's commit protocol to *reserve* a commit
        timestamp: versions are published carrying ``peek_next()`` and only
        become visible once the covering tick is actually issued.  The
        caller must hold the engine's commit mutex so no other tick (a
        begin or another commit) can slip between the peek and the tick.
        """
        return self._last + 1

    def advance_to(self, ts: int) -> None:
        """Ensure future timestamps are strictly greater than ``ts``.

        Used by crash recovery: after replaying a WAL prefix the clock must
        not reissue any timestamp at or below the replayed horizon.
        """
        with self._lock:
            if ts > self._last:
                self._last = ts
                self._counter = itertools.count(ts + 1)
