"""Engine configuration: isolation level, conflict policy, SFU semantics.

The paper exercises two SI implementations that differ in exactly two ways:

* **Write-write conflict policy** — PostgreSQL implements *First Updater
  Wins* (a writer blocks on the row lock and aborts when the holder commits;
  a writer whose snapshot misses an already-committed newer version aborts
  immediately).  The original SI definition (Berenson et al. 1995) used
  *First Committer Wins* (conflicts detected by validation at commit time).
  Both prevent lost updates; they differ in *when* the loser learns.
* **``SELECT ... FOR UPDATE`` semantics** — on the commercial platform SFU
  "is treated for concurrency control like an Update": even after the
  SFU transaction commits, a concurrent writer of the row fails.  On
  PostgreSQL SFU only holds the row lock while the transaction is active,
  so the interleaving ``begin(T) begin(U) read-sfu(T,x) commit(T)
  write(U,x) commit(U)`` is allowed (Section II-C of the paper).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class IsolationLevel(enum.Enum):
    """Concurrency-control regime of the engine."""

    SI = "si"
    """Snapshot Isolation — the paper's subject."""

    S2PL = "s2pl"
    """Strict two-phase locking (the conventional serializable baseline)."""

    SSI = "ssi"
    """SI plus the Cahill-style serializability certifier (extension)."""


class WriteConflictPolicy(enum.Enum):
    FIRST_UPDATER_WINS = "first-updater-wins"
    FIRST_COMMITTER_WINS = "first-committer-wins"


class SfuSemantics(enum.Enum):
    LOCK_ONLY = "lock-only"
    """PostgreSQL: SFU locks the row while active; no post-commit effect."""

    CC_WRITE = "cc-write"
    """Commercial: SFU participates in write-conflict detection like an
    update, but writes nothing (no version, no WAL record)."""


@dataclass(frozen=True)
class EngineConfig:
    """Complete engine behaviour selection.

    The two platform presets used throughout the reproduction are exposed as
    :meth:`postgres` and :meth:`commercial`.

    ``lock_timeout`` bounds how long a session waits for a row lock
    (seconds — wall-clock under the threaded driver, simulated time under
    the simulator).  ``None`` (the default, matching PostgreSQL's
    ``lock_timeout = 0``) waits forever; an expired wait aborts the waiter
    with :class:`~repro.errors.LockTimeout`.

    ``stripes`` is the number of row-latch stripes the engine hashes
    ``(table, key)`` row ids onto (DESIGN.md §9).  Writers contend only
    per-stripe; SI readers take no latch at all.  The default is generous
    for the benchmark MPLs — contention on a stripe latch is already rare
    at 64 stripes and 30 clients.
    """

    isolation: IsolationLevel = IsolationLevel.SI
    write_conflict: WriteConflictPolicy = WriteConflictPolicy.FIRST_UPDATER_WINS
    sfu: SfuSemantics = SfuSemantics.LOCK_ONLY
    lock_timeout: "float | None" = None
    stripes: int = 64

    def __post_init__(self) -> None:
        if self.stripes < 1:
            raise ValueError("stripes must be at least 1")

    def with_lock_timeout(self, lock_timeout: "float | None") -> "EngineConfig":
        """This configuration with a different lock-wait timeout."""
        from dataclasses import replace

        if lock_timeout is not None and lock_timeout <= 0:
            raise ValueError("lock_timeout must be positive (or None to wait forever)")
        return replace(self, lock_timeout=lock_timeout)

    @classmethod
    def postgres(cls) -> "EngineConfig":
        """PostgreSQL 8.2-style SI: first-updater-wins, lock-only SFU."""
        return cls(
            isolation=IsolationLevel.SI,
            write_conflict=WriteConflictPolicy.FIRST_UPDATER_WINS,
            sfu=SfuSemantics.LOCK_ONLY,
        )

    @classmethod
    def commercial(cls) -> "EngineConfig":
        """Commercial-platform SI: SFU acts as a concurrency-control write."""
        return cls(
            isolation=IsolationLevel.SI,
            write_conflict=WriteConflictPolicy.FIRST_UPDATER_WINS,
            sfu=SfuSemantics.CC_WRITE,
        )

    @classmethod
    def first_committer_wins(cls) -> "EngineConfig":
        """The 1995 textbook SI variant (validation at commit)."""
        return cls(
            isolation=IsolationLevel.SI,
            write_conflict=WriteConflictPolicy.FIRST_COMMITTER_WINS,
            sfu=SfuSemantics.LOCK_ONLY,
        )

    @classmethod
    def s2pl(cls) -> "EngineConfig":
        return cls(isolation=IsolationLevel.S2PL)

    @classmethod
    def ssi(cls) -> "EngineConfig":
        return cls(isolation=IsolationLevel.SSI)
