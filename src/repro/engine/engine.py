"""The MVCC database engine.

:class:`Database` is deliberately **non-blocking**: every operation that a
real engine would block on returns a :class:`WaitOn` value naming the
transactions that must resolve first.  The session layer
(:mod:`repro.engine.session`) turns that into an actual wait — a real
thread wait, a simulated-time wait, or a value surfaced to a test that is
stepping transactions by hand.  This single design choice lets the same
engine power correctness tests, exhaustive interleaving exploration and the
performance simulator.

Concurrency-control semantics implemented here (see
:mod:`repro.engine.config` for how they are selected):

* **SI reads** never block and never lock: they see the newest version
  committed at or before the transaction's snapshot (plus own writes).
* **SI writes** take the row's exclusive lock.  Under *first-updater-wins*
  the writer aborts immediately when the newest committed version (or a
  commercial-style SFU mark) is newer than its snapshot; a writer that was
  blocked re-checks after waking, so a holder's commit kills the waiter —
  exactly PostgreSQL's behaviour.  Under *first-committer-wins* the check
  moves to commit time.
* **SELECT FOR UPDATE** takes the exclusive lock and performs the snapshot
  check; in ``CC_WRITE`` mode (the commercial platform) it additionally
  publishes a concurrency-control write at commit so that later concurrent
  writers fail, making the promoted edge non-vulnerable.
* **S2PL** takes shared locks for reads and exclusive locks for writes,
  all held to the end of the transaction; there is no snapshot.
* **SSI** layers the runtime dangerous-structure certifier over SI.

Threading model (DESIGN.md §9)
------------------------------

The engine used to serialize *every* operation behind one re-entrant
mutex.  It now uses a two-level scheme that leaves the SI read path
entirely lock-free:

* **SI/SSI reads take no lock at all.**  They traverse only structures
  that are published atomically and never mutated in place: version
  chains (append-only lists of frozen :class:`Version` objects), the
  tables' key dictionaries (CPython dict get/set are atomic under the
  GIL), copy-on-write index tuples and the sorted-key cache.  The commit
  protocol below guarantees a reader can never observe a version whose
  commit timestamp its snapshot covers *partially*.
* **A small commit mutex** (``_commit_mutex``) serializes the events that
  define the global timestamp order: ``begin`` (snapshot acquisition),
  commit validation + version publication, abort, the waits-for graph,
  and :meth:`vacuum`.
* **N stripe latches** (``config.stripes``) hash ``(table, key)`` row ids
  onto a small lock array.  They serialize lock-manager operations on a
  row (``try_acquire`` vs ``release_one``) and in-place chain mutation by
  the *owning* writer (creating the chain, staging the uncommitted
  version).  Writers therefore contend only when their rows share a
  stripe, never on a global lock.

Lock ordering: the commit mutex may be taken alone or *before* a stripe
latch (commit/abort release row locks per-stripe while holding it); a
stripe latch is never held while acquiring the commit mutex, and stripes
are never nested.

Snapshot-consistent publication: a committing transaction *reserves*
``commit_ts = clock.peek_next()`` under the commit mutex, publishes its
versions carrying that timestamp, and only then ticks the clock.  Every
snapshot in existence satisfies ``snapshot_ts <= clock.last < commit_ts``,
so the in-flight versions are invisible until the tick makes them
atomically visible; ``begin`` also runs under the commit mutex, so no new
snapshot can land between the reservation and the tick.

Group commit: the WAL record is *staged* under the commit mutex (fixing
its position in the log) but appended + flushed outside it, batched with
any records staged by commits racing right behind
(:class:`~repro.engine.wal.GroupCommitBuffer`).  ``commit`` still returns
only after the record is durable.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Hashable, Iterable, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover - avoids the obs -> analysis cycle
    from repro.obs import Observability

from repro.engine.clock import LogicalClock
from repro.engine.config import (
    EngineConfig,
    IsolationLevel,
    SfuSemantics,
    WriteConflictPolicy,
)
from repro.engine.locks import LockManager, LockMode, RowId
from repro.engine.ssi import SsiCertifier
from repro.engine.storage import Catalog, Table, TableSchema
from repro.engine.transaction import OWN_WRITE, Transaction, TxnStatus
from repro.engine.versions import UncommittedVersion, Version, freeze_row
from repro.engine.wal import GroupCommitBuffer, WalRecord, WriteAheadLog
from repro.errors import (
    DatabaseCrashed,
    FaultInjected,
    IntegrityError,
    SerializationFailure,
    SsiAbort,
    TransactionStateError,
)
from repro.faults import FaultPlan

Row = Mapping[str, object]

_ACTIVE = TxnStatus.ACTIVE


@dataclass(frozen=True)
class WaitOn:
    """Returned when an operation must wait for other transactions.

    ``blockers`` is non-empty and contains only transactions that were
    active at the time of the call.  The caller should wait for *any* of
    them to resolve and then retry the operation.
    """

    blockers: frozenset[Transaction]

    def __post_init__(self) -> None:
        if not self.blockers:
            raise ValueError("WaitOn requires at least one blocker")

    @property
    def blocker_ids(self) -> frozenset[int]:
        return frozenset(t.txid for t in self.blockers)


class Database:
    """An in-memory multi-version database engine.

    Parameters
    ----------
    schemas:
        Table schemas making up the database.
    config:
        Concurrency-control behaviour (default: PostgreSQL-style SI).
    observers:
        Optional callables invoked as ``observer(txn)`` after every commit
        and abort — the hook used by the dynamic-analysis recorder.
    faults:
        Optional :class:`~repro.faults.FaultPlan`.  With none installed
        (the default) every injection hook is a no-op.
    """

    def __init__(
        self,
        schemas: Iterable[TableSchema],
        config: Optional[EngineConfig] = None,
        observers: Optional[
            list[Callable[[Transaction], None]]
        ] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self.config = config or EngineConfig.postgres()
        self.catalog = Catalog(list(schemas))
        self.clock = LogicalClock()
        self.locks = LockManager(lock_timeout=self.config.lock_timeout)
        self.wal = WriteAheadLog()
        self.faults = faults
        # Serializes begin / commit / abort / waits-for-graph mutation —
        # everything that defines the global timestamp order.  Re-entrant
        # because abort paths nest inside commit paths.
        self._commit_mutex = threading.RLock()
        # Row-latch stripes: hash((table, key)) picks one.  See the module
        # docstring for the lock ordering rules.
        self._nstripes = self.config.stripes
        self._stripes = tuple(threading.Lock() for _ in range(self._nstripes))
        self._group_commit = GroupCommitBuffer()
        # Hot-path accelerators: the isolation test and the table lookup
        # run on every read, so resolve them to one attribute/dict probe.
        # _table_map aliases the catalog's own (mutable) mapping, so tables
        # added later are seen here too.
        self._s2pl = self.config.isolation is IsolationLevel.S2PL
        self._table_map = self.catalog._tables
        self._active: dict[int, Transaction] = {}
        self._observers = list(observers or [])
        self._ssi = SsiCertifier() if self.config.isolation is IsolationLevel.SSI else None
        # Observability bundle (DESIGN.md §10).  ``None`` by default: every
        # hook below is then a single attribute-load + ``is not None``
        # check, the same zero-overhead discipline as ``faults``.
        self._obs: "Observability | None" = None
        self._txid_counter = 0
        self._crashed = False
        # Bootstrap rows double as the recovery checkpoint: load_row data
        # is "already on disk" and survives crashes without a WAL record.
        self._bootstrap: list[tuple[str, dict[str, object]]] = []
        # Two-phase-commit participant state (DESIGN.md §12) -------------
        #: Live prepared transactions by global transaction id.  A
        #: prepared transaction also stays in ``_active`` (it pins the
        #: vacuum horizon and counts as concurrent for the SSI certifier)
        #: but no session owns it any more: only a coordinator decision
        #: can resolve it.
        self._prepared: dict[str, Transaction] = {}
        #: Redo payloads of prepare records that survived a crash with no
        #: decision on the log — in-doubt until the coordinator re-delivers
        #: its decision (presumed abort: an ABORT_2PC needs no durable
        #: trace).  Populated by :mod:`repro.engine.recovery`.
        self._in_doubt: dict[str, WalRecord] = {}
        #: Decided gtids -> ("committed", commit_ts) | ("aborted", 0), for
        #: idempotent decision re-delivery (a coordinator may retry after
        #: a timeout and must get the same answer).
        self._resolved_gtids: dict[str, tuple[str, int]] = {}

    def _stripe(self, row_id: RowId) -> threading.Lock:
        return self._stripes[hash(row_id) % self._nstripes]

    # ------------------------------------------------------------------
    # Bootstrap loading (outside any transaction)
    # ------------------------------------------------------------------
    def load_row(self, table_name: str, row: Row) -> None:
        """Install a row as pre-existing data (commit timestamp 0).

        Only valid before any transaction has committed to the same key.
        Used by benchmark population so that loading cost never pollutes
        measurements.
        """
        with self._commit_mutex:
            self._ensure_not_crashed()
            table = self.catalog.table(table_name)
            value = table.schema.validate_row(row)
            key = value[table.schema.primary_key]
            chain = table.chain_or_create(key)
            if len(chain) > 0:
                raise IntegrityError(
                    f"row {key!r} already exists in {table_name!r}"
                )
            version = Version(
                commit_ts=LogicalClock.BOOTSTRAP_TS, txid=0, value=freeze_row(value)
            )
            chain.append_committed(version)
            table.index_committed_version(key, version)
            self._bootstrap.append((table_name, dict(value)))

    def add_observer(self, observer: Callable[[Transaction], None]) -> None:
        self._observers.append(observer)

    def install_faults(self, plan: "FaultPlan | None") -> None:
        """Install (or clear) the fault-injection plan."""
        with self._commit_mutex:
            self.faults = plan

    def install_observability(self, obs: "Observability | None") -> None:
        """Install (or clear) the observability bundle.

        With none installed (the default) every trace/metrics hook is a
        no-op ``None`` check and measured figures stay bit-identical.
        """
        with self._commit_mutex:
            self._obs = obs

    @property
    def obs(self) -> "Observability | None":
        return self._obs

    def observe_version_stats(self) -> None:
        """Sample version-chain length gauges into the installed registry.

        Cheap enough to call at the end of a run (the drivers do); a no-op
        without an installed :class:`~repro.obs.Observability`.
        """
        obs = self._obs
        if obs is None:
            return
        with self._commit_mutex:
            lengths = [
                len(chain._committed)
                for table in self.catalog
                for chain in table.rows.values()
            ]
        obs.engine_version_stats(lengths)

    # ------------------------------------------------------------------
    # Crash / recovery
    # ------------------------------------------------------------------
    @property
    def is_crashed(self) -> bool:
        return self._crashed

    def crash(self) -> None:
        """Simulate a power failure.

        All in-memory state is lost: active transactions vanish (their
        locks and uncommitted versions are irrelevant — nothing of them
        was durable), and the WAL's unflushed tail is discarded.  Every
        subsequent operation raises :class:`~repro.errors.DatabaseCrashed`
        until :meth:`recover` produces a fresh instance.
        """
        with self._commit_mutex:
            self._crash_locked()

    def _crash_locked(self) -> None:
        self._crashed = True
        # Threads blocked on a lock held by one of these transactions are
        # sleeping until its resolution callbacks fire.  The crash
        # vaporizes the transaction, so mark it aborted and fire the
        # callbacks here — woken waiters retry their operation and
        # surface DatabaseCrashed instead of sleeping forever.
        casualties = list(self._active.values()) + list(
            self._prepared.values()
        )
        self._active.clear()
        # Prepared transactions lose their in-memory state like everyone
        # else; their durable prepare records make them in-doubt on the
        # *recovered* instance (recovery re-populates _in_doubt there).
        self._prepared.clear()
        self._resolved_gtids.clear()
        self._in_doubt.clear()
        for txn in casualties:
            txn.status = TxnStatus.ABORTED
            for callback in txn.drain_callbacks():
                callback(txn)
        # Records staged for group commit were never flushed: spill them
        # into the volatile tail so the truncation below discards them —
        # their committers learn the commit was lost when their sync sees
        # the record gone (GroupCommitBuffer.sync raises DatabaseCrashed).
        self._group_commit.spill_unflushed(self.wal)
        self.wal.truncate_to_flushed()

    def recover(self) -> "Database":
        """Rebuild a fresh :class:`Database` from the durable state.

        Durable state = the bootstrap rows (the checkpoint image) plus the
        flushed WAL prefix.  The recovered instance carries the same
        configuration, observers and fault plan.  Callable on a live
        instance too (point-in-time clone of the durable state).
        """
        from repro.engine.recovery import recover_database

        return recover_database(self)

    def _ensure_not_crashed(self) -> None:
        if self._crashed:
            raise DatabaseCrashed(
                "database has crashed; call recover() to rebuild from the WAL"
            )

    # ------------------------------------------------------------------
    # Transaction lifecycle
    # ------------------------------------------------------------------
    def begin(self, label: str = "") -> Transaction:
        with self._commit_mutex:
            self._ensure_not_crashed()
            self._txid_counter += 1
            txn = Transaction(
                self._txid_counter, self.clock.next(), label=label
            )
            self._active[txn.txid] = txn
            if self._ssi is not None:
                self._ssi.on_begin(txn)
            if self._obs is not None:
                self._obs.engine_begin(txn)
            return txn

    @property
    def active_transactions(self) -> tuple[Transaction, ...]:
        with self._commit_mutex:
            return tuple(self._active.values())

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def read(
        self, txn: Transaction, table_name: str, key: Hashable
    ) -> "Row | None | WaitOn":
        """Read one row by primary key.

        Under SI this never blocks *and takes no lock*: the body below is
        the engine's hottest path and touches only atomically-published
        immutable state (see the module docstring).  It is deliberately
        flat — the per-read cost budget is well under a microsecond.
        Under S2PL it may return :class:`WaitOn` when the shared lock
        conflicts with a writer.
        """
        if self._s2pl:
            return self._read_s2pl(txn, table_name, key)
        if self._crashed:
            self._ensure_not_crashed()
        if txn.status is not _ACTIVE:
            txn.ensure_active()
        ssi = self._ssi
        if ssi is not None and ssi.is_doomed(txn):
            self._check_doomed(txn)
        row_id = (table_name, key)
        reads = txn.reads
        writes = txn.writes
        if row_id in writes:
            if row_id not in reads:
                reads[row_id] = OWN_WRITE
            return writes[row_id]
        table = self._table_map.get(table_name)
        if table is None:
            self.catalog.table(table_name)  # raises SchemaError
        chain = table.rows.get(key)
        # Inlined VersionChain.visible(): newest committed version at or
        # below the snapshot.  _committed is append-only and replaced (not
        # mutated) by vacuum, so iterating it lock-free is safe; a
        # tombstone's value is None, which doubles as "row absent".
        value = None
        version_ts = 0
        if chain is not None:
            snapshot_ts = txn.snapshot_ts
            for version in reversed(chain._committed):
                if version.commit_ts <= snapshot_ts:
                    value = version.value
                    version_ts = version.commit_ts
                    break
        if row_id not in reads:
            reads[row_id] = version_ts
        if ssi is not None:
            ssi.on_read(txn, row_id, self)
        obs = self._obs
        if obs is not None:
            obs.engine_read(txn, row_id, version_ts)
        return value

    def _read_s2pl(
        self, txn: Transaction, table_name: str, key: Hashable
    ) -> "Row | None | WaitOn":
        """S2PL read: share-lock the row (per-stripe), read latest."""
        self._ensure_not_crashed()
        txn.ensure_active()
        table = self.catalog.table(table_name)
        row_id: RowId = (table_name, key)
        while True:
            with self._stripe(row_id):
                blockers = self.locks.try_acquire(
                    txn.txid, row_id, LockMode.SHARED
                )
            if not blockers:
                return self._read_latest(txn, table, row_id)
            wait = self._wait_on(blockers)
            if wait is not None:
                return wait
            # Every blocker resolved between the failed acquire and the
            # lookup: just retry the acquire.

    def lookup_unique(
        self, txn: Transaction, table_name: str, column: str, value: Hashable
    ) -> "tuple[Hashable, Row] | None | WaitOn":
        """Find the row whose unique ``column`` equals ``value``.

        Records a predicate read (the lookup's result set may be changed by
        concurrent inserts/deletes — a phantom source).  Under S2PL the
        matched row is share-locked.  Lock-free under SI: the superset
        index is a copy-on-write tuple per value.
        """
        self._ensure_not_crashed()
        txn.ensure_active()
        self._check_doomed(txn)
        table = self.catalog.table(table_name)
        snapshot = self._read_horizon(txn)
        found = table.lookup_unique(column, value, snapshot)
        txn.record_predicate(
            table_name,
            f"{column} = {value!r}",
            (found[0],) if found else (),
        )
        if found is None:
            return None
        key, _ = found
        result = self.read(txn, table_name, key)
        if isinstance(result, WaitOn) or result is None:
            return result
        return key, result

    def scan(
        self,
        txn: Transaction,
        table_name: str,
        predicate: Optional[Callable[[Row], bool]] = None,
        description: str = "<scan>",
    ) -> "list[tuple[Hashable, Row]] | WaitOn":
        """Predicate scan over visible rows.

        Under S2PL every matched row is share-locked (predicate locking
        itself is not modelled; the workloads here never insert during a
        measurement run, which the analysis layer checks).  Key order
        comes from the table's sorted-key cache instead of re-sorting on
        every call.
        """
        self._ensure_not_crashed()
        txn.ensure_active()
        self._check_doomed(txn)
        table = self.catalog.table(table_name)
        s2pl = self._s2pl
        while True:
            snapshot = self._read_horizon(txn)
            keys: "tuple[Hashable, ...] | list[Hashable]" = table.sorted_keys()
            # Own writes always have a chain (write() creates it), so the
            # cache already covers them; the guard below only fires if that
            # invariant is ever broken.
            extra = [
                k
                for tn, k in txn.writes
                if tn == table_name and k not in table.rows
            ]
            if extra:
                keys = sorted([*keys, *extra], key=repr)
            matches: list[tuple[Hashable, Row]] = []
            for key in keys:
                row_id = (table_name, key)
                if row_id in txn.writes:
                    merged = txn.writes[row_id]
                else:
                    merged = table.visible_row(key, snapshot)
                if merged is None:
                    continue
                if predicate is not None and not predicate(merged):
                    continue
                matches.append((key, merged))
            if not s2pl:
                break
            blocker_ids: set[int] = set()
            for key, _ in matches:
                row_id = (table_name, key)
                with self._stripe(row_id):
                    conflict = self.locks.try_acquire(
                        txn.txid, row_id, LockMode.SHARED
                    )
                blocker_ids.update(conflict)
            if not blocker_ids:
                break
            wait = self._wait_on(frozenset(blocker_ids))
            if wait is not None:
                return wait
            # All blockers resolved already: rescan (their commits may have
            # changed the match set) and re-attempt the locks.
        txn.record_predicate(
            table_name, description, tuple(key for key, _ in matches)
        )
        for key, _ in matches:
            self._record_item_read(txn, table, (table_name, key))
        return matches

    def select_for_update(
        self, txn: Transaction, table_name: str, key: Hashable
    ) -> "Row | None | WaitOn":
        """``SELECT ... FOR UPDATE`` with platform-dependent semantics.

        Both flavours take the exclusive row lock and fail (first-updater
        style) when the snapshot no longer reflects the newest committed
        state.  In ``CC_WRITE`` mode the row is additionally added to the
        transaction's concurrency-control write set.
        """
        self._ensure_not_crashed()
        txn.ensure_active()
        self._check_doomed(txn)
        table = self.catalog.table(table_name)
        row_id: RowId = (table_name, key)
        while True:
            with self._stripe(row_id):
                blockers = self.locks.try_acquire(
                    txn.txid, row_id, LockMode.EXCLUSIVE
                )
            if not blockers:
                break
            wait = self._wait_on(blockers)
            if wait is not None:
                return wait
        # Holding the exclusive lock pins the chain tip and the SFU mark:
        # any competing writer must first get this lock, and a committer
        # publishes before releasing it.
        if self.config.isolation is not IsolationLevel.S2PL:
            self._check_write_conflict(txn, table, key, row_id)
        txn.sfu_rows.add(row_id)
        if self.config.sfu is SfuSemantics.CC_WRITE:
            txn.cc_writes.add(row_id)
        if self.config.isolation is IsolationLevel.S2PL:
            return self._read_latest(txn, table, row_id)
        return self._read_snapshot(txn, table, row_id)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def write(
        self,
        txn: Transaction,
        table_name: str,
        key: Hashable,
        value: Optional[Row],
    ) -> "None | WaitOn":
        """Stage a full-row write (``value=None`` deletes).

        Returns ``WaitOn`` when blocked behind another writer; raises
        :class:`SerializationFailure` on a first-updater-wins conflict.
        The value becomes visible to other transactions only at commit.
        Writers synchronize per-stripe — two writers contend only when
        their rows hash to the same stripe.
        """
        self._ensure_not_crashed()
        txn.ensure_active()
        self._check_doomed(txn)
        table = self.catalog.table(table_name)
        if value is not None:
            value = table.schema.validate_row(value)
            if value[table.schema.primary_key] != key:
                raise IntegrityError(
                    f"row primary key {value[table.schema.primary_key]!r} "
                    f"does not match write target {key!r}"
                )
        row_id: RowId = (table_name, key)
        stripe = self._stripe(row_id)
        while True:
            with stripe:
                blockers = self.locks.try_acquire(
                    txn.txid, row_id, LockMode.EXCLUSIVE
                )
            if not blockers:
                break
            wait = self._wait_on(blockers)
            if wait is not None:
                return wait
        if self.config.isolation is not IsolationLevel.S2PL:
            if self.config.write_conflict is WriteConflictPolicy.FIRST_UPDATER_WINS:
                # The exclusive lock pins the chain tip (see the commit
                # protocol), so this check is race-free without the mutex.
                self._check_write_conflict(txn, table, key, row_id)
        frozen = freeze_row(value)
        with stripe:
            chain = table.chain_or_create(key)
            chain.uncommitted = UncommittedVersion(txn.txid, frozen)
        txn.record_write(row_id, frozen)
        if self._obs is not None:
            self._obs.engine_write(txn, row_id)
        if self._ssi is not None:
            self._ssi.on_write(txn, row_id)
            self._check_doomed(txn)
        return None

    def insert(
        self, txn: Transaction, table_name: str, value: Row
    ) -> "None | WaitOn":
        """Insert a new row; duplicate (visible) keys raise IntegrityError."""
        self._ensure_not_crashed()
        txn.ensure_active()
        table = self.catalog.table(table_name)
        value = table.schema.validate_row(value)
        key = value[table.schema.primary_key]
        row_id: RowId = (table_name, key)
        existing = self._apply_own_write(
            txn, row_id, table.visible_row(key, self._read_horizon(txn))
        )
        if existing is not None:
            raise IntegrityError(
                f"duplicate primary key {key!r} in {table_name!r}"
            )
        return self.write(txn, table_name, key, value)

    def delete(
        self, txn: Transaction, table_name: str, key: Hashable
    ) -> "None | WaitOn":
        return self.write(txn, table_name, key, None)

    # ------------------------------------------------------------------
    # Commit / abort
    # ------------------------------------------------------------------
    def commit(self, txn: Transaction) -> None:
        """Commit ``txn``: validate, publish versions, release locks.

        Raises :class:`SerializationFailure` (after aborting the
        transaction) when first-committer-wins validation or the SSI
        certifier rejects it.

        The critical section covers validation, timestamping and version
        publication only; the WAL append + flush happen *after* the commit
        mutex is released, batched by :class:`GroupCommitBuffer` (the
        record's log position is fixed by staging it under the mutex).
        ``commit`` returns only once the record is durable.
        """
        callbacks: list[Callable[[Transaction], None]]
        record: Optional[WalRecord] = None
        obs = self._obs
        commit_started = obs.now() if obs is not None else 0.0
        with self._commit_mutex:
            self._ensure_not_crashed()
            txn.ensure_active()
            if self.faults is not None and self.faults.should_fire("abort-at-commit"):
                self._abort_locked(txn, reason="fault")
                callbacks = txn.drain_callbacks()
                self._fire(callbacks, txn)
                raise FaultInjected(
                    f"txn {txn.txid} ({txn.label}) aborted at commit by fault plan"
                )
            if self._ssi is not None and self._ssi.is_doomed(txn):
                self._abort_locked(txn, reason="ssi")
                callbacks = txn.drain_callbacks()
                self._fire(callbacks, txn)
                raise SsiAbort(
                    f"txn {txn.txid} ({txn.label}) is an SSI pivot"
                )
            if self.config.write_conflict is WriteConflictPolicy.FIRST_COMMITTER_WINS:
                conflict = self._first_committer_conflict(txn)
                if conflict is not None:
                    self._abort_locked(txn, reason="serialization")
                    callbacks = txn.drain_callbacks()
                    self._fire(callbacks, txn)
                    raise SerializationFailure(conflict)
            # Reserve the commit timestamp without ticking the clock yet:
            # every live snapshot has snapshot_ts <= clock.last < commit_ts,
            # so the versions published below stay invisible until the tick.
            commit_ts = self.clock.peek_next()
            if txn.writes:
                # Validate every unique constraint BEFORE publishing
                # anything: a violation must leave no versions behind (and
                # consume no timestamp).  ``staged`` lets validation see the
                # transaction's own writes to other rows.
                staged_by_table: dict[
                    str, dict[Hashable, Optional[Row]]
                ] = {}
                for (tn, k), v in txn.writes.items():
                    staged_by_table.setdefault(tn, {})[k] = v
                for row_id in txn.write_order:
                    tn, key = row_id
                    self.catalog.table(tn).check_unique_on_commit(
                        key, txn.writes[row_id], commit_ts,
                        staged=staged_by_table[tn],
                    )
            txn.commit_ts = commit_ts
            for row_id in txn.write_order:
                table_name, key = row_id
                table = self.catalog.table(table_name)
                value = txn.writes[row_id]
                chain = table.chain_or_create(key)
                version = Version(commit_ts=commit_ts, txid=txn.txid, value=value)
                chain.append_committed(version)
                if chain.uncommitted is not None and chain.uncommitted.txid == txn.txid:
                    chain.uncommitted = None
                table.index_committed_version(key, version)
            for table_name, key in txn.cc_writes:
                table = self.catalog.table(table_name)
                table.cc_write_ts[key] = commit_ts
            issued = self.clock.next()  # the tick that makes it all visible
            assert issued == commit_ts, "commit tick raced the reservation"
            if txn.writes:
                record = WalRecord(
                    commit_ts=commit_ts,
                    txid=txn.txid,
                    label=txn.label,
                    rows=tuple(txn.write_order),
                    redo=tuple(
                        (row_id, txn.writes[row_id])
                        for row_id in txn.write_order
                    ),
                )
                self._group_commit.stage(record)
                if obs is not None:
                    obs.engine_wal_stage(txn, record)
                if self.faults is not None and self.faults.should_fire(
                    "crash-mid-commit"
                ):
                    # Power fails after the record is staged but before the
                    # flush: the commit is NOT durable and must vanish on
                    # recovery, even though versions were already published
                    # in (now lost) memory.  _crash_locked spills the staged
                    # records into the volatile tail and truncates it away.
                    self._crash_locked()
                    raise DatabaseCrashed(
                        f"crash injected during commit of txn {txn.txid} "
                        f"({txn.label}): WAL record staged but not flushed"
                    )
            txn.status = TxnStatus.COMMITTED
            self._active.pop(txn.txid, None)
            self._release_locks(txn.txid)
            if self._ssi is not None:
                self._ssi.on_resolve(txn, self._active.values())
            callbacks = txn.drain_callbacks()
        try:
            if record is not None:
                # Durability point: batch-flush outside the critical
                # section.  Raises DatabaseCrashed if a concurrent injected
                # crash discarded the staged record — the commit was lost.
                if obs is not None:
                    flush_started = obs.now()
                    batch = self._group_commit.sync(self.wal, record)
                    obs.engine_wal_flush(
                        txn, batch, obs.now() - flush_started
                    )
                else:
                    self._group_commit.sync(self.wal, record)
            if obs is not None:
                obs.engine_commit(txn, obs.now() - commit_started)
        finally:
            self._fire(callbacks, txn)

    def abort(self, txn: Transaction, *, reason: str = "user") -> None:
        """Abort ``txn``: drop uncommitted versions, release locks.

        ``reason`` is the trace/metrics tag; the engine's internal abort
        sites pass their own ("serialization", "deadlock", "ssi", "fault",
        ...), the session layer passes "lock-timeout" for expired waits,
        and driver-initiated rollbacks keep the default "user".
        """
        with self._commit_mutex:
            if txn.status is not TxnStatus.ACTIVE:
                return
            self._abort_locked(txn, reason=reason)
            callbacks = txn.drain_callbacks()
        self._fire(callbacks, txn)

    def _abort_locked(self, txn: Transaction, *, reason: str = "user") -> None:
        # The aborting transaction still holds its row locks, so nobody
        # else can be staging an uncommitted version on these chains; the
        # clear is an atomic store that lock-free readers simply never
        # look at (readers only traverse committed versions).
        for row_id in txn.write_order:
            table_name, key = row_id
            chain = self.catalog.table(table_name).chain(key)
            if (
                chain is not None
                and chain.uncommitted is not None
                and chain.uncommitted.txid == txn.txid
            ):
                chain.uncommitted = None
        txn.status = TxnStatus.ABORTED
        self._active.pop(txn.txid, None)
        self._release_locks(txn.txid)
        if self._ssi is not None:
            self._ssi.on_resolve(txn, self._active.values())
        if self._obs is not None:
            self._obs.engine_abort(txn, reason)

    # ------------------------------------------------------------------
    # Two-phase commit (participant side, presumed abort — DESIGN.md §12)
    # ------------------------------------------------------------------
    def prepare_commit(self, txn: Transaction, gtid: str) -> None:
        """Phase one: validate ``txn`` and durably log its YES vote.

        Runs the *validation* half of :meth:`commit` (SSI doom,
        first-committer-wins, unique constraints) and, if it passes,
        moves the transaction to ``PREPARED``: its write set is appended
        to the WAL as a ``prepare`` record under ``gtid`` and flushed
        before this method returns — the durability point of the vote.
        Nothing is published: the transaction keeps all its row locks and
        stays invisible (and in ``_active``, pinning the vacuum horizon)
        until the coordinator delivers a decision via
        :meth:`commit_prepared` / :meth:`abort_prepared`.

        Validation failures abort the transaction and raise exactly as
        :meth:`commit` would — that *is* the NO vote.  A crash after the
        flush leaves the prepare on the durable log with no decision;
        recovery stashes it as in-doubt and presumed abort means the
        coordinator (who never got our YES, or aborted globally) need do
        nothing for it to stay dead.

        Unique-constraint validation runs at prepare time against the
        then-current committed state; the held exclusive locks freeze the
        transaction's *own* rows until the decision, but an unrelated
        insert may commit a conflicting unique value in the prepare→decide
        window.  The SmallBank workloads never insert during a run, so the
        window is acceptable for this reproduction (and documented).
        """
        with self._commit_mutex:
            self._ensure_not_crashed()
            txn.ensure_active()
            if (
                gtid in self._prepared
                or gtid in self._in_doubt
                or gtid in self._resolved_gtids
            ):
                raise TransactionStateError(
                    f"global transaction id {gtid!r} is already in use"
                )
            if self._ssi is not None and self._ssi.is_doomed(txn):
                self._abort_locked(txn, reason="ssi")
                callbacks = txn.drain_callbacks()
                self._fire(callbacks, txn)
                raise SsiAbort(
                    f"txn {txn.txid} ({txn.label}) is an SSI pivot"
                )
            if self.config.write_conflict is WriteConflictPolicy.FIRST_COMMITTER_WINS:
                conflict = self._first_committer_conflict(txn)
                if conflict is not None:
                    self._abort_locked(txn, reason="serialization")
                    callbacks = txn.drain_callbacks()
                    self._fire(callbacks, txn)
                    raise SerializationFailure(conflict)
            if txn.writes:
                staged_by_table: dict[
                    str, dict[Hashable, Optional[Row]]
                ] = {}
                for (tn, k), v in txn.writes.items():
                    staged_by_table.setdefault(tn, {})[k] = v
                probe_ts = self.clock.peek_next()
                for row_id in txn.write_order:
                    tn, key = row_id
                    self.catalog.table(tn).check_unique_on_commit(
                        key, txn.writes[row_id], probe_ts,
                        staged=staged_by_table[tn],
                    )
            record = WalRecord(
                commit_ts=0,  # no timestamp until the decision
                txid=txn.txid,
                label=txn.label,
                rows=tuple(txn.write_order),
                redo=tuple(
                    (row_id, txn.writes[row_id])
                    for row_id in txn.write_order
                ),
                kind="prepare",
                gtid=gtid,
            )
            txn.status = TxnStatus.PREPARED
            txn.gtid = gtid
            self._prepared[gtid] = txn
            # Deliberately NOT drained: resolution callbacks (lock waiters)
            # stay queued — the locks are still held.  The txn also stays
            # in _active so vacuum and the SSI certifier keep seeing it.
            if self._obs is not None:
                self._obs.engine_wal_stage(txn, record)
        # Durability point of the YES vote: the prepare record must be on
        # stable storage before the coordinator may count the vote.
        self._group_commit.append_durable(self.wal, record)

    def commit_prepared(self, gtid: str) -> int:
        """Phase two, commit decision: publish and timestamp ``gtid``.

        Two paths: a *live* prepared transaction (normal operation)
        publishes its staged versions exactly like :meth:`commit`; an
        *in-doubt* prepare record (re-delivered decision after a crash —
        the participant recovery hook) replays the record's redo payload.
        Either way a small ``commit-2pc`` decision record (no redo) is
        made durable and the gtid is remembered so re-delivery is
        idempotent.  Returns this shard's commit timestamp.
        """
        callbacks: list[Callable[[Transaction], None]] = []
        txn: Optional[Transaction] = None
        obs = self._obs
        commit_started = obs.now() if obs is not None else 0.0
        with self._commit_mutex:
            self._ensure_not_crashed()
            decided = self._resolved_gtids.get(gtid)
            if decided is not None:
                outcome, decided_ts = decided
                if outcome == "committed":
                    return decided_ts
                raise TransactionStateError(
                    f"global transaction {gtid!r} was already aborted"
                )
            txn = self._prepared.pop(gtid, None)
            commit_ts = self.clock.peek_next()
            if txn is not None:
                txn.commit_ts = commit_ts
                for row_id in txn.write_order:
                    table_name, key = row_id
                    table = self.catalog.table(table_name)
                    value = txn.writes[row_id]
                    chain = table.chain_or_create(key)
                    version = Version(
                        commit_ts=commit_ts, txid=txn.txid, value=value
                    )
                    chain.append_committed(version)
                    if (
                        chain.uncommitted is not None
                        and chain.uncommitted.txid == txn.txid
                    ):
                        chain.uncommitted = None
                    table.index_committed_version(key, version)
                for table_name, key in txn.cc_writes:
                    table = self.catalog.table(table_name)
                    table.cc_write_ts[key] = commit_ts
                record = WalRecord(
                    commit_ts=commit_ts,
                    txid=txn.txid,
                    label=txn.label,
                    rows=(),
                    redo=(),
                    kind="commit-2pc",
                    gtid=gtid,
                )
            else:
                stash = self._in_doubt.pop(gtid, None)
                if stash is None:
                    raise TransactionStateError(
                        f"no prepared transaction for gtid {gtid!r}"
                    )
                # Recovery hook: the prepare survived a crash; apply its
                # redo payload at a fresh timestamp on this (recovered)
                # instance — same effect the live publish would have had.
                for row_id, value in stash.redo:
                    table_name, key = row_id
                    table = self.catalog.table(table_name)
                    frozen = freeze_row(value)
                    version = Version(
                        commit_ts=commit_ts, txid=stash.txid, value=frozen
                    )
                    chain = table.chain_or_create(key)
                    chain.append_committed(version)
                    table.index_committed_version(key, version)
                record = WalRecord(
                    commit_ts=commit_ts,
                    txid=stash.txid,
                    label=stash.label,
                    rows=(),
                    redo=(),
                    kind="commit-2pc",
                    gtid=gtid,
                )
            issued = self.clock.next()  # the tick that makes it visible
            assert issued == commit_ts, "commit tick raced the reservation"
            self._group_commit.stage(record)
            self._resolved_gtids[gtid] = ("committed", commit_ts)
            if txn is not None:
                if obs is not None:
                    obs.engine_wal_stage(txn, record)
                txn.status = TxnStatus.COMMITTED
                self._active.pop(txn.txid, None)
                self._release_locks(txn.txid)
                if self._ssi is not None:
                    self._ssi.on_resolve(txn, self._active.values())
                callbacks = txn.drain_callbacks()
        try:
            # Durability point of the decision.  Presumed abort makes this
            # record tiny — no redo, just (gtid, commit_ts).
            if obs is not None and txn is not None:
                flush_started = obs.now()
                batch = self._group_commit.sync(self.wal, record)
                obs.engine_wal_flush(txn, batch, obs.now() - flush_started)
                obs.engine_commit(txn, obs.now() - commit_started)
            else:
                self._group_commit.sync(self.wal, record)
        finally:
            if txn is not None:
                self._fire(callbacks, txn)
        return commit_ts

    def abort_prepared(self, gtid: str) -> None:
        """Phase two, abort decision (or presumed-abort re-delivery).

        Rolls back a live prepared transaction, or discards an in-doubt
        stash entry after recovery.  *No WAL record is written* — under
        presumed abort, a prepare with no decision on the log already
        reads as aborted, so the abort decision needs no durable trace.
        Idempotent for already-aborted gtids — including gtids this
        participant never prepared at all: an unknown gtid's prepare may
        have died with a crashed connection before the vote, and the
        coordinator's abort broadcast must still land as a harmless no-op
        (the presumed-abort contract).  Only contradicting a recorded
        commit is an error.
        """
        callbacks: list[Callable[[Transaction], None]] = []
        txn: Optional[Transaction] = None
        with self._commit_mutex:
            self._ensure_not_crashed()
            decided = self._resolved_gtids.get(gtid)
            if decided is not None:
                if decided[0] == "aborted":
                    return
                raise TransactionStateError(
                    f"global transaction {gtid!r} was already committed"
                )
            txn = self._prepared.pop(gtid, None)
            if txn is None:
                self._in_doubt.pop(gtid, None)
            else:
                self._abort_locked(txn, reason="2pc-abort")
                callbacks = txn.drain_callbacks()
            self._resolved_gtids[gtid] = ("aborted", 0)
        if txn is not None:
            self._fire(callbacks, txn)

    @property
    def recovered_in_doubt(self) -> tuple[str, ...]:
        """Gtids of prepare records recovered with no decision, sorted.

        The coordinator's recovery pass resolves these by re-delivering
        its logged decision (:meth:`commit_prepared`) or relying on
        presumed abort (:meth:`abort_prepared` / doing nothing).
        """
        with self._commit_mutex:
            return tuple(sorted(self._in_doubt))

    @property
    def prepared_gtids(self) -> tuple[str, ...]:
        """Gtids of live prepared transactions, sorted (for stats/tests)."""
        with self._commit_mutex:
            return tuple(sorted(self._prepared))

    def _release_locks(self, txid: int) -> None:
        """Release all row locks per-stripe (commit mutex held).

        Each row's release happens under its stripe latch so a concurrent
        ``try_acquire`` on another thread observes either the held or the
        fully-released entry, never a partial state.
        """
        for row in sorted(self.locks.rows_held_by(txid), key=repr):
            with self._stripe(row):
                self.locks.release_one(txid, row)
        self.locks.finish_release(txid)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def vacuum(self) -> int:
        """Prune version-chain history no live snapshot can still see.

        Keeps, for every chain, the newest version at or below the oldest
        active snapshot (that version is exactly what such a snapshot
        reads) plus everything newer; returns the number of versions
        dropped.  Runs under the commit mutex, so no snapshot older than
        the horizon can appear mid-prune and no commit can publish
        concurrently; in-flight lock-free readers are safe because pruning
        *replaces* each chain's version list rather than mutating it.
        """
        with self._commit_mutex:
            self._ensure_not_crashed()
            if self._active:
                horizon = min(t.snapshot_ts for t in self._active.values())
            else:
                horizon = self.clock.last
            pruned = 0
            for table in self.catalog:
                for chain in table.rows.values():
                    pruned += chain.prune(horizon)
            if self._obs is not None:
                self._obs.engine_vacuum(pruned)
            return pruned

    # ------------------------------------------------------------------
    # Waiting support (used by sessions)
    # ------------------------------------------------------------------
    def begin_wait(self, txn: Transaction, wait: WaitOn) -> None:
        """Register a wait; raises DeadlockError if it would close a cycle.

        On a deadlock the transaction is aborted before the error
        propagates, matching server behaviour.
        """
        with self._commit_mutex:
            try:
                self.locks.begin_wait(txn.txid, wait.blocker_ids)
            except Exception as exc:
                self._abort_locked(
                    txn, reason=getattr(exc, "reason", "deadlock")
                )
                callbacks = txn.drain_callbacks()
                self._fire(callbacks, txn)
                raise

    def end_wait(self, txn: Transaction) -> None:
        with self._commit_mutex:
            self.locks.end_wait(txn.txid)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _read_horizon(self, txn: Transaction) -> int:
        """Timestamp bound for reads: snapshot under SI, 'now' under S2PL."""
        if self._s2pl:
            return self.clock.last + 1
        return txn.snapshot_ts

    def _read_snapshot(
        self, txn: Transaction, table: Table, row_id: RowId
    ) -> Optional[Row]:
        table_name, key = row_id
        if row_id in txn.writes:
            txn.record_read(row_id, OWN_WRITE)
            return txn.writes[row_id]
        chain = table.chain(key)
        version = chain.visible(txn.snapshot_ts) if chain is not None else None
        if version is None:
            self._record_read(txn, row_id, 0)
            return None
        self._record_read(txn, row_id, version.commit_ts)
        return None if version.is_tombstone else version.value

    def _read_latest(
        self, txn: Transaction, table: Table, row_id: RowId
    ) -> Optional[Row]:
        """S2PL read: newest committed version (locks exclude writers)."""
        table_name, key = row_id
        if row_id in txn.writes:
            txn.record_read(row_id, OWN_WRITE)
            return txn.writes[row_id]
        chain = table.chain(key)
        version = chain.latest() if chain is not None else None
        version_ts = 0 if version is None else version.commit_ts
        txn.record_read(row_id, version_ts)
        if self._obs is not None:
            self._obs.engine_read(txn, row_id, version_ts)
        if version is None or version.is_tombstone:
            return None
        return version.value

    def _record_read(
        self, txn: Transaction, row_id: RowId, version_ts: int
    ) -> None:
        txn.record_read(row_id, version_ts)
        if self._ssi is not None:
            self._ssi.on_read(txn, row_id, self)
        if self._obs is not None:
            self._obs.engine_read(txn, row_id, version_ts)

    def _record_item_read(
        self, txn: Transaction, table: Table, row_id: RowId
    ) -> None:
        if row_id in txn.writes:
            txn.record_read(row_id, OWN_WRITE)
            return
        chain = table.chain(row_id[1])
        version = (
            chain.visible(self._read_horizon(txn)) if chain is not None else None
        )
        self._record_read(txn, row_id, version.commit_ts if version else 0)

    def _apply_own_write(
        self, txn: Transaction, row_id: RowId, committed: Optional[Row]
    ) -> Optional[Row]:
        if row_id in txn.writes:
            return txn.writes[row_id]
        return committed

    def _check_write_conflict(
        self, txn: Transaction, table: Table, key: Hashable, row_id: RowId
    ) -> None:
        """First-updater-wins snapshot check (also used for SFU).

        Called with the exclusive lock already granted, so the newest
        committed version is stable: a competing writer would need this
        lock first, and a committer publishes its version (and SFU mark)
        before releasing it.  A version newer than our snapshot means a
        concurrent transaction already won.
        """
        chain = table.chain(key)
        newest = chain.latest_commit_ts() if chain is not None else 0
        if newest > txn.snapshot_ts:
            self._fail_serialization(
                txn,
                f"txn {txn.txid} ({txn.label}): row {row_id!r} was updated "
                f"by a concurrent transaction (committed at {newest}, "
                f"snapshot at {txn.snapshot_ts})",
            )
        cc_ts = table.latest_cc_write_ts(key)
        if cc_ts > txn.snapshot_ts:
            self._fail_serialization(
                txn,
                f"txn {txn.txid} ({txn.label}): row {row_id!r} was "
                f"SELECT-FOR-UPDATE locked by a concurrent transaction "
                f"(committed at {cc_ts}, snapshot at {txn.snapshot_ts})",
            )

    def _fail_serialization(self, txn: Transaction, message: str) -> None:
        with self._commit_mutex:
            if txn.status is TxnStatus.ACTIVE:
                self._abort_locked(txn, reason="serialization")
                callbacks = txn.drain_callbacks()
                self._fire(callbacks, txn)
        raise SerializationFailure(message)

    def _first_committer_conflict(self, txn: Transaction) -> Optional[str]:
        for row_id in txn.write_order:
            table_name, key = row_id
            table = self.catalog.table(table_name)
            chain = table.chain(key)
            newest = chain.latest_commit_ts() if chain is not None else 0
            if newest > txn.snapshot_ts:
                return (
                    f"txn {txn.txid} ({txn.label}): first-committer-wins "
                    f"validation failed on {row_id!r}"
                )
            if table.latest_cc_write_ts(key) > txn.snapshot_ts:
                return (
                    f"txn {txn.txid} ({txn.label}): first-committer-wins "
                    f"validation failed on SFU-marked {row_id!r}"
                )
        return None

    def _check_doomed(self, txn: Transaction) -> None:
        """Abort+raise if the SSI certifier doomed this transaction.

        The doom check itself is a lock-free set probe; the abort (the
        rare path) takes the commit mutex and re-checks the status so two
        racing operations of the same transaction abort it only once.
        """
        if self._ssi is None or not self._ssi.is_doomed(txn):
            return
        with self._commit_mutex:
            if txn.status is TxnStatus.ACTIVE:
                self._abort_locked(txn, reason="ssi")
                callbacks = txn.drain_callbacks()
                self._fire(callbacks, txn)
        raise SsiAbort(f"txn {txn.txid} ({txn.label}) is an SSI pivot")

    def _wait_on(self, blocker_ids: frozenset[int]) -> Optional[WaitOn]:
        """Resolve blocker ids to live transactions (commit mutex).

        Returns ``None`` when every blocker already resolved between the
        failed acquire and this lookup — with lock-free paths that is a
        normal race, and the caller simply retries the acquire.
        """
        with self._commit_mutex:
            blockers = frozenset(
                self._active[txid] for txid in blocker_ids if txid in self._active
            )
        if not blockers:
            return None
        return WaitOn(blockers)

    def _fire(
        self, callbacks: list[Callable[[Transaction], None]], txn: Transaction
    ) -> None:
        for observer in self._observers:
            observer(txn)
        for callback in callbacks:
            callback(txn)
