"""Row-level lock manager with a waits-for graph for deadlock detection.

Snapshot Isolation only ever takes **exclusive** row locks (for writes and
``SELECT ... FOR UPDATE``); reads never lock.  The strict two-phase-locking
mode additionally takes **shared** read locks.  Locks are held until the
owning transaction resolves (commits or aborts) — the engine releases them
via :meth:`LockManager.release_all`.

The manager itself never blocks.  ``try_acquire`` either grants the lock or
returns the set of conflicting holder transaction ids; the *session* layer
decides how to wait (real thread wait, simulated-time wait, or surfacing the
block to a test that is manually stepping transactions).  Before waiting,
sessions must register the dependency through :meth:`begin_wait`, which
performs deadlock detection on the waits-for graph.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Optional

from repro.errors import DeadlockError

RowId = tuple[str, Hashable]
"""A lockable resource: ``(table_name, primary_key)``."""


class LockMode(enum.Enum):
    SHARED = "shared"
    EXCLUSIVE = "exclusive"


def _compatible(held: LockMode, requested: LockMode) -> bool:
    return held is LockMode.SHARED and requested is LockMode.SHARED


@dataclass
class _LockEntry:
    """Current holders of one row lock."""

    holders: dict[int, LockMode] = field(default_factory=dict)

    def conflicts_with(self, txid: int, mode: LockMode) -> frozenset[int]:
        """Ids of holders (other than ``txid``) incompatible with ``mode``."""
        blockers = {
            holder
            for holder, held in self.holders.items()
            if holder != txid and not _compatible(held, mode)
        }
        return frozenset(blockers)


class LockManager:
    """Tracks row locks and the waits-for graph.

    The caller (the :class:`~repro.engine.engine.Database`) serializes
    access, so this class needs no internal locking.  Since the engine
    dropped its global mutex the serialization contract is per-structure
    (DESIGN.md §9):

    * per-row lock entries — :meth:`try_acquire` and :meth:`release_one`
      on the same row are serialized by the engine's stripe latch for that
      row;
    * ``_held_by_txn[txid]`` — only ever touched by the transaction's own
      session thread (acquire) and its commit/abort path (release), which
      run on the same thread;
    * the waits-for graph — mutated only under the engine's commit mutex
      (:meth:`begin_wait` / :meth:`end_wait` / :meth:`finish_release`).

    ``lock_timeout`` is the maximum time (seconds) a session may wait for a
    lock before the wait expires with :class:`~repro.errors.LockTimeout`.
    The manager itself never blocks, so enforcement happens in the waiting
    layer (:mod:`repro.engine.session`); the value lives here because it is
    lock-manager policy, alongside deadlock detection.
    """

    def __init__(self, lock_timeout: Optional[float] = None) -> None:
        if lock_timeout is not None and lock_timeout <= 0:
            raise ValueError("lock_timeout must be positive (or None to wait forever)")
        self.lock_timeout = lock_timeout
        self._locks: dict[RowId, _LockEntry] = {}
        self._held_by_txn: dict[int, set[RowId]] = {}
        # txid -> ids of transactions it currently waits for.
        self._waits_for: dict[int, frozenset[int]] = {}

    # ------------------------------------------------------------------
    # Acquisition / release
    # ------------------------------------------------------------------
    def try_acquire(self, txid: int, row: RowId, mode: LockMode) -> frozenset[int]:
        """Attempt to lock ``row`` in ``mode`` for ``txid``.

        Returns an empty frozenset when the lock was granted (or upgraded),
        otherwise the non-empty frozenset of blocking transaction ids.
        Lock upgrade (shared -> exclusive) is supported and subject to the
        same conflict rules against *other* holders.
        """
        entry = self._locks.get(row)
        if entry is None:
            entry = _LockEntry()
            self._locks[row] = entry
        blockers = entry.conflicts_with(txid, mode)
        if blockers:
            return blockers
        current = entry.holders.get(txid)
        if current is None or (
            current is LockMode.SHARED and mode is LockMode.EXCLUSIVE
        ):
            entry.holders[txid] = mode
        self._held_by_txn.setdefault(txid, set()).add(row)
        return frozenset()

    def holds(self, txid: int, row: RowId, mode: Optional[LockMode] = None) -> bool:
        entry = self._locks.get(row)
        if entry is None or txid not in entry.holders:
            return False
        return mode is None or entry.holders[txid] is mode

    def holders(self, row: RowId) -> dict[int, LockMode]:
        entry = self._locks.get(row)
        return dict(entry.holders) if entry else {}

    def rows_held_by(self, txid: int) -> frozenset[RowId]:
        return frozenset(self._held_by_txn.get(txid, ()))

    def release_one(self, txid: int, row: RowId) -> None:
        """Release ``txid``'s lock on one row.

        The caller must hold the row's stripe latch (so a concurrent
        :meth:`try_acquire` cannot observe a half-removed entry) and must
        follow up with :meth:`finish_release` once every row is done.
        """
        entry = self._locks.get(row)
        if entry is None:
            return
        entry.holders.pop(txid, None)
        if not entry.holders:
            del self._locks[row]

    def finish_release(self, txid: int) -> None:
        """Drop ``txid``'s per-transaction bookkeeping after its row locks
        were released via :meth:`release_one` (commit mutex held)."""
        self._held_by_txn.pop(txid, None)
        self._waits_for.pop(txid, None)

    def release_all(self, txid: int) -> list[RowId]:
        """Release every lock held by ``txid``; returns the freed rows.

        Single-structure-owner variant used by tests and tools that drive
        the manager directly; the engine itself releases per-stripe via
        :meth:`release_one` + :meth:`finish_release`.
        """
        rows = self._held_by_txn.pop(txid, set())
        for row in rows:
            self.release_one(txid, row)
        self._waits_for.pop(txid, None)
        return sorted(rows, key=repr)

    # ------------------------------------------------------------------
    # Waits-for graph / deadlock detection
    # ------------------------------------------------------------------
    def begin_wait(self, txid: int, blockers: Iterable[int]) -> None:
        """Register that ``txid`` is about to wait for ``blockers``.

        Raises :class:`DeadlockError` (without registering the wait) if the
        new edges would close a cycle in the waits-for graph.  The policy is
        "requester dies": the transaction that *would* create the cycle is
        the victim, which matches how PostgreSQL reports the deadlock to one
        of the participants.
        """
        blocker_set = frozenset(blockers)
        if txid in blocker_set:
            raise ValueError("a transaction cannot wait for itself")
        for blocker in blocker_set:
            if self._reaches(blocker, txid):
                raise DeadlockError(
                    f"deadlock detected: txn {txid} waiting for {blocker} "
                    f"which (transitively) waits for txn {txid}"
                )
        self._waits_for[txid] = blocker_set

    def end_wait(self, txid: int) -> None:
        """Remove ``txid``'s outgoing waits-for edges (it woke up)."""
        self._waits_for.pop(txid, None)

    def waiting_for(self, txid: int) -> frozenset[int]:
        return self._waits_for.get(txid, frozenset())

    def _reaches(self, source: int, target: int) -> bool:
        """True when ``source`` can reach ``target`` in the waits-for graph."""
        if source == target:
            return True
        seen: set[int] = set()
        stack = [source]
        while stack:
            node = stack.pop()
            if node == target:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._waits_for.get(node, ()))
        return False
