"""Crash recovery: rebuild a :class:`Database` from a WAL prefix.

The durability contract (the invariant the recovery tests assert):

* every transaction whose commit record lies **inside** the replayed prefix
  is fully redone — all of its row after-images (including deletion
  tombstones) are reinstalled with their original commit timestamps;
* every transaction **outside** the prefix — unflushed, uncommitted, or
  active at the crash — leaves no trace;
* bootstrap rows (:meth:`Database.load_row`) act as the checkpoint image
  and are always restored;
* the logical clock resumes strictly after the highest replayed commit
  timestamp, so post-recovery transactions can never collide with
  recovered history.

Commercial-style ``SELECT FOR UPDATE`` marks (``cc_write_ts``) are
*volatile* concurrency-control state: they produce no WAL record and are
dropped by recovery, exactly as a real platform's lock table evaporates on
restart.

Replay is idempotent-by-construction: a fresh catalog is built and records
are applied once each, in commit-timestamp order, so recovering twice from
the same prefix yields identical states.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from repro.engine.versions import Version, freeze_row
from repro.engine.wal import WalRecord
from repro.errors import RecoveryError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine -> recovery)
    from repro.engine.engine import Database


def replay_records(db: "Database", records: Sequence[WalRecord]) -> "Database":
    """Apply ``records`` (a WAL prefix) to a freshly bootstrapped ``db``.

    ``db`` must contain only bootstrap data.  Records are validated to be a
    well-formed prefix: strictly increasing commit timestamps (for records
    that carry one — 2PC ``prepare`` records do not) and a redo payload for
    every record that wrote rows.

    Two-phase-commit records (DESIGN.md §12, presumed abort): a
    ``prepare`` record is *stashed* by gtid, not applied — nothing of it
    is visible until a decision.  A matching ``commit-2pc`` record pops
    the stash and applies the stashed redo at the decision's timestamp.
    A prepare with no decision in the prefix stays stashed in
    ``db._in_doubt``: it is in-doubt until the coordinator re-delivers a
    decision (``Database.commit_prepared``) or presumed abort lets it
    rot — either way it left no visible trace, which is exactly the
    promise the participant's YES vote made.
    """
    last_ts = 0
    in_doubt: dict[str, WalRecord] = {}
    for record in records:
        if record.kind == "prepare":
            if record.gtid in in_doubt:
                raise RecoveryError(
                    f"duplicate prepare record for gtid {record.gtid!r}"
                )
            if not record.has_redo:
                raise RecoveryError(
                    f"prepare record for gtid {record.gtid!r} carries no "
                    "redo payload; cannot replay"
                )
            in_doubt[record.gtid] = record
            db.wal.append(record)
            db.wal.flush()
            continue
        if record.commit_ts <= last_ts:
            raise RecoveryError(
                f"WAL prefix is not ordered: commit_ts {record.commit_ts} "
                f"after {last_ts}"
            )
        last_ts = record.commit_ts
        if record.kind == "commit-2pc":
            prepared = in_doubt.pop(record.gtid, None)
            if prepared is None:
                raise RecoveryError(
                    f"commit-2pc record for gtid {record.gtid!r} has no "
                    "matching prepare in the durable prefix"
                )
            redo = prepared.redo
            txid = prepared.txid
        else:
            if not record.has_redo:
                raise RecoveryError(
                    f"WAL record for txn {record.txid} (commit_ts "
                    f"{record.commit_ts}) carries no redo payload; cannot replay"
                )
            redo = record.redo
            txid = record.txid
        for (table_name, key), value in redo:
            table = db.catalog.table(table_name)
            version = Version(
                commit_ts=record.commit_ts,
                txid=txid,
                value=freeze_row(value),
            )
            chain = table.chain_or_create(key)
            chain.append_committed(version)
            table.index_committed_version(key, version)
        # The replayed record is durable in the recovered instance too:
        # recovering from a recovered database is a no-op.
        db.wal.append(record)
        db.wal.flush()
    db.clock.advance_to(last_ts)
    # Survivors are in-doubt: resolvable by coordinator decision
    # re-delivery, dead by presumed abort otherwise.
    db._in_doubt.update(in_doubt)
    return db


def recover_database(
    crashed: "Database", records: "Iterable[WalRecord] | None" = None
) -> "Database":
    """Build a fresh :class:`Database` holding exactly the durable state.

    ``records`` overrides the WAL prefix to replay (default: the crashed
    instance's flushed prefix) — the hook the durability tests use to
    recover from *every* flush boundary, not just the final one.
    """
    from repro.engine.engine import Database

    schemas = [table.schema for table in crashed.catalog]
    recovered = Database(
        schemas,
        crashed.config,
        observers=list(crashed._observers),
        faults=crashed.faults,
    )
    for table_name, row in crashed._bootstrap:
        recovered.load_row(table_name, row)
    prefix = tuple(records) if records is not None else crashed.wal.durable_records
    return replay_records(recovered, prefix)
