"""Statement-level sessions over the non-blocking engine core.

A :class:`Session` wraps one transaction and exposes the operations that
the SmallBank programs (and the mini SQL executor) are written against:

``select`` / ``select_for_update`` / ``lookup_unique`` / ``scan`` /
``update`` / ``identity_update`` / ``insert`` / ``delete`` / ``commit`` /
``rollback``.

When the engine returns :class:`~repro.engine.engine.WaitOn`, the session
registers the wait (deadlock detection happens there) and delegates the
actual waiting to its :class:`Waiter` policy:

* :class:`ThreadedWaiter` — block the calling OS thread until any blocker
  resolves (used by the threaded correctness/stress driver);
* the simulator provides its own waiter that suspends the simulated client
  (:mod:`repro.sim.client`);
* :class:`NoWaitWaiter` — raise :class:`WouldBlock` instead of waiting
  (used by tests and the interleaving explorer to observe blocking).

Two optional hooks make the session instrumentable without subclassing:

* ``statement_hook(kind, txn)`` fires once per logical SQL statement (the
  simulator charges CPU time there); ``kind`` distinguishes ordinary
  statements from the strategy-introduced ones (``"materialize-update"``,
  ``"identity-update"``, ``"select-for-update"``) because the platforms
  price them differently;
* ``pre_commit_hook(txn)`` fires before a commit that requires a WAL flush
  (the simulator waits on the group-commit log disk there).
"""

from __future__ import annotations

import threading
import warnings
from typing import Callable, Hashable, Mapping, Optional, TypeVar, Union

from repro.engine.engine import Database, Row, WaitOn
from repro.engine.transaction import Transaction
from repro.errors import EngineError, LockTimeout, TransactionStateError

T = TypeVar("T")

Changes = Union[Mapping[str, object], Callable[[Row], Mapping[str, object]]]


class WouldBlock(EngineError):
    """Raised by :class:`NoWaitWaiter` when an operation would block."""

    def __init__(self, wait: WaitOn) -> None:
        super().__init__(f"operation would block on {sorted(wait.blocker_ids)}")
        self.wait = wait


class Waiter:
    """Strategy for waiting until any of a set of transactions resolves.

    Contract (uniform across every implementation): ``wait_any`` blocks
    until any blocker resolves or the optional ``timeout`` (seconds)
    expires, and returns a ``bool`` — ``True`` when the wake-up happened
    (a blocker resolved), ``False`` when the timeout expired first.
    Implementations that never time out return ``True`` unconditionally;
    implementations that never wait (:class:`NoWaitWaiter`) raise instead
    of returning.
    """

    def wait_any(self, wait: WaitOn, timeout: Optional[float] = None) -> bool:
        raise NotImplementedError


class ThreadedWaiter(Waiter):
    """Block the calling OS thread on a :class:`threading.Event`."""

    def wait_any(self, wait: WaitOn, timeout: Optional[float] = None) -> bool:
        event = threading.Event()
        for blocker in wait.blockers:
            blocker.add_resolution_callback(lambda _txn: event.set())
        return event.wait(timeout)


class NoWaitWaiter(Waiter):
    """Never wait; surface the block to the caller as :class:`WouldBlock`."""

    def wait_any(self, wait: WaitOn, timeout: Optional[float] = None) -> bool:
        raise WouldBlock(wait)


class Session:
    """One client connection executing a single transaction at a time.

    .. deprecated::
        Constructing a :class:`Session` directly is deprecated — the
        blessed entry point is :func:`repro.api.connect`, whose
        connections hand out sessions (and context-managed transactions)
        with identical semantics against both the in-process and the
        network backend.  Library internals use :meth:`_internal`.
    """

    def __init__(
        self,
        db: Database,
        waiter: Optional[Waiter] = None,
        statement_hook: Optional[Callable[[str, Transaction], None]] = None,
        pre_commit_hook: Optional[Callable[[Transaction], None]] = None,
    ) -> None:
        warnings.warn(
            "direct Session(...) construction is deprecated; use "
            "repro.api.connect(...) and Connection.session() / "
            "Connection.transaction() instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self._setup(db, waiter, statement_hook, pre_commit_hook)

    @classmethod
    def _internal(
        cls,
        db: Database,
        waiter: Optional[Waiter] = None,
        statement_hook: Optional[Callable[[str, Transaction], None]] = None,
        pre_commit_hook: Optional[Callable[[Transaction], None]] = None,
    ) -> "Session":
        """Construct without the deprecation warning (library internals)."""
        session = cls.__new__(cls)
        session._setup(db, waiter, statement_hook, pre_commit_hook)
        return session

    def _setup(
        self,
        db: Database,
        waiter: Optional[Waiter],
        statement_hook: Optional[Callable[[str, Transaction], None]],
        pre_commit_hook: Optional[Callable[[Transaction], None]],
    ) -> None:
        self.db = db
        self.waiter = waiter or ThreadedWaiter()
        self.statement_hook = statement_hook
        self.pre_commit_hook = pre_commit_hook
        self.txn: Optional[Transaction] = None

    # ------------------------------------------------------------------
    # Transaction control
    # ------------------------------------------------------------------
    def begin(self, label: str = "") -> Transaction:
        if self.txn is not None and self.txn.is_active:
            raise TransactionStateError(
                "session already has an active transaction"
            )
        self.txn = self.db.begin(label)
        return self.txn

    @property
    def transaction(self) -> Transaction:
        if self.txn is None:
            raise TransactionStateError("no transaction; call begin() first")
        return self.txn

    @property
    def in_transaction(self) -> bool:
        """Whether a transaction is currently active (facade contract)."""
        return self.txn is not None and self.txn.is_active

    def commit(self) -> None:
        txn = self.transaction
        if self.pre_commit_hook is not None and txn.needs_wal_flush:
            self.pre_commit_hook(txn)
        self.db.commit(txn)

    def rollback(self) -> None:
        if self.txn is not None:
            self.db.abort(self.txn)

    def close(self) -> None:
        """Release the session; rolls back an active transaction.

        Part of the facade session contract (network sessions return their
        wire connection to the pool here); on an in-process session this is
        rollback-if-active and the object stays technically usable.
        """
        if self.txn is not None and self.txn.is_active:
            self.rollback()

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def select(
        self, table: str, key: Hashable, *, kind: str = "select"
    ) -> Optional[Row]:
        """Read one row by primary key (snapshot read under SI)."""
        self._charge(kind)
        return self._run(lambda: self.db.read(self.transaction, table, key))

    def select_for_update(
        self, table: str, key: Hashable, *, kind: str = "select-for-update"
    ) -> Optional[Row]:
        self._charge(kind)
        return self._run(
            lambda: self.db.select_for_update(self.transaction, table, key)
        )

    def lookup_unique(
        self, table: str, column: str, value: Hashable, *, kind: str = "select"
    ) -> Optional[tuple[Hashable, Row]]:
        """Index lookup by a unique column (e.g. Account.Name)."""
        self._charge(kind)
        return self._run(
            lambda: self.db.lookup_unique(self.transaction, table, column, value)
        )

    def scan(
        self,
        table: str,
        predicate: Optional[Callable[[Row], bool]] = None,
        description: str = "<scan>",
        *,
        kind: str = "scan",
    ) -> list[tuple[Hashable, Row]]:
        self._charge(kind)
        return self._run(
            lambda: self.db.scan(self.transaction, table, predicate, description)
        )

    def update(
        self, table: str, key: Hashable, changes: Changes, *, kind: str = "update"
    ) -> bool:
        """``UPDATE table SET ... WHERE pk = key``.

        ``changes`` is either a column mapping or a callable computing the
        changed columns from the current row.  Returns False when the row
        does not exist in the transaction's view (0 rows updated).
        """
        self._charge(kind)
        txn = self.transaction
        current = self._run(lambda: self.db.read(txn, table, key))
        if current is None:
            return False
        new_values = changes(current) if callable(changes) else changes
        merged = dict(current)
        merged.update(new_values)
        self._run(lambda: self.db.write(txn, table, key, merged))
        return True

    def identity_update(
        self, table: str, key: Hashable, column: str, *, kind: str = "identity-update"
    ) -> bool:
        """The promotion idiom: ``UPDATE t SET col = col WHERE pk = key``.

        Writes the row back unchanged — the value is identical but a new
        version is created, so the access participates in write-write
        conflict detection (and forces a WAL flush at commit).
        """
        return self.update(table, key, lambda row: {column: row[column]}, kind=kind)

    def write(
        self,
        table: str,
        key: Hashable,
        row: Optional[Row],
        *,
        kind: str = "update",
    ) -> None:
        """Stage a full-row write (``row=None`` deletes) without reading.

        The raw building block under :meth:`update`; exposed so the network
        service layer can execute a client-composed read-merge-write with
        the same engine footprint as a local :meth:`update`.
        """
        self._charge(kind)
        self._run(lambda: self.db.write(self.transaction, table, key, row))

    def insert(self, table: str, row: Row, *, kind: str = "insert") -> None:
        self._charge(kind)
        self._run(lambda: self.db.insert(self.transaction, table, row))

    def delete(self, table: str, key: Hashable, *, kind: str = "delete") -> None:
        self._charge(kind)
        self._run(lambda: self.db.delete(self.transaction, table, key))

    # ------------------------------------------------------------------
    # Wait / retry machinery
    # ------------------------------------------------------------------
    def _run(self, operation: Callable[[], "T | WaitOn"]) -> T:
        """Run an engine operation, waiting and retrying while it blocks."""
        while True:
            result = operation()
            if not isinstance(result, WaitOn):
                return result
            self._wait(result)

    def _wait(self, wait: WaitOn) -> None:
        txn = self.transaction
        faults = self.db.faults
        if faults is not None and faults.should_fire("lock-timeout"):
            # Injected expiry: the wait "times out" immediately.
            self.db.abort(txn, reason="lock-timeout")
            raise LockTimeout(
                f"txn {txn.txid} ({txn.label}): injected lock-wait timeout "
                f"on {sorted(wait.blocker_ids)}"
            )
        timeout = self.db.locks.lock_timeout
        obs = self.db.obs
        started = 0.0
        timed_out = False
        if obs is not None:
            started = obs.now()
            obs.lock_wait_start(txn, wait)
        try:
            self.db.begin_wait(txn, wait)  # raises DeadlockError (txn aborted)
            try:
                if timeout is None:
                    woke = self.waiter.wait_any(wait)
                else:
                    woke = self.waiter.wait_any(wait, timeout)
            finally:
                self.db.end_wait(txn)
            timed_out = not woke
        finally:
            if obs is not None:
                obs.lock_wait_end(txn, wait, obs.now() - started, timed_out)
        if timed_out:
            self.db.abort(txn, reason="lock-timeout")
            raise LockTimeout(
                f"txn {txn.txid} ({txn.label}): lock wait exceeded "
                f"{timeout}s waiting for {sorted(wait.blocker_ids)}"
            )

    def _charge(self, kind: str) -> None:
        if self.statement_hook is not None:
            self.statement_hook(kind, self.transaction)
