"""Serializable Snapshot Isolation certifier (engine extension).

This implements the essence of Cahill/Röhm/Fekete's SSI algorithm (SIGMOD
2008; later the basis of PostgreSQL 9.1's true SERIALIZABLE level), which
the paper's conclusion points to as future work: instead of the DBA
rewriting programs with materialization/promotion, the engine itself aborts
one transaction of every *dangerous structure* it observes at runtime.

The certifier tracks, per transaction, whether it has an incoming and/or an
outgoing rw anti-dependency with a *concurrent* transaction:

* ``T.out_conflict`` — T read a version that a concurrent transaction
  overwrote (rw edge T -> U);
* ``T.in_conflict`` — a concurrent transaction read a version T overwrote
  (rw edge U -> T).

A transaction with both flags set is a *pivot* — the middle of two
consecutive rw edges, exactly the dangerous structure of the static theory
— and is aborted (:class:`~repro.errors.SsiAbort`).  This is conservative
(false positives are possible: the two edges need not lie on a cycle) but
guarantees every execution is serializable, which the test-suite verifies
with the MVSG checker.

SIREAD bookkeeping survives commit: a committed reader's entries are kept
until no overlapping transaction remains active, as in the published
algorithm.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Iterable

from repro.engine.locks import RowId
from repro.engine.transaction import Transaction, TxnStatus

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.engine import Database


class SsiCertifier:
    """Runtime dangerous-structure detection for an SI engine.

    The certifier carries its own re-entrant lock: since the engine's SI
    read path became lock-free (DESIGN.md §9), ``on_read`` is invoked by
    concurrent reader threads, while ``on_write``/``on_begin``/
    ``on_resolve`` arrive from writer threads and the commit path.  The
    lock serializes all mutation of the SIREAD table and the tracked-txn
    map.  :meth:`is_doomed` stays lock-free — a set-membership probe is
    atomic under the GIL, and a doom raced past the probe is still caught
    at commit (which re-checks under the engine's commit mutex).

    Lock ordering: the engine may hold its commit mutex when calling in
    here; the certifier never calls back into the engine's locks, so the
    order is strictly ``commit mutex -> certifier lock``.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        # row -> ids of transactions that read it (SIREAD "locks").
        self._sireads: dict[RowId, set[int]] = {}
        # Transactions we still track (active, or committed-but-overlapping).
        self._txns: dict[int, Transaction] = {}
        #: Transactions that must abort at their next operation or commit.
        self.doomed: set[int] = set()

    # ------------------------------------------------------------------
    # Lifecycle hooks (called by the engine)
    # ------------------------------------------------------------------
    def on_begin(self, txn: Transaction) -> None:
        with self._lock:
            self._txns[txn.txid] = txn

    def on_read(self, txn: Transaction, row: RowId, db: "Database") -> None:
        """Record a read and derive rw edges toward concurrent writers."""
        with self._lock:
            self._sireads.setdefault(row, set()).add(txn.txid)
            table = db.catalog.table(row[0])
            chain = table.chain(row[1])
            if chain is None:
                return
            # Concurrent committed writers that produced a newer version
            # than the one this snapshot read.
            for version in reversed(chain.committed):
                if version.commit_ts <= txn.snapshot_ts:
                    break
                writer = self._txns.get(version.txid)
                if writer is not None and writer.txid != txn.txid:
                    self._mark_rw(reader=txn, writer=writer)
            # A concurrent *uncommitted* writer holding the row.
            if chain.uncommitted is not None and chain.uncommitted.txid != txn.txid:
                writer = self._txns.get(chain.uncommitted.txid)
                if writer is not None and writer.is_active:
                    self._mark_rw(reader=txn, writer=writer)

    def on_write(self, txn: Transaction, row: RowId) -> None:
        """Record a write and derive rw edges from concurrent readers."""
        with self._lock:
            for reader_id in self._sireads.get(row, ()):
                if reader_id == txn.txid:
                    continue
                reader = self._txns.get(reader_id)
                if reader is None:
                    continue
                if reader.is_active or reader.concurrent_with(txn):
                    self._mark_rw(reader=reader, writer=txn)

    def on_resolve(self, txn: Transaction, active_txns: Iterable[Transaction]) -> None:
        """Prune state once transactions can no longer matter.

        A committed transaction's SIREAD entries (and conflict flags) are
        retained while any active transaction overlaps it; an aborted
        transaction is dropped immediately.
        """
        with self._lock:
            if txn.status is TxnStatus.ABORTED:
                self._forget(txn.txid)
            starts = [t.start_ts for t in active_txns if t.is_active]
            watermark = min(starts) if starts else None
            stale = [
                txid
                for txid, tracked in self._txns.items()
                if tracked.status is TxnStatus.COMMITTED
                and (watermark is None or (tracked.commit_ts or 0) <= watermark)
            ]
            for txid in stale:
                self._forget(txid)

    def is_doomed(self, txn: Transaction) -> bool:
        return txn.txid in self.doomed

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _mark_rw(self, *, reader: Transaction, writer: Transaction) -> None:
        """Register the anti-dependency ``reader --rw--> writer``."""
        reader.out_conflict = True
        writer.in_conflict = True
        self._doom_if_pivot(reader, other=writer)
        self._doom_if_pivot(writer, other=reader)

    def _doom_if_pivot(self, txn: Transaction, other: Transaction) -> None:
        """Abort somebody once ``txn`` becomes a pivot.

        The pivot itself is the victim while it is still active.  When the
        pivot already committed, the transaction creating the new edge is
        the only one that can still be stopped — dooming it is Cahill's
        "abort the transaction setting the flag" rule.
        """
        if not (txn.in_conflict and txn.out_conflict):
            return
        if txn.is_active:
            self.doomed.add(txn.txid)
        elif txn.status is TxnStatus.COMMITTED and other.is_active:
            self.doomed.add(other.txid)

    def _forget(self, txid: int) -> None:
        self._txns.pop(txid, None)
        self.doomed.discard(txid)
        for readers in self._sireads.values():
            readers.discard(txid)
        # Drop empty entries occasionally to bound memory.
        if len(self._sireads) > 4096:
            self._sireads = {
                row: readers for row, readers in self._sireads.items() if readers
            }
