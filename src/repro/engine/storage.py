"""Relational storage: schemas, typed columns, tables of version chains.

A :class:`Table` maps primary-key values to :class:`VersionChain` objects.
Uniqueness of secondary columns (e.g. ``Account.CustomerId`` in SmallBank)
is enforced at commit time and accelerated by a *superset index*: a map from
column value to the tuple of primary keys that have **ever** carried that
value.  Lookups fetch the candidates from the index and then apply snapshot
visibility, which keeps the index itself version-free yet correct.

Concurrency contract (see DESIGN.md §9): tables are read lock-free by SI
readers.  Structures a reader traverses — version chains, the sorted-key
cache, the superset indexes — are only ever *replaced*, never mutated in
place: index entries are copy-on-write tuples and the key cache is an
immutable tuple rebuilt on demand, so a reader either sees the old or the
new value, both internally consistent.  All mutation happens on the writer
side under the engine's stripe latches (key/chain creation) or commit
mutex (version publication, index maintenance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterator, Mapping, Optional

from repro.errors import IntegrityError, SchemaError
from repro.engine.versions import Version, VersionChain

_TYPE_CHECKS: dict[str, Callable[[object], bool]] = {
    "int": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "numeric": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "text": lambda v: isinstance(v, str),
}


@dataclass(frozen=True)
class Column:
    """A typed column.  ``kind`` is one of ``int``, ``numeric``, ``text``."""

    name: str
    kind: str = "numeric"
    nullable: bool = False

    def __post_init__(self) -> None:
        if self.kind not in _TYPE_CHECKS:
            raise SchemaError(f"unknown column type {self.kind!r}")

    def check(self, value: object) -> None:
        if value is None:
            if not self.nullable:
                raise IntegrityError(f"column {self.name!r} is NOT NULL")
            return
        if not _TYPE_CHECKS[self.kind](value):
            raise IntegrityError(
                f"column {self.name!r} expects {self.kind}, got {value!r}"
            )


@dataclass(frozen=True)
class TableSchema:
    """Schema of one table.

    Attributes
    ----------
    name:
        Table name.
    columns:
        Ordered column definitions.  The primary-key column must be listed.
    primary_key:
        Name of the primary-key column (single-column keys, as in SmallBank).
    unique:
        Names of additional columns carrying a uniqueness constraint.
    """

    name: str
    columns: tuple[Column, ...]
    primary_key: str
    unique: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column in table {self.name!r}")
        if self.primary_key not in names:
            raise SchemaError(
                f"primary key {self.primary_key!r} is not a column of {self.name!r}"
            )
        for col in self.unique:
            if col not in names:
                raise SchemaError(
                    f"unique column {col!r} is not a column of {self.name!r}"
                )
        # Schemas are immutable, so name lookups are precomputed once here
        # instead of rebuilding sets/tuples on every validate_row call
        # (row validation is on the write hot path).
        object.__setattr__(self, "_names", tuple(names))
        object.__setattr__(self, "_name_set", frozenset(names))
        object.__setattr__(
            self, "_by_name", {c.name: c for c in self.columns}
        )

    @property
    def column_names(self) -> tuple[str, ...]:
        return self._names

    @property
    def column_name_set(self) -> frozenset[str]:
        return self._name_set

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def validate_row(self, row: Mapping[str, object]) -> dict[str, object]:
        """Type-check a full row and return a plain-dict copy."""
        name_set = self._name_set
        keys = row.keys()
        if keys != name_set:
            extra = keys - name_set
            if extra:
                raise SchemaError(
                    f"unknown column(s) {sorted(extra)} for table {self.name!r}"
                )
            missing = name_set - keys
            if missing:
                raise IntegrityError(
                    f"missing column(s) {sorted(missing)} for table {self.name!r}"
                )
        for col in self.columns:
            col.check(row[col.name])
        return dict(row)


class Table:
    """Version-chained rows of one table plus its superset indexes."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self.rows: dict[Hashable, VersionChain] = {}
        # Superset indexes: column -> value -> tuple of pks that ever had
        # it, kept sorted by repr.  Entries are copy-on-write (replaced,
        # never mutated) so lock-free readers always see a consistent
        # candidate list.
        self._indexes: dict[str, dict[Hashable, tuple[Hashable, ...]]] = {
            col: {} for col in schema.unique
        }
        # Commercial-platform SELECT FOR UPDATE bookkeeping: pk -> commit_ts
        # of the last transaction that SFU-locked the row (treated like a
        # write for conflict detection, though no version is created).
        self.cc_write_ts: dict[Hashable, int] = {}
        # Scan-order cache: (key_count, keys sorted by repr).  Keys are
        # never removed (deletes are tombstone versions), so the cache is
        # exactly valid while key_count == len(rows) — no explicit
        # invalidation hook is needed and a stale rebuild can never mask a
        # newer insert.
        self._sorted_keys: tuple[int, tuple[Hashable, ...]] = (0, ())

    # ------------------------------------------------------------------
    # Chains
    # ------------------------------------------------------------------
    def chain(self, key: Hashable) -> Optional[VersionChain]:
        return self.rows.get(key)

    def chain_or_create(self, key: Hashable) -> VersionChain:
        chain = self.rows.get(key)
        if chain is None:
            chain = VersionChain()
            self.rows[key] = chain
        return chain

    def keys(self) -> Iterator[Hashable]:
        return iter(self.rows)

    def sorted_keys(self) -> tuple[Hashable, ...]:
        """All keys (committed or in-flight) sorted by repr.

        Scans iterate this cache instead of re-sorting every call.  The
        rebuild snapshots the key view first (``list(dict)`` is atomic
        under the GIL) so it is safe against concurrent inserts: a rebuild
        that raced with an insert publishes a pair whose count no longer
        matches ``len(rows)``, which simply forces the next call to rebuild
        again — a stale tuple can never be mistaken for current.
        """
        count, keys = self._sorted_keys
        rows = self.rows
        if count != len(rows):
            fresh = list(rows)
            fresh.sort(key=repr)
            keys = tuple(fresh)
            self._sorted_keys = (len(keys), keys)
        return keys

    # ------------------------------------------------------------------
    # Snapshot reads
    # ------------------------------------------------------------------
    def visible_row(
        self, key: Hashable, snapshot_ts: int
    ) -> Optional[Mapping[str, object]]:
        """The row value visible at ``snapshot_ts`` (None when absent)."""
        chain = self.rows.get(key)
        if chain is None:
            return None
        version = chain.visible(snapshot_ts)
        if version is None or version.is_tombstone:
            return None
        return version.value

    def scan_visible(
        self,
        snapshot_ts: int,
        predicate: Optional[Callable[[Mapping[str, object]], bool]] = None,
    ) -> Iterator[tuple[Hashable, Mapping[str, object]]]:
        """Yield ``(key, row)`` for rows visible at ``snapshot_ts``.

        Keys are visited in sorted order so scans are deterministic.
        """
        for key in self.sorted_keys():
            row = self.visible_row(key, snapshot_ts)
            if row is None:
                continue
            if predicate is None or predicate(row):
                yield key, row

    def lookup_unique(
        self, column: str, value: Hashable, snapshot_ts: int
    ) -> Optional[tuple[Hashable, Mapping[str, object]]]:
        """Find the visible row whose unique ``column`` equals ``value``."""
        if column == self.schema.primary_key:
            row = self.visible_row(value, snapshot_ts)
            return (value, row) if row is not None else None
        if column not in self._indexes:
            raise SchemaError(
                f"column {column!r} of {self.schema.name!r} has no unique index"
            )
        # Index entries are pre-sorted copy-on-write tuples, so this is a
        # lock-free read of an immutable candidate list.
        for key in self._indexes[column].get(value, ()):
            row = self.visible_row(key, snapshot_ts)
            if row is not None and row[column] == value:
                return key, row
        return None

    # ------------------------------------------------------------------
    # Commit-time maintenance (called by the engine under its mutex)
    # ------------------------------------------------------------------
    def check_unique_on_commit(
        self,
        key: Hashable,
        row: Optional[Mapping[str, object]],
        as_of_ts: int,
        staged: Optional[Mapping[Hashable, Optional[Mapping[str, object]]]] = None,
    ) -> None:
        """Verify unique constraints for a row about to be committed.

        ``as_of_ts`` is the committing transaction's snapshot-independent
        view: uniqueness is checked against the *latest committed* state,
        because two snapshots must not both install the same unique value.
        ``staged`` maps keys the same transaction is committing to their
        new values, so validation (which runs before any version is
        published) sees the transaction's own writes — a value moved from
        one row to another inside one transaction is not a violation.
        """
        if row is None:
            return
        for column in self.schema.unique:
            value = row[column]
            for other_key in self._indexes[column].get(value, ()):
                if other_key == key:
                    continue
                if staged is not None and other_key in staged:
                    other = staged[other_key]
                else:
                    other = self.visible_row(other_key, as_of_ts)
                if other is not None and other[column] == value:
                    raise IntegrityError(
                        f"unique constraint on {self.schema.name}.{column} "
                        f"violated by value {value!r}"
                    )

    def index_committed_version(self, key: Hashable, version: Version) -> None:
        """Record a freshly committed version in the superset indexes.

        Entries are copy-on-write: the candidate tuple is replaced, never
        mutated, so concurrent lock-free lookups always iterate a
        consistent (and pre-sorted) list.  Only the committer mutates the
        index, under the engine's commit mutex.
        """
        if version.value is None:
            return
        for column, index in self._indexes.items():
            value = version.value[column]
            existing = index.get(value, ())
            if key not in existing:
                index[value] = tuple(sorted((*existing, key), key=repr))

    def latest_cc_write_ts(self, key: Hashable) -> int:
        """Commit ts of the last committed commercial SFU on ``key`` (0 if none)."""
        return self.cc_write_ts.get(key, 0)


class Catalog:
    """The set of tables making up one database."""

    def __init__(self, schemas: tuple[TableSchema, ...] | list[TableSchema]) -> None:
        self._tables: dict[str, Table] = {}
        for schema in schemas:
            if schema.name in self._tables:
                raise SchemaError(f"duplicate table {schema.name!r}")
            self._tables[schema.name] = Table(schema)

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"unknown table {name!r}") from None

    def add_table(self, schema: TableSchema) -> Table:
        if schema.name in self._tables:
            raise SchemaError(f"duplicate table {schema.name!r}")
        table = Table(schema)
        self._tables[schema.name] = table
        return table

    def has_table(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> tuple[str, ...]:
        return tuple(self._tables)

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())
