"""Transaction objects: lifecycle, footprints, resolution callbacks.

A :class:`Transaction` records everything the dynamic analysis layer needs
to rebuild a multi-version serialization graph after the fact:

* ``reads`` — for every item read, the commit timestamp of the version that
  was observed (or ``OWN_WRITE`` when the transaction saw its own write);
* ``writes`` — the staged new values (published at commit);
* ``cc_writes`` — items locked via commercial-style ``SELECT FOR UPDATE``
  (concurrency-control writes that create no version);
* ``predicate_reads`` — predicate evaluations, for phantom-aware analysis.

Waiters (sessions blocked on this transaction's row locks) subscribe via
:meth:`add_resolution_callback`; the engine fires the callbacks once the
transaction commits or aborts.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass
from typing import Callable, Hashable, Mapping, Optional

from repro.engine.locks import RowId
from repro.errors import TransactionStateError

OWN_WRITE = -1
"""Sentinel 'version timestamp' recorded when a read observed an own write."""


class TxnStatus(enum.Enum):
    ACTIVE = "active"
    #: Voted YES in a two-phase commit: the write set is durably logged and
    #: all locks stay held, but nothing is published — the transaction can
    #: only leave this state via the coordinator's decision
    #: (:meth:`~repro.engine.engine.Database.commit_prepared` /
    #: :meth:`~repro.engine.engine.Database.abort_prepared`).
    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class PredicateRead:
    """A recorded predicate evaluation (for phantom analysis)."""

    table: str
    description: str
    matched_keys: tuple[Hashable, ...]


@dataclass
class ReadRecord:
    """One item read: which version (by commit ts) was observed."""

    row: RowId
    version_ts: int


class Transaction:
    """State of one transaction inside a :class:`~repro.engine.engine.Database`."""

    def __init__(self, txid: int, start_ts: int, *, label: str = "") -> None:
        self.txid = txid
        self.start_ts = start_ts
        #: Snapshot timestamp: this transaction sees versions committed at or
        #: before this point.  Equal to ``start_ts`` under SI.
        self.snapshot_ts = start_ts
        self.commit_ts: Optional[int] = None
        self.status = TxnStatus.ACTIVE
        #: Optional program name (e.g. "WriteCheck"), used in statistics and
        #: in the dynamic-analysis reports.
        self.label = label
        #: Global transaction id, set when this transaction becomes a 2PC
        #: participant (``Database.prepare_commit``); ``None`` otherwise.
        self.gtid: Optional[str] = None

        # Footprints -----------------------------------------------------
        self.reads: dict[RowId, int] = {}
        self.writes: dict[RowId, Optional[Mapping[str, object]]] = {}
        self.write_order: list[RowId] = []
        self.cc_writes: set[RowId] = set()
        self.sfu_rows: set[RowId] = set()
        self.predicate_reads: list[PredicateRead] = []

        # SSI certifier flags (engine mode ``SSI``) ----------------------
        self.in_conflict = False  # some concurrent txn has an rw edge INTO us
        self.out_conflict = False  # we have an rw edge OUT to a concurrent txn

        self._resolution_callbacks: list[Callable[["Transaction"], None]] = []
        # Guards the callback list against the register/drain race: a
        # waiter thread subscribes while the owner thread resolves.
        self._callback_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Footprint recording
    # ------------------------------------------------------------------
    def record_read(self, row: RowId, version_ts: int) -> None:
        """Record that ``row`` was read at ``version_ts``.

        Re-reads keep the first recorded version: under SI a transaction
        always sees the same version, and an own-write read (``OWN_WRITE``)
        must not mask the snapshot version that was read earlier.
        """
        if row not in self.reads:
            self.reads[row] = version_ts

    def record_write(
        self, row: RowId, value: Optional[Mapping[str, object]]
    ) -> None:
        if row not in self.writes:
            self.write_order.append(row)
        self.writes[row] = value

    def record_predicate(
        self, table: str, description: str, matched: tuple[Hashable, ...]
    ) -> None:
        self.predicate_reads.append(PredicateRead(table, description, matched))

    @property
    def is_read_only(self) -> bool:
        """True when the transaction staged no writes (SFU included).

        Read-only transactions commit without a WAL flush — the effect at
        the heart of the paper's Figure 5(b) analysis.
        """
        return not self.writes and not self.cc_writes

    @property
    def needs_wal_flush(self) -> bool:
        """True when committing requires a log-disk write.

        Commercial-style SFU locks are concurrency-control state only; they
        generate no log record, which is why ``PromoteBW-sfu`` does not pay
        the extra disk write that ``PromoteBW-upd`` does.
        """
        return bool(self.writes)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def is_active(self) -> bool:
        return self.status is TxnStatus.ACTIVE

    @property
    def is_committed(self) -> bool:
        return self.status is TxnStatus.COMMITTED

    @property
    def is_prepared(self) -> bool:
        return self.status is TxnStatus.PREPARED

    def ensure_active(self) -> None:
        if self.status is not TxnStatus.ACTIVE:
            raise TransactionStateError(
                f"transaction {self.txid} is {self.status.value}"
            )

    def concurrent_with(self, other: "Transaction") -> bool:
        """True when the two transactions' lifetimes overlapped.

        Two transactions are concurrent when neither committed before the
        other started.  Uncommitted transactions extend to "now".
        """
        if self is other:
            return False

        def ended_before(a: "Transaction", b: "Transaction") -> bool:
            return a.commit_ts is not None and a.commit_ts <= b.start_ts

        return not ended_before(self, other) and not ended_before(other, self)

    # ------------------------------------------------------------------
    # Resolution callbacks
    # ------------------------------------------------------------------
    def add_resolution_callback(
        self, callback: Callable[["Transaction"], None]
    ) -> None:
        """Invoke ``callback(self)`` when this transaction commits or aborts.

        If the transaction is already resolved, the callback fires
        immediately (so waiters never miss the wake-up).  Registration is
        synchronized with :meth:`drain_callbacks`: either the callback lands
        in the list the resolver drains, or it observes the resolved status
        and fires here — it can never be appended to an already-drained
        list and silently lost.

        A PREPARED transaction is *unresolved*: it still holds its row
        locks, so waiters must keep queueing (firing immediately would spin
        them against the held lock) until the coordinator's decision
        commits or aborts it.
        """
        with self._callback_lock:
            if self.status in (TxnStatus.ACTIVE, TxnStatus.PREPARED):
                self._resolution_callbacks.append(callback)
                return
        callback(self)

    def drain_callbacks(self) -> list[Callable[["Transaction"], None]]:
        """Detach and return the pending callbacks (engine commit/abort).

        Must be called *after* :attr:`status` left ``ACTIVE``: the status
        change plus the lock ensure late subscribers self-fire instead of
        appending to the drained list.
        """
        with self._callback_lock:
            callbacks = self._resolution_callbacks
            self._resolution_callbacks = []
            return callbacks

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Transaction(txid={self.txid}, label={self.label!r}, "
            f"status={self.status.value}, start={self.start_ts}, "
            f"commit={self.commit_ts})"
        )
