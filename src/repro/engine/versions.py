"""Multi-version row storage.

Each logical row (identified by its primary key within a table) owns a
:class:`VersionChain`:

* an append-only list of *committed* versions ordered by commit timestamp;
* at most one *uncommitted* version, owned by the transaction currently
  holding the row's exclusive write lock (SI allows a single in-flight
  writer per row — that is what the write lock enforces).

A version's ``value`` is an immutable mapping of column name to value, or
``None`` for a deletion tombstone.  Versions never mutate; updates append.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping, Optional


def freeze_row(value: Optional[Mapping[str, object]]) -> Optional[Mapping[str, object]]:
    """Return a read-only view of a row mapping (``None`` passes through)."""
    if value is None:
        return None
    if isinstance(value, MappingProxyType):
        return value
    return MappingProxyType(dict(value))


@dataclass(frozen=True)
class Version:
    """One committed version of a row.

    Attributes
    ----------
    commit_ts:
        Commit timestamp of the creating transaction (``0`` for bootstrap
        data loaded before any transaction ran).
    txid:
        Id of the creating transaction (``0`` for bootstrap data).
    value:
        Column mapping, or ``None`` if this version is a deletion tombstone.
    """

    commit_ts: int
    txid: int
    value: Optional[Mapping[str, object]]

    @property
    def is_tombstone(self) -> bool:
        return self.value is None


@dataclass
class UncommittedVersion:
    """The single in-flight (locked, not yet committed) version of a row."""

    txid: int
    value: Optional[Mapping[str, object]]


class VersionChain:
    """The full version history of one logical row."""

    __slots__ = ("_committed", "uncommitted")

    def __init__(self) -> None:
        self._committed: list[Version] = []
        self.uncommitted: Optional[UncommittedVersion] = None

    # ------------------------------------------------------------------
    # Committed-version access
    # ------------------------------------------------------------------
    def append_committed(self, version: Version) -> None:
        """Append a committed version; commit timestamps must increase."""
        if self._committed and version.commit_ts < self._committed[-1].commit_ts:
            raise ValueError(
                "commit timestamps must be appended in increasing order: "
                f"{version.commit_ts} < {self._committed[-1].commit_ts}"
            )
        self._committed.append(version)

    @property
    def committed(self) -> tuple[Version, ...]:
        return tuple(self._committed)

    def latest(self) -> Optional[Version]:
        """The newest committed version, or ``None`` if the row never existed."""
        return self._committed[-1] if self._committed else None

    def latest_commit_ts(self) -> int:
        """Commit timestamp of the newest committed version (0 if none)."""
        latest = self.latest()
        return latest.commit_ts if latest is not None else 0

    def visible(self, snapshot_ts: int) -> Optional[Version]:
        """The version a snapshot taken at ``snapshot_ts`` sees.

        Returns the newest committed version with ``commit_ts <= snapshot_ts``
        or ``None`` when no version is visible (row did not exist yet).
        A visible tombstone is returned as a :class:`Version` whose
        ``is_tombstone`` is true; callers translate that to "row absent".
        """
        # Linear scan from the tail: chains are short and the newest
        # versions are by far the most frequently requested.
        for version in reversed(self._committed):
            if version.commit_ts <= snapshot_ts:
                return version
        return None

    def successor_of(self, commit_ts: int) -> Optional[Version]:
        """The committed version immediately following ``commit_ts``.

        Used by the MVSG builder to derive rw anti-dependency edges: a
        transaction that read the version at ``commit_ts`` has an
        anti-dependency toward the writer of the successor.
        """
        for version in self._committed:
            if version.commit_ts > commit_ts:
                return version
        return None

    def version_at(self, commit_ts: int) -> Optional[Version]:
        """The committed version created exactly at ``commit_ts``."""
        for version in reversed(self._committed):
            if version.commit_ts == commit_ts:
                return version
            if version.commit_ts < commit_ts:
                break
        return None

    def exists_at(self, snapshot_ts: int) -> bool:
        """True when the row is visible and alive at ``snapshot_ts``."""
        version = self.visible(snapshot_ts)
        return version is not None and not version.is_tombstone

    def prune(self, horizon_ts: int) -> int:
        """Drop committed versions no snapshot at or after ``horizon_ts``
        can see; returns how many were dropped.

        A snapshot at ``horizon_ts`` sees the newest version with
        ``commit_ts <= horizon_ts``, so that version (and everything newer)
        is kept; all older versions are unreachable once every live
        snapshot is at or past the horizon.  The surviving suffix is
        published as a *new* list — concurrent lock-free readers keep
        traversing whichever (immutable-element) list they already hold.
        """
        committed = self._committed
        keep_from = 0
        for i in range(len(committed) - 1, -1, -1):
            if committed[i].commit_ts <= horizon_ts:
                keep_from = i
                break
        if keep_from == 0:
            return 0
        self._committed = committed[keep_from:]
        return keep_from

    def __len__(self) -> int:
        return len(self._committed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tip = self.latest()
        return (
            f"VersionChain(n={len(self._committed)}, tip_ts="
            f"{tip.commit_ts if tip else None}, "
            f"uncommitted={self.uncommitted is not None})"
        )
