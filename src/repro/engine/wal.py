"""Logical write-ahead log with redo payloads and a flush boundary.

The engine appends one :class:`WalRecord` per committing transaction *that
wrote something*.  Read-only transactions (including transactions whose only
"write" is a commercial-style ``SELECT FOR UPDATE`` lock) append nothing —
the asymmetry that drives the paper's MPL-1 analysis: a strategy that turns
the read-only Balance program into an updater makes every transaction pay a
log-disk write.

Each record carries its *redo payload*: the full after-image of every row
the transaction wrote (``None`` marks a deletion tombstone).  Replaying the
payloads of a WAL prefix in order rebuilds the committed state as of that
prefix — the contract :mod:`repro.engine.recovery` relies on.

Durability is modelled with a *flush boundary*: :meth:`WriteAheadLog.append`
stages a record in the volatile tail and :meth:`WriteAheadLog.flush` moves
the boundary past everything staged so far.  A crash discards the tail;
only :attr:`WriteAheadLog.durable_records` survive.  In normal operation the
engine flushes at every commit (the client only sees the commit succeed once
the record is durable); a fault plan may crash the engine between the append
and the flush — exactly the window a real power failure hits.

The performance simulator does not move bytes; it charges the *flush* to a
group-commit disk resource (:class:`repro.sim.resources.GroupCommitLog`).
This module keeps the logical record stream so tests can assert exactly
which transactions would have forced a flush.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Optional

from repro.engine.locks import RowId
from repro.errors import DatabaseCrashed

#: One redo entry: the row written and its full after-image (``None`` for a
#: deletion tombstone).
RedoEntry = tuple[RowId, Optional[Mapping[str, object]]]


@dataclass(frozen=True)
class WalRecord:
    """One log record.

    ``rows`` names the rows written (in write order); ``redo`` carries the
    matching after-images.  ``redo`` may be empty for hand-built records in
    tests that only exercise the logical stream — the recovery layer
    requires it and checks.

    ``kind`` distinguishes the three record types of the presumed-abort
    two-phase-commit protocol (DESIGN.md §12):

    * ``"commit"`` — an ordinary single-site commit (the default; carries
      its redo payload and a real ``commit_ts``);
    * ``"prepare"`` — a participant's YES vote: carries the *full redo
      payload* under its global transaction id (``gtid``) but no commit
      timestamp yet (``commit_ts == 0``); nothing is visible until a
      decision record follows;
    * ``"commit-2pc"`` — the coordinator's commit decision for ``gtid``:
      carries only the decision timestamp (presumed abort keeps decisions
      small); recovery applies the redo stashed by the matching prepare.

    There is deliberately *no* abort record: under presumed abort, a
    prepare with no decision in the durable log **is** the abort.
    """

    commit_ts: int
    txid: int
    label: str
    rows: tuple[RowId, ...]
    redo: tuple[RedoEntry, ...] = field(default=())
    kind: str = "commit"
    gtid: Optional[str] = None

    def __post_init__(self) -> None:
        if self.redo and tuple(row for row, _ in self.redo) != self.rows:
            raise ValueError(
                "redo payload rows must match the record's row list"
            )
        if self.kind not in ("commit", "prepare", "commit-2pc"):
            raise ValueError(f"unknown WAL record kind {self.kind!r}")
        if self.kind != "commit" and self.gtid is None:
            raise ValueError(f"{self.kind} records require a gtid")

    @property
    def has_redo(self) -> bool:
        """True when the record can be replayed (payload present or empty write set)."""
        return not self.rows or bool(self.redo)


class WriteAheadLog:
    """Append-only list of commit records, ordered by commit timestamp.

    Records sit in a volatile tail until :meth:`flush` advances the flush
    boundary past them; :meth:`truncate_to_flushed` models a crash by
    discarding the tail.
    """

    def __init__(self) -> None:
        self._records: list[WalRecord] = []
        self._flushed = 0

    def append(self, record: WalRecord) -> None:
        # Prepare records carry no commit timestamp (their position in the
        # log is irrelevant — recovery matches them to decisions by gtid),
        # so only decision-bearing records participate in the monotonicity
        # invariant, and they compare against the last decision-bearing
        # record, skipping any interleaved prepares.
        if record.kind != "prepare":
            if record.commit_ts <= self._last_decision_ts():
                raise ValueError(
                    "WAL records must have increasing commit timestamps"
                )
        self._records.append(record)

    def _last_decision_ts(self) -> int:
        """Commit timestamp of the newest non-prepare record (0 if none).

        Scans back over trailing prepare records only — in practice zero
        or a handful, since prepares are short-lived.
        """
        for record in reversed(self._records):
            if record.kind != "prepare":
                return record.commit_ts
        return 0

    def flush(self) -> int:
        """Make every staged record durable; returns the flush boundary."""
        self._flushed = len(self._records)
        return self._flushed

    @property
    def records(self) -> tuple[WalRecord, ...]:
        return tuple(self._records)

    @property
    def durable_records(self) -> tuple[WalRecord, ...]:
        """The flushed prefix — everything that survives a crash."""
        return tuple(self._records[: self._flushed])

    @property
    def flushed_count(self) -> int:
        return self._flushed

    @property
    def unflushed_count(self) -> int:
        """Records staged but not yet durable (lost on crash)."""
        return len(self._records) - self._flushed

    def truncate_to_flushed(self) -> tuple[WalRecord, ...]:
        """Discard the volatile tail (crash); returns the dropped records."""
        dropped = tuple(self._records[self._flushed :])
        del self._records[self._flushed :]
        return dropped

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[WalRecord]:
        return iter(self._records)

    def records_for(self, label: str) -> tuple[WalRecord, ...]:
        """All records written by transactions with the given label."""
        return tuple(r for r in self._records if r.label == label)


class GroupCommitBuffer:
    """Batches WAL appends + flushes outside the engine's commit mutex.

    The commit protocol (DESIGN.md §9) *stages* a record while holding the
    commit mutex — that fixes the record's position in the log, because
    staging happens in commit-timestamp order — and performs the actual
    append + flush after the mutex is released, via :meth:`sync`.  The
    first committer to reach :meth:`sync` becomes the *leader*: it drains
    every staged record (its own and any staged by commits racing behind
    the mutex) into the log and flushes once.  Followers find their record
    already durable and return without touching the log — the classic
    group-commit pattern, which keeps the commit critical section free of
    log work.

    A commit is only acknowledged (``Database.commit`` returns) after its
    record is durable, so the client-visible durability contract is
    unchanged from flush-per-commit.
    """

    def __init__(self) -> None:
        self._pending: "deque[WalRecord]" = deque()
        self._flush_mutex = threading.Lock()
        self._flushed_through = 0  # commit_ts of the newest durable record

    def stage(self, record: WalRecord) -> None:
        """Enqueue a record for the next flush.

        Must be called under the engine's commit mutex so records enter
        the queue in commit-timestamp order.  Only decision-bearing
        records (``kind`` ``"commit"`` / ``"commit-2pc"``) may be staged:
        the leader-election dedup in :meth:`sync` is keyed by
        ``commit_ts``, which a prepare record does not have — prepares go
        through :meth:`append_durable` instead.
        """
        if record.kind == "prepare":
            raise ValueError(
                "prepare records bypass group commit; use append_durable"
            )
        self._pending.append(record)

    def append_durable(self, wal: WriteAheadLog, record: WalRecord) -> None:
        """Append + flush one record immediately (2PC prepare path).

        A participant's YES vote must be durable *before* it is returned
        to the coordinator, and a prepare record has no commit timestamp
        to batch under, so it takes the flush mutex and goes straight to
        the log.  Holding the mutex also serializes the append against a
        concurrent leader's drain loop; the flush makes any records the
        leader already appended durable a moment early, which is safe
        (durability is monotone).
        """
        with self._flush_mutex:
            wal.append(record)
            wal.flush()

    def sync(self, wal: WriteAheadLog, record: WalRecord) -> int:
        """Block until ``record`` is durable, flushing a batch if needed.

        Returns the number of records *this* call drained and flushed —
        the group-commit batch size when the caller became the leader, 0
        when it was a follower whose record another leader's batch already
        covered.  (The observability layer feeds this into the
        ``repro_wal_batch_size`` histogram.)

        Raises :class:`~repro.errors.DatabaseCrashed` when the record is
        neither durable nor pending: an injected crash spilled it into the
        WAL's (then truncated) volatile tail, so the commit was lost and
        must not be acknowledged to the client.
        """
        with self._flush_mutex:
            if record.commit_ts <= self._flushed_through:
                return 0  # another leader's batch already covered us
            pending = self._pending
            batch = 0
            while pending:
                staged = pending.popleft()
                wal.append(staged)
                self._flushed_through = staged.commit_ts
                batch += 1
            if record.commit_ts > self._flushed_through:
                raise DatabaseCrashed(
                    f"commit {record.commit_ts} (txn {record.txid}) was "
                    "staged but lost to a crash before the group flush"
                )
            wal.flush()
            return batch

    def spill_unflushed(self, wal: WriteAheadLog) -> None:
        """Crash path: append staged records *without* flushing.

        Models power failing between the append and the flush — the
        records land in the WAL's volatile tail, which the crash then
        discards.  Called under the commit mutex while crashing, so no
        concurrent :meth:`sync` can flush them first.
        """
        with self._flush_mutex:
            while self._pending:
                wal.append(self._pending.popleft())

    @property
    def staged_count(self) -> int:
        """Records staged but not yet drained into the log."""
        return len(self._pending)
