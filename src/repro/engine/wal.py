"""Logical write-ahead log.

The engine appends one :class:`WalRecord` per committing transaction *that
wrote something*.  Read-only transactions (including transactions whose only
"write" is a commercial-style ``SELECT FOR UPDATE`` lock) append nothing —
the asymmetry that drives the paper's MPL-1 analysis: a strategy that turns
the read-only Balance program into an updater makes every transaction pay a
log-disk write.

The performance simulator does not move bytes; it charges the *flush* to a
group-commit disk resource (:class:`repro.sim.resources.GroupCommitLog`).
This module keeps the logical record stream so tests can assert exactly
which transactions would have forced a flush.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.engine.locks import RowId


@dataclass(frozen=True)
class WalRecord:
    """One commit record."""

    commit_ts: int
    txid: int
    label: str
    rows: tuple[RowId, ...]


class WriteAheadLog:
    """Append-only list of commit records, ordered by commit timestamp."""

    def __init__(self) -> None:
        self._records: list[WalRecord] = []

    def append(self, record: WalRecord) -> None:
        if self._records and record.commit_ts <= self._records[-1].commit_ts:
            raise ValueError("WAL records must have increasing commit timestamps")
        self._records.append(record)

    @property
    def records(self) -> tuple[WalRecord, ...]:
        return tuple(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[WalRecord]:
        return iter(self._records)

    def records_for(self, label: str) -> tuple[WalRecord, ...]:
        """All records written by transactions with the given label."""
        return tuple(r for r in self._records if r.label == label)
