"""Exception hierarchy for the repro engine, analysis and network layers.

The hierarchy mirrors the error classes a real SI platform reports:

* :class:`SerializationFailure` corresponds to PostgreSQL's
  ``ERROR: could not serialize access due to concurrent update`` (SQLSTATE
  40001) and the commercial platform's "can't serialize access" error.  The
  workload driver counts these as *aborts* (Figure 6 of the paper).
* :class:`DeadlockError` corresponds to a lock-manager detected deadlock
  (SQLSTATE 40P01).  It is also counted as an abort, with a distinct reason.
* :class:`ApplicationRollback` is raised by transaction programs themselves
  (e.g. TransactSaving with an overdrawing amount); it is an intentional
  rollback, not a concurrency abort.

Error codes (wire contract)
---------------------------

Every class carries a stable machine-readable ``code`` string — the
equivalent of SQLSTATE.  The network layer (:mod:`repro.net`) serializes an
exception as its code + message and the client reconstructs the *same*
class via :func:`error_from_code`, so ``except SerializationFailure:``
works identically against ``local://`` and ``tcp://`` backends.  Codes are
part of the public API: never change one, only add.  Classes that do not
define their own ``code`` inherit the nearest ancestor's and serialize as
that ancestor (:class:`WouldBlock`, for instance, is a session-local
control-flow signal and never crosses the wire).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library.

    ``code`` is the stable machine-readable identifier used by the wire
    protocol; see the module docstring.
    """

    code = "error"


class EngineError(ReproError):
    """Base class for errors raised by the storage/transaction engine."""

    code = "engine"


class TransactionAborted(EngineError):
    """Base class for errors that force the enclosing transaction to abort.

    Attributes
    ----------
    reason:
        Short machine-readable reason tag used by the workload statistics
        (``"serialization"``, ``"deadlock"``, ...).
    """

    reason = "aborted"
    code = "aborted"


class SerializationFailure(TransactionAborted):
    """First-updater-wins / first-committer-wins conflict abort.

    Raised when a transaction attempts to write (or, on the commercial
    platform, ``SELECT ... FOR UPDATE``) a row whose most recent version is
    newer than the transaction's snapshot, or when a blocked writer wakes up
    to find that the lock holder committed a conflicting change.
    """

    reason = "serialization"
    code = "serialization"


class DeadlockError(TransactionAborted):
    """The lock manager found a cycle in the waits-for graph."""

    reason = "deadlock"
    code = "deadlock"


class LockTimeout(TransactionAborted):
    """A lock wait exceeded the configured ``lock_timeout``.

    Corresponds to PostgreSQL's ``ERROR: canceling statement due to lock
    timeout`` (SQLSTATE 55P03) when ``lock_timeout`` is set.  The waiting
    transaction is aborted before the error propagates, so like a deadlock
    it is safe to retry as a new transaction.
    """

    reason = "lock-timeout"
    code = "lock-timeout"


class FaultInjected(TransactionAborted):
    """A fault-injection plan aborted the transaction (chaos testing).

    Semantically equivalent to a spurious server-side abort: the
    transaction's effects are rolled back and retrying as a new
    transaction is safe.
    """

    reason = "fault"
    code = "fault"


class SsiAbort(SerializationFailure):
    """Abort raised by the SSI certifier (engine mode ``SSI``).

    A distinct subclass so experiments can distinguish certifier aborts from
    plain write-write first-updater-wins aborts, while code that merely
    retries can catch :class:`SerializationFailure`.
    """

    reason = "ssi"
    code = "ssi"


class ApplicationRollback(ReproError):
    """A transaction program decided to roll back (business rule).

    E.g. TransactSaving rolls back when the withdrawal would make the savings
    balance negative.  This is *not* a concurrency anomaly.
    """

    reason = "rollback"
    code = "rollback"

    def __init__(self, message: str = "") -> None:
        super().__init__(message or "application rollback")


class IntegrityError(EngineError):
    """A schema constraint (primary key / unique index / type) was violated."""

    code = "integrity"


class DatabaseCrashed(EngineError):
    """The database crashed (or a crash was injected) and must recover.

    Raised by the operation during which the crash happened and by every
    subsequent operation on the crashed instance.  This is *not* a
    :class:`TransactionAborted`: the client cannot simply retry on the same
    database — it must wait for :meth:`~repro.engine.engine.Database.recover`.
    """

    code = "crashed"


class RecoveryError(EngineError):
    """WAL replay failed (corrupt prefix, non-monotonic timestamps, ...)."""

    code = "recovery"


class SchemaError(EngineError):
    """Unknown table/column, or an operation inconsistent with the schema."""

    code = "schema"


class TransactionStateError(EngineError):
    """An operation was issued on a finished or never-started transaction."""

    code = "txn-state"


class AnalysisError(ReproError):
    """Base class for errors in the static/dynamic analysis layers."""

    code = "analysis"


class SpecError(AnalysisError):
    """A :class:`~repro.core.specs.ProgramSpec` declaration is malformed."""

    code = "spec"


class SqlError(ReproError):
    """The mini SQL layer could not parse or execute a statement."""

    code = "sql"


class ProtocolError(ReproError):
    """The wire protocol was violated (bad frame, unknown op, bad field).

    Raised by both sides of a :mod:`repro.net` connection: by the client
    when the server's bytes cannot be decoded, and round-tripped from the
    server when a request was malformed (oversized frame, non-JSON payload,
    unknown operation, missing argument).  A protocol error on the framing
    layer poisons the connection — the peer closes it — while a
    request-level protocol error leaves the connection usable.
    """

    code = "protocol"


class ConnectionClosed(ReproError):
    """The network peer went away (EOF, reset, or explicit shutdown).

    Raised by the client when a request cannot be sent or its response
    never arrives.  If a transaction was in flight, the server has aborted
    it and released its locks — the request may or may not have executed,
    so blind retry is only safe for idempotent operations (the closed-loop
    drivers treat it as a failed attempt and start a fresh transaction).
    """

    code = "connection-closed"


class ShardUnavailable(ConnectionClosed):
    """A cluster shard is marked unhealthy — fail fast instead of dialing.

    Raised by :class:`repro.cluster.ClusterConnection` when health
    tracking (heartbeats) has declared a shard down.  Semantically a
    connection failure, but typed so chaos harnesses and retry loops can
    distinguish "known-down shard, back off and wait for recovery" from a
    fresh connection error.
    """

    code = "shard-unavailable"


class CoordinatorCrashed(ReproError):
    """The 2PC coordinator died inside the prepare→decision window.

    The outcome of the global transaction is *unknown* to the caller:
    every participant voted YES, but whether the commit decision reached
    the coordinator's durable log decides commit vs presumed abort.  This
    is deliberately **not** a :class:`TransactionAborted` — the
    transaction may still commit during recovery, so the caller must not
    blindly re-execute it; it must wait for in-doubt resolution
    (:meth:`repro.cluster.ClusterConnection.resolve_in_doubt`).
    """

    code = "coordinator-crashed"

    def __init__(self, message: str = "", gtid: str = "") -> None:
        super().__init__(message or "coordinator crashed before the decision landed")
        self.gtid = gtid


# ----------------------------------------------------------------------
# Code registry (wire round-trip)
# ----------------------------------------------------------------------
def _build_registry() -> dict[str, type]:
    registry: dict[str, type] = {}
    stack: list[type] = [ReproError]
    while stack:
        cls = stack.pop()
        stack.extend(cls.__subclasses__())
        code = cls.__dict__.get("code")
        if code is None:
            continue  # inherits its ancestor's code; serializes as that
        if code in registry and registry[code] is not cls:
            raise RuntimeError(
                f"duplicate error code {code!r}: "
                f"{registry[code].__name__} vs {cls.__name__}"
            )
        registry[code] = cls
    return registry


#: ``code -> exception class`` for every class defining its own code.
ERROR_CODES: dict[str, type] = _build_registry()


def error_from_code(code: str, message: str = "") -> ReproError:
    """Reconstruct the exception class registered for ``code``.

    Unknown codes (a newer peer) degrade to a plain :class:`ReproError`
    carrying the original code in the message, so nothing is silently
    swallowed.
    """
    cls = ERROR_CODES.get(code)
    if cls is None:
        return ReproError(f"[{code}] {message}")
    return cls(message)
