"""Exception hierarchy for the repro engine and analysis layers.

The hierarchy mirrors the error classes a real SI platform reports:

* :class:`SerializationFailure` corresponds to PostgreSQL's
  ``ERROR: could not serialize access due to concurrent update`` (SQLSTATE
  40001) and the commercial platform's "can't serialize access" error.  The
  workload driver counts these as *aborts* (Figure 6 of the paper).
* :class:`DeadlockError` corresponds to a lock-manager detected deadlock
  (SQLSTATE 40P01).  It is also counted as an abort, with a distinct reason.
* :class:`ApplicationRollback` is raised by transaction programs themselves
  (e.g. TransactSaving with an overdrawing amount); it is an intentional
  rollback, not a concurrency abort.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class EngineError(ReproError):
    """Base class for errors raised by the storage/transaction engine."""


class TransactionAborted(EngineError):
    """Base class for errors that force the enclosing transaction to abort.

    Attributes
    ----------
    reason:
        Short machine-readable reason tag used by the workload statistics
        (``"serialization"``, ``"deadlock"``, ...).
    """

    reason = "aborted"


class SerializationFailure(TransactionAborted):
    """First-updater-wins / first-committer-wins conflict abort.

    Raised when a transaction attempts to write (or, on the commercial
    platform, ``SELECT ... FOR UPDATE``) a row whose most recent version is
    newer than the transaction's snapshot, or when a blocked writer wakes up
    to find that the lock holder committed a conflicting change.
    """

    reason = "serialization"


class DeadlockError(TransactionAborted):
    """The lock manager found a cycle in the waits-for graph."""

    reason = "deadlock"


class LockTimeout(TransactionAborted):
    """A lock wait exceeded the configured ``lock_timeout``.

    Corresponds to PostgreSQL's ``ERROR: canceling statement due to lock
    timeout`` (SQLSTATE 55P03) when ``lock_timeout`` is set.  The waiting
    transaction is aborted before the error propagates, so like a deadlock
    it is safe to retry as a new transaction.
    """

    reason = "lock-timeout"


class FaultInjected(TransactionAborted):
    """A fault-injection plan aborted the transaction (chaos testing).

    Semantically equivalent to a spurious server-side abort: the
    transaction's effects are rolled back and retrying as a new
    transaction is safe.
    """

    reason = "fault"


class SsiAbort(SerializationFailure):
    """Abort raised by the SSI certifier (engine mode ``SSI``).

    A distinct subclass so experiments can distinguish certifier aborts from
    plain write-write first-updater-wins aborts, while code that merely
    retries can catch :class:`SerializationFailure`.
    """

    reason = "ssi"


class ApplicationRollback(ReproError):
    """A transaction program decided to roll back (business rule).

    E.g. TransactSaving rolls back when the withdrawal would make the savings
    balance negative.  This is *not* a concurrency anomaly.
    """

    reason = "rollback"

    def __init__(self, message: str = "") -> None:
        super().__init__(message or "application rollback")


class IntegrityError(EngineError):
    """A schema constraint (primary key / unique index / type) was violated."""


class DatabaseCrashed(EngineError):
    """The database crashed (or a crash was injected) and must recover.

    Raised by the operation during which the crash happened and by every
    subsequent operation on the crashed instance.  This is *not* a
    :class:`TransactionAborted`: the client cannot simply retry on the same
    database — it must wait for :meth:`~repro.engine.engine.Database.recover`.
    """


class RecoveryError(EngineError):
    """WAL replay failed (corrupt prefix, non-monotonic timestamps, ...)."""


class SchemaError(EngineError):
    """Unknown table/column, or an operation inconsistent with the schema."""


class TransactionStateError(EngineError):
    """An operation was issued on a finished or never-started transaction."""


class AnalysisError(ReproError):
    """Base class for errors in the static/dynamic analysis layers."""


class SpecError(AnalysisError):
    """A :class:`~repro.core.specs.ProgramSpec` declaration is malformed."""


class SqlError(ReproError):
    """The mini SQL layer could not parse or execute a statement."""
