"""Fault injection: deterministic chaos for the engine, simulator and drivers.

See :mod:`repro.faults.plan` for the model and the list of injection
points.  Everything is strictly opt-in: with no :class:`FaultPlan`
installed, every hook is a no-op and executions are unchanged.
"""

from repro.faults.plan import (
    INJECTION_POINTS,
    FaultPlan,
    FaultSpec,
    plan_from_json,
)

__all__ = ["FaultPlan", "FaultSpec", "INJECTION_POINTS", "plan_from_json"]
