"""Deterministic, seedable fault injection.

A :class:`FaultPlan` is a passive oracle: code at an *injection point* asks
:meth:`FaultPlan.should_fire` and acts on the answer.  The plan never
reaches into the engine itself, so with no plan installed every hook is a
``None`` check and the seed figures stay bit-identical.

Injection points wired into the system (see :data:`INJECTION_POINTS`):

``abort-at-commit``
    :meth:`repro.engine.engine.Database.commit` aborts the transaction and
    raises :class:`~repro.errors.FaultInjected` — a spurious server-side
    abort, safe to retry.
``crash-mid-commit``
    ``Database.commit`` crashes the engine *after* appending the commit's
    WAL record but *before* flushing it — the power-failure window.  The
    committer sees :class:`~repro.errors.DatabaseCrashed`; the record must
    vanish on recovery.
``wal-stall``
    :class:`repro.sim.resources.GroupCommitLog` adds ``magnitude`` seconds
    of latency to the flush (a disk hiccup / write-cache destage stall).
``client-death``
    A workload client (simulated or threaded) dies at the top of its loop
    instead of issuing another transaction.
``lock-timeout``
    :class:`repro.engine.session.Session` treats the next lock wait as an
    expired lock-wait timeout: the transaction aborts with
    :class:`~repro.errors.LockTimeout` without waiting.
``net-drop-frame``
    :class:`repro.net.DatabaseServer` drops one outbound response frame
    (the request *did* execute).  The client hangs until its per-RPC
    deadline expires and surfaces :class:`~repro.errors.ConnectionClosed`.
``net-delay-frame``
    The server holds one outbound response (and, to preserve the
    connection's response ordering, everything queued behind it) for
    ``magnitude`` seconds before delivery.
``conn-reset``
    The server abruptly closes the transport instead of answering — the
    client sees EOF/ECONNRESET mid-stream; any open transaction on the
    connection is reaped server-side.
``net-dup-decision``
    :class:`repro.cluster.TwoPhaseCoordinator` delivers a commit decision
    to a participant *twice*, exercising the idempotent-redelivery
    contract of ``COMMIT_2PC``.
``shard-crash``
    A chaos controller (see :mod:`repro.cluster.chaos`) crashes one shard
    — abrupt ``Database.crash`` plus server teardown — and restarts it on
    the same port after ``magnitude`` seconds of downtime.
``coordinator-crash-window``
    :class:`repro.cluster.TwoPhaseCoordinator` dies inside the protocol's
    in-doubt window: after every participant voted YES, before any
    decision lands.  Fires alternate between crashing *before* the
    decision reaches the durable log (recovery presumes abort) and
    *after* (recovery re-delivers the commit), covering both recovery
    paths.  Raises :class:`~repro.errors.CoordinatorCrashed`.

Determinism: every probabilistic decision draws from one private
``random.Random`` seeded at construction, consumed in call order under a
lock, so a single-threaded run (the simulator, a sequential chaos loop)
replays identically for the same seed.
"""

from __future__ import annotations

import random
import threading
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Optional

#: The injection points the engine, simulator and drivers consult.
INJECTION_POINTS = frozenset(
    {
        "abort-at-commit",
        "crash-mid-commit",
        "wal-stall",
        "client-death",
        "lock-timeout",
        "net-drop-frame",
        "net-delay-frame",
        "net-dup-decision",
        "conn-reset",
        "shard-crash",
        "coordinator-crash-window",
    }
)


@dataclass(frozen=True)
class FaultSpec:
    """When and how one injection point misbehaves.

    Attributes
    ----------
    point:
        One of :data:`INJECTION_POINTS`.
    probability:
        Chance of firing per opportunity (1.0 = always).
    start_after:
        Skip the first ``start_after`` opportunities (lets a run warm up
        before chaos begins).
    max_fires:
        Stop firing after this many injections (``None`` = unlimited).
    magnitude:
        Point-specific intensity — seconds of stall for ``wal-stall``,
        of response delay for ``net-delay-frame``, of shard downtime for
        ``shard-crash``; unused elsewhere.
    """

    point: str
    probability: float = 1.0
    start_after: int = 0
    max_fires: Optional[int] = None
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        if self.point not in INJECTION_POINTS:
            known = ", ".join(sorted(INJECTION_POINTS))
            raise ValueError(f"unknown injection point {self.point!r}; known: {known}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.start_after < 0:
            raise ValueError("start_after must be non-negative")
        if self.max_fires is not None and self.max_fires < 0:
            raise ValueError("max_fires must be non-negative")
        if self.magnitude < 0:
            raise ValueError("magnitude must be non-negative")


class FaultPlan:
    """A seeded set of :class:`FaultSpec` rules plus firing statistics.

    Thread-safe: opportunities are counted and random draws made under a
    lock, so the threaded driver can share one plan across workers.
    """

    def __init__(self, specs: Iterable[FaultSpec] = (), seed: int = 0) -> None:
        self._specs: dict[str, FaultSpec] = {}
        for spec in specs:
            if spec.point in self._specs:
                raise ValueError(f"duplicate spec for injection point {spec.point!r}")
            self._specs[spec.point] = spec
        self.seed = seed
        self._rng = random.Random(f"fault-plan/{seed}")
        self._lock = threading.Lock()
        #: How many times each point was consulted.
        self.opportunities: Counter = Counter()
        #: How many times each point actually fired.
        self.injections: Counter = Counter()

    # ------------------------------------------------------------------
    def covers(self, point: str) -> bool:
        return point in self._specs

    def should_fire(self, point: str) -> bool:
        """Consult the plan at ``point``; records the opportunity either way."""
        if point not in INJECTION_POINTS:
            raise ValueError(f"unknown injection point {point!r}")
        with self._lock:
            seen = self.opportunities[point]
            self.opportunities[point] += 1
            spec = self._specs.get(point)
            if spec is None:
                return False
            if seen < spec.start_after:
                return False
            if spec.max_fires is not None and self.injections[point] >= spec.max_fires:
                return False
            if spec.probability >= 1.0:
                fire = True
            elif spec.probability <= 0.0:
                fire = False
            else:
                fire = self._rng.random() < spec.probability
            if fire:
                self.injections[point] += 1
            return fire

    def magnitude(self, point: str) -> float:
        """The intensity configured for ``point`` (0.0 when unconfigured)."""
        spec = self._specs.get(point)
        return spec.magnitude if spec is not None else 0.0

    def fired(self, point: str) -> int:
        """How many injections have happened at ``point`` so far."""
        return self.injections[point]

    # ------------------------------------------------------------------
    # Serialisation — how a parent ships a fault schedule to a shard
    # process (repro.cluster.fleet) over argv / the control channel.
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """JSON text rebuilding an *equivalent fresh* plan (statistics and
        RNG position are not carried — the receiver starts a new draw
        sequence from the same seed)."""
        import json

        return json.dumps(
            {
                "seed": self.seed,
                "specs": [
                    {
                        "point": spec.point,
                        "probability": spec.probability,
                        "start_after": spec.start_after,
                        "max_fires": spec.max_fires,
                        "magnitude": spec.magnitude,
                    }
                    for _point, spec in sorted(self._specs.items())
                ],
            },
            sort_keys=True,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        points = ", ".join(sorted(self._specs)) or "<empty>"
        return f"FaultPlan(seed={self.seed}, points=[{points}])"


def plan_from_json(text: str) -> FaultPlan:
    """Inverse of :meth:`FaultPlan.to_json`."""
    import json

    data = json.loads(text)
    specs = [
        FaultSpec(
            point=item["point"],
            probability=item.get("probability", 1.0),
            start_after=item.get("start_after", 0),
            max_fires=item.get("max_fires"),
            magnitude=item.get("magnitude", 0.0),
        )
        for item in data.get("specs", ())
    ]
    return FaultPlan(specs, seed=data.get("seed", 0))
