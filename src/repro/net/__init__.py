"""``repro.net`` — the network service layer (DESIGN.md §11).

Server side: :class:`DatabaseServer` hosts one
:class:`~repro.engine.engine.Database` behind a length-prefixed JSON
protocol over TCP.  Client side: :class:`NetworkConnection` implements
the :class:`repro.api.Connection` facade over a pool of framed sockets,
so ``repro.connect("tcp://host:port")`` is a drop-in replacement for the
in-process backend.

The protocol itself (framing, operations, error round-trip) lives in
:mod:`repro.net.protocol`.
"""

from repro.net.client import NetworkConnection, NetworkSession, WireConnection
from repro.net.protocol import (
    DEFAULT_MAX_FRAME,
    REQUEST_OPS,
    FrameDecoder,
    decode_payload,
    encode_frame,
)
from repro.net.server import DatabaseServer

__all__ = [
    "DatabaseServer",
    "DEFAULT_MAX_FRAME",
    "FrameDecoder",
    "NetworkConnection",
    "NetworkSession",
    "REQUEST_OPS",
    "WireConnection",
    "decode_payload",
    "encode_frame",
]
