"""``python -m repro.net`` — run a standalone SmallBank database server.

Builds a populated SmallBank :class:`~repro.engine.engine.Database` —
optionally one *shard slice* of a hash-partitioned population,
bit-identical to :func:`repro.cluster.partition.build_shard_database`
under the same seed — and serves it over the wire protocol until stdin
reaches EOF (the portable subprocess-control convention: the parent
closes our stdin — or exits, which closes it too — and we shut down
gracefully).

Protocol with the parent process, line-oriented stdout / stdin::

    LISTENING <port>        once the socket is bound (again after RECOVER)
    STATS <json>            final server counters, after graceful shutdown

    CRASH                   power-fail the engine, stop serving; salvages
                            the recorded history up to the durable WAL
                            horizon (--record) -> CRASHED
    RECOVER                 rebuild from durable state, serve again on
                            the *same* port -> LISTENING <port>
    DUMP <path>             write the committed history (salvaged prefix
                            + live recorder) as JSONL -> DUMPED <n>
    FAULTS <json|off>       install / clear a FaultPlan on the live
                            server -> FAULTS ok
    PING                    liveness of the control channel -> PONG

The control channel is what lets :mod:`repro.cluster.fleet` drive
*engine-level* crash/recovery inside a surviving OS process: the WAL is
in-memory, so killing the process would lose durable state — the crash
model is power failure of the database, not loss of the machine.

Used by ``benchmarks/bench_net.py`` and the cluster fleet to run
servers from a *separate* process — client threads and the server loop
each get their own interpreter (and GIL), exactly like a real
deployment — and handy for manual experiments::

    PYTHONPATH=src python -m repro.net --port 7654 --customers 100 &
    PYTHONPATH=src python -c "
    import repro
    conn = repro.connect('tcp://127.0.0.1:7654')
    print(conn.stats())"
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.api import ISOLATION_CONFIGS
from repro.net.server import DatabaseServer
from repro.obs import Observability
from repro.smallbank import PopulationConfig, build_database

#: Shard-slice txid epoch stride for crash salvage — matches the
#: in-process :class:`repro.cluster.Cluster` so merged traces from
#: either process model look identical.
SALVAGE_EPOCH_STRIDE = 10_000_000


def build_served_database(
    *,
    customers: int,
    isolation: str = "si",
    seed: "int | None" = None,
    shard_index: int = 0,
    shard_count: int = 1,
    partitioner: str = "hash",
):
    """The database one ``python -m repro.net`` process serves.

    With ``shard_count > 1`` this is one shard's slice of the hash
    partitioned population, drawn in exactly the single-node RNG order —
    the standalone-process path and
    :func:`repro.cluster.partition.build_shard_database` must stay
    bit-identical (tested by ``tests/test_cluster_fleet.py``).
    """
    if partitioner != "hash":
        raise ValueError(f"unknown partitioner {partitioner!r}; known: hash")
    population = (
        PopulationConfig(customers=customers)
        if seed is None
        else PopulationConfig(customers=customers, seed=seed)
    )
    if shard_count > 1:
        from repro.cluster.partition import build_shard_database

        return build_shard_database(
            ISOLATION_CONFIGS[isolation](),
            population,
            shard_index=shard_index,
            shard_count=shard_count,
        )
    return build_database(ISOLATION_CONFIGS[isolation](), population)


def _control_loop(args, db, recorder, server, plan) -> tuple:
    """Serve until EOF, honouring the line-oriented control commands.

    Returns ``(db, server, crashed)`` — the engine and server may have
    been replaced by CRASH/RECOVER cycles.
    """
    from repro.analysis.recorder import dump_history_jsonl, salvage_durable_history
    from repro.faults import plan_from_json

    history_prefix: list = []
    salvage_epoch = 0
    crashed = False
    port = server.port
    while True:
        try:
            line = sys.stdin.readline()
        except KeyboardInterrupt:
            break
        if not line:  # EOF: parent closed our stdin (or died)
            break
        command, _, rest = line.strip().partition(" ")
        rest = rest.strip()
        if not command:
            continue
        if command == "PING":
            print("PONG", flush=True)
        elif command == "CRASH":
            if crashed:
                print("ERR already crashed", flush=True)
                continue
            db.crash()
            server.shutdown()
            if recorder is not None:
                salvage_epoch += 1
                history_prefix.extend(
                    salvage_durable_history(
                        db,
                        recorder,
                        txid_offset=salvage_epoch * SALVAGE_EPOCH_STRIDE,
                    )
                )
                recorder.clear()
            crashed = True
            print("CRASHED", flush=True)
        elif command == "RECOVER":
            if not crashed:
                print("ERR not crashed", flush=True)
                continue
            # recover() carries observers (the recorder) and the fault
            # plan over to the rebuilt engine; rebind the same port so
            # clients reconnect transparently.
            db = db.recover()
            server = DatabaseServer(
                db,
                host=args.host,
                port=port,
                max_connections=args.max_connections,
                backpressure=not args.reject,
                obs=server.obs,
                autovacuum_interval=args.autovacuum,
                fault_plan=plan,
            ).start_in_thread()
            crashed = False
            print(f"LISTENING {server.port}", flush=True)
        elif command == "DUMP":
            if not rest:
                print("ERR DUMP needs a path", flush=True)
                continue
            committed = tuple(history_prefix)
            if recorder is not None:
                committed += recorder.committed
            count = dump_history_jsonl(rest, committed)
            print(f"DUMPED {count}", flush=True)
        elif command == "FAULTS":
            plan = None if rest in ("", "off", "none") else plan_from_json(rest)
            if not crashed:
                server.install_faults(plan)
            print("FAULTS ok", flush=True)
        else:
            print(f"ERR unknown command {command!r}", flush=True)
    return db, server, crashed


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="0 picks an ephemeral port"
    )
    parser.add_argument("--customers", type=int, default=100)
    parser.add_argument(
        "--isolation", default="si", choices=sorted(ISOLATION_CONFIGS)
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="population seed (default: the canonical SmallBank seed)",
    )
    parser.add_argument(
        "--shard-index", type=int, default=0,
        help="serve one shard of a hash-partitioned population",
    )
    parser.add_argument(
        "--shard-count", type=int, default=1,
        help="total shards the population is partitioned across",
    )
    parser.add_argument(
        "--partitioner", default="hash", choices=("hash",),
        help="partitioning scheme for the shard slice",
    )
    parser.add_argument(
        "--autovacuum", type=float, default=None, metavar="SECONDS",
        help="run the version-chain vacuum periodically",
    )
    parser.add_argument(
        "--record", action="store_true",
        help="attach an ExecutionRecorder (enables DUMP and crash salvage)",
    )
    parser.add_argument(
        "--faults", default=None, metavar="JSON",
        help="install a FaultPlan (FaultPlan.to_json format) at startup",
    )
    parser.add_argument("--max-connections", type=int, default=64)
    parser.add_argument(
        "--reject", action="store_true",
        help="refuse connections over the limit instead of queueing them",
    )
    parser.add_argument(
        "--obs", action="store_true",
        help="install an Observability bundle on the hosted database",
    )
    args = parser.parse_args(argv)

    db = build_served_database(
        customers=args.customers,
        isolation=args.isolation,
        seed=args.seed,
        shard_index=args.shard_index,
        shard_count=args.shard_count,
        partitioner=args.partitioner,
    )
    recorder = None
    if args.record:
        from repro.analysis.recorder import record_database

        recorder = record_database(db)
    plan = None
    if args.faults:
        from repro.faults import plan_from_json

        plan = plan_from_json(args.faults)
    server = DatabaseServer(
        db,
        host=args.host,
        port=args.port,
        max_connections=args.max_connections,
        backpressure=not args.reject,
        obs=Observability() if args.obs else None,
        autovacuum_interval=args.autovacuum,
        fault_plan=plan,
    ).start_in_thread()
    print(f"LISTENING {server.port}", flush=True)
    db, server, crashed = _control_loop(args, db, recorder, server, plan)
    if not crashed:
        server.shutdown()
    print(f"STATS {json.dumps(server.stats(), sort_keys=True)}", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
