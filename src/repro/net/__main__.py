"""``python -m repro.net`` — run a standalone SmallBank database server.

Builds a populated SmallBank :class:`~repro.engine.engine.Database` and
serves it over the wire protocol until stdin reaches EOF (the portable
subprocess-control convention: the parent closes our stdin — or exits,
which closes it too — and we shut down gracefully).

Protocol with the parent process, line-oriented on stdout::

    LISTENING <port>        once the socket is bound
    STATS <json>            final server counters, after graceful shutdown

Used by ``benchmarks/bench_net.py`` to measure the service layer from a
*separate* process — client threads and the server loop each get their
own interpreter (and GIL), exactly like a real deployment — and handy for
manual experiments::

    PYTHONPATH=src python -m repro.net --port 7654 --customers 100 &
    PYTHONPATH=src python -c "
    import repro
    conn = repro.connect('tcp://127.0.0.1:7654')
    print(conn.stats())"
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.api import ISOLATION_CONFIGS
from repro.net.server import DatabaseServer
from repro.obs import Observability
from repro.smallbank import PopulationConfig, build_database


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="0 picks an ephemeral port"
    )
    parser.add_argument("--customers", type=int, default=100)
    parser.add_argument(
        "--isolation", default="si", choices=sorted(ISOLATION_CONFIGS)
    )
    parser.add_argument(
        "--shard-index", type=int, default=0,
        help="serve one shard of a hash-partitioned population",
    )
    parser.add_argument(
        "--shard-count", type=int, default=1,
        help="total shards the population is partitioned across",
    )
    parser.add_argument(
        "--autovacuum", type=float, default=None, metavar="SECONDS",
        help="run the version-chain vacuum periodically",
    )
    parser.add_argument("--max-connections", type=int, default=64)
    parser.add_argument(
        "--reject", action="store_true",
        help="refuse connections over the limit instead of queueing them",
    )
    parser.add_argument(
        "--obs", action="store_true",
        help="install an Observability bundle on the hosted database",
    )
    args = parser.parse_args(argv)

    if args.shard_count > 1:
        from repro.cluster.partition import build_shard_database

        db = build_shard_database(
            ISOLATION_CONFIGS[args.isolation](),
            PopulationConfig(customers=args.customers),
            shard_index=args.shard_index,
            shard_count=args.shard_count,
        )
    else:
        db = build_database(
            ISOLATION_CONFIGS[args.isolation](),
            PopulationConfig(customers=args.customers),
        )
    server = DatabaseServer(
        db,
        host=args.host,
        port=args.port,
        max_connections=args.max_connections,
        backpressure=not args.reject,
        obs=Observability() if args.obs else None,
        autovacuum_interval=args.autovacuum,
    ).start_in_thread()
    print(f"LISTENING {server.port}", flush=True)
    try:
        sys.stdin.read()  # block until the parent closes our stdin
    except KeyboardInterrupt:
        pass
    server.shutdown()
    print(f"STATS {json.dumps(server.stats(), sort_keys=True)}", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
