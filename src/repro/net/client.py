"""``repro.net.client`` — the synchronous network backend of the facade.

:class:`NetworkConnection` implements the :class:`repro.api.Connection`
surface over a pool of :class:`WireConnection` sockets;
:meth:`NetworkConnection.session` hands out a :class:`NetworkSession`
that mirrors the statement surface of the in-process
:class:`~repro.engine.session.Session`, so the SmallBank programs, the
mini-SQL executor and the threaded driver run against it unmodified.

Semantics notes
---------------

* One wire connection == one server session == at most one transaction,
  exactly the engine's session model.  ``session()`` checks a wire out of
  the pool; ``session.close()`` returns it (rolling back first if a
  transaction is still open).  Broken wires are discarded, never pooled.
* ``timeout`` bounds *connection establishment* (and pool checkout).
  RPCs then block until the server answers: a lock wait on the server can
  legitimately take as long as the engine's ``lock_timeout`` policy
  allows, and cutting it short client-side would distort the measured
  contention behaviour the reproduction exists to observe.
* ``update(..., changes)`` with a callable is evaluated client-side: READ
  the row, apply the callable, WRITE the merged row back — the same
  read-then-write engine footprint a local ``update`` has.
* Errors round-trip by class: a server-side
  :class:`~repro.errors.SerializationFailure` raises as a
  ``SerializationFailure`` here (see :mod:`repro.net.protocol`), so retry
  policies behave identically over the wire.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from typing import TYPE_CHECKING, Callable, Hashable, Mapping, Optional, Union

from repro.api import Connection
from repro.errors import (
    ConnectionClosed,
    ProtocolError,
    ReproError,
    TransactionAborted,
    TransactionStateError,
)
from repro.net.protocol import (
    DEFAULT_MAX_FRAME,
    FrameDecoder,
    encode_frame,
    raise_error_payload,
)
from repro.sqlmini.ast import Select, params_in, statement_params
from repro.sqlmini.executor import StatementResult, parse_cached

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids workload cycle)
    from repro.obs import Observability
    from repro.workload.retry import RetryPolicy

Row = dict
Changes = Union[Mapping[str, object], Callable[[Row], Mapping[str, object]]]


class WireConnection:
    """One framed socket to a :class:`repro.net.DatabaseServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: Optional[float] = 10.0,
        max_frame: int = DEFAULT_MAX_FRAME,
        rpc_deadline: Optional[float] = None,
    ) -> None:
        self.max_frame = max_frame
        self.broken = False
        #: Per-RPC response deadline in seconds (None = block until the
        #: server answers — the default; see module docstring for why).
        self.rpc_deadline = rpc_deadline
        try:
            self.sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            raise ConnectionClosed(
                f"cannot connect to {host}:{port}: {exc}"
            ) from None
        # Connected: from here on RPCs block until the server answers
        # (unless an explicit ``rpc_deadline`` bounds them).  Frames are
        # small and latency-bound: disable Nagle.
        self.sock.settimeout(rpc_deadline)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._lock = threading.Lock()
        self._decoder = FrameDecoder(max_frame)
        self._inbox: "list[dict]" = []
        #: Encoded-but-unsent request frames (pipelined statements).
        #: Flushed as ONE ``sendall`` by the next synchronous RPC, so a
        #: whole batch reaches the server in a single segment and is
        #: answered in a single reply burst — one round trip total.
        self._sendbuf: "list[bytes]" = []
        #: Responses owed to fire-and-forget requests (deferred-ack
        #: read-only COMMITs, see :meth:`NetworkSession.commit`): the
        #: next read on this wire silently consumes them first.
        self._owed = 0

    def _recv_chunk(self) -> bytes:
        """One ``recv``; deadline expiry and EOF surface as ConnectionClosed."""
        try:
            chunk = self.sock.recv(65536)
        except socket.timeout:
            raise ConnectionClosed(
                f"no response within the {self.sock.gettimeout()}s RPC deadline"
            ) from None
        except OSError as exc:
            raise ConnectionClosed(
                f"socket error while receiving: {exc}"
            ) from None
        if not chunk:
            # Raises ConnectionClosed itself if the close truncated a
            # frame (poisoning the decoder), else we report the clean EOF.
            self._decoder.feed_eof()
            raise ConnectionClosed("server closed the connection")
        return chunk

    def _read_response(self) -> dict:
        """One buffered-frame read (usually a single ``recv`` syscall)."""
        if self._sendbuf:  # never block on responses to unsent requests
            self._flush_locked()
        while True:
            while not self._inbox:
                self._inbox.extend(self._decoder.feed(self._recv_chunk()))
            frame = self._inbox.pop(0)
            if self._owed:
                # Deferred ack: only ever issued for operations that
                # cannot fail (read-only SI COMMIT), so an error here is
                # a protocol invariant violation, not a request outcome.
                self._owed -= 1
                if not frame.get("ok"):
                    raise ProtocolError(
                        "deferred-ack request failed on the server: "
                        f"{frame.get('error')!r}"
                    )
                continue
            return frame

    def _flush_locked(self) -> None:
        data = b"".join(self._sendbuf)
        self._sendbuf.clear()
        try:
            self.sock.sendall(data)
        except (ConnectionError, socket.timeout, OSError) as exc:
            raise ConnectionClosed(f"socket error while sending: {exc}") from None

    def buffer(self, op: str, args: Mapping[str, object]) -> dict:
        """Encode one request and queue it for the next flush.

        Returns the message dict so a caller may amend-and-re-encode it
        while it is still the last unsent frame (COMMIT piggybacking —
        see :meth:`NetworkSession.commit`).
        """
        if self.broken:
            raise ConnectionClosed("wire connection already failed")
        message: dict = {"op": op}
        message.update(args)
        self._sendbuf.append(encode_frame(message))
        return message

    def send(self, op: str, args: Mapping[str, object]) -> None:
        """Flush queued frames plus this request in one ``sendall``."""
        self.buffer(op, args)
        try:
            with self._lock:
                self._flush_locked()
        except (ConnectionClosed, ProtocolError):
            self.broken = True
            raise

    def recv(self) -> dict:
        """Read one raw response frame (no ``ok`` interpretation)."""
        try:
            with self._lock:
                return self._read_response()
        except (ConnectionClosed, ProtocolError):
            self.broken = True
            raise

    def call(
        self,
        op: str,
        args: Mapping[str, object],
        deadline: Optional[float] = None,
    ) -> dict:
        """One request/response round trip; raises the server's error.

        ``deadline`` bounds *this* call's response wait (overriding the
        wire's ``rpc_deadline`` for its duration); expiry breaks the wire
        — a late response could not be paired with its request anyway.
        """
        self.buffer(op, args)
        try:
            with self._lock:
                if deadline is not None and deadline != self.rpc_deadline:
                    self.sock.settimeout(deadline)
                    try:
                        self._flush_locked()
                        response = self._read_response()
                    finally:
                        try:
                            self.sock.settimeout(self.rpc_deadline)
                        except OSError:  # pragma: no cover - broken socket
                            self.broken = True
                else:
                    self._flush_locked()
                    response = self._read_response()
        except (ConnectionClosed, ProtocolError):
            self.broken = True
            raise
        if response.get("ok"):
            return response
        raise_error_payload(response.get("error"))
        raise AssertionError("unreachable")  # pragma: no cover

    def drain_owed(self) -> None:
        """Send queued frames and consume every owed deferred ack.

        Leaves the wire perfectly quiescent: no unsent requests, no
        unread responses.  Used to settle deferred read-only COMMITs
        whose server-side transaction would otherwise stay open until
        the wire's next use (e.g. before reading an execution trace).
        """
        try:
            with self._lock:
                if self._sendbuf:
                    self._flush_locked()
                while self._owed:
                    while not self._inbox:
                        self._inbox.extend(
                            self._decoder.feed(self._recv_chunk())
                        )
                    frame = self._inbox.pop(0)
                    self._owed -= 1
                    if not frame.get("ok"):
                        raise ProtocolError(
                            "deferred-ack request failed on the server: "
                            f"{frame.get('error')!r}"
                        )
        except (ConnectionClosed, ProtocolError):
            self.broken = True
            raise

    def close(self) -> None:
        self.broken = True
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass


class _RemoteTransaction:
    """Client-side stand-in for the engine's ``Transaction`` handle.

    ``txid`` / ``snapshot_ts`` are ``None`` until the deferred BEGIN
    reaches the server (piggybacked on the transaction's first statement
    — see :meth:`NetworkSession.begin`).
    """

    __slots__ = ("txid", "snapshot_ts", "label", "_session")

    def __init__(
        self,
        txid: Optional[int],
        snapshot_ts: Optional[int],
        label: str,
        session: "NetworkSession",
    ) -> None:
        self.txid = txid
        self.snapshot_ts = snapshot_ts
        self.label = label
        self._session = session

    @property
    def is_active(self) -> bool:
        return self._session.in_transaction

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RemoteTransaction txid={self.txid} label={self.label!r}>"


class _PendingStatementResult:
    """Lazy result of a pipelined (fire-and-forget) statement.

    Non-SELECT statements are shipped without waiting for their response;
    the response is collected at the next synchronous RPC (usually the
    COMMIT), batching round trips.  SmallBank programs never look at
    UPDATE results, so the laziness is invisible — but a caller that does
    touch ``rows`` / ``rowcount`` forces the drain and sees the same
    values (and the same errors) an eager call would have produced.
    """

    __slots__ = ("_session", "_result", "_error", "_sid_key", "_params", "_delta")

    def __init__(
        self,
        session: "NetworkSession",
        sid_key: "Optional[tuple[str, Optional[str]]]" = None,
    ) -> None:
        self._session = session
        self._result: Optional[StatementResult] = None
        self._error: Optional[dict] = None
        self._sid_key = sid_key
        #: For pipelined SELECTs: the program's params dict, written back
        #: (real values replacing :class:`_LazyBinding` placeholders) when
        #: the response arrives.
        self._params: "Optional[dict[str, object]]" = None
        self._delta: "Optional[dict]" = None

    def _resolve(self, response: dict) -> None:
        if response.get("ok"):
            self._result = StatementResult(
                rows=list(response.get("rows") or []),
                rowcount=int(response.get("rowcount") or 0),
            )
            delta = response.get("params")
            self._delta = delta if isinstance(delta, dict) else {}
            if self._params is not None:
                self._params.update(self._delta)
            if self._sid_key is not None and "sid" in response:
                self._session._connection._sids[self._sid_key] = int(
                    response["sid"]
                )
        else:
            self._error = dict(response.get("error") or {})

    def _force(self) -> StatementResult:
        if self._result is None and self._error is None:
            self._session._sync()
        if self._error is not None:
            raise_error_payload(self._error)
        assert self._result is not None
        return self._result

    def _binding(self, key: str) -> object:
        """The value the statement bound for ``INTO :key`` (forces)."""
        self._force()
        assert self._delta is not None
        if key in self._delta:
            return self._delta[key]
        # The SELECT matched no row, so it bound nothing: surface the
        # same KeyError a local program reading the never-set parameter
        # out of its params dict would have seen.
        raise KeyError(key)

    @property
    def rows(self) -> list:
        return self._force().rows

    @property
    def rowcount(self) -> int:
        return self._force().rowcount


class _LazyBinding:
    """Placeholder for an ``INTO :var`` binding of a pipelined SELECT.

    Any *value* use — arithmetic, ``float()``/``int()``, comparison,
    ``str()``, formatting, truthiness — forces the pipeline drain and
    behaves like the real bound value.  Identity tests (``x is None``)
    cannot be intercepted and do **not** force, which is exactly why only
    *dependent* SELECTs are pipelined (see
    :meth:`NetworkSession.execute_prepared`): the idiomatic existence
    check ``params.get("x") is None`` only ever targets the synchronous,
    externally-keyed lookups.  ``repr()`` deliberately never forces so
    debuggers and log statements stay side-effect-free.
    """

    __slots__ = ("_placeholder", "_key")

    def __init__(self, placeholder: _PendingStatementResult, key: str) -> None:
        self._placeholder = placeholder
        self._key = key

    def _value(self) -> object:
        return self._placeholder._binding(self._key)

    def __repr__(self) -> str:
        if self._placeholder._delta is not None and self._key in self._placeholder._delta:
            return repr(self._placeholder._delta[self._key])
        return f"<pending :{self._key}>"

    # Conversions / formatting (all force)
    def __float__(self):
        return float(self._value())  # type: ignore[arg-type]

    def __int__(self):
        return int(self._value())  # type: ignore[arg-type]

    def __index__(self):
        return int(self._value())  # type: ignore[arg-type]

    def __bool__(self):
        return bool(self._value())

    def __str__(self):
        return str(self._value())

    def __format__(self, spec):
        return format(self._value(), spec)

    def __hash__(self):
        return hash(self._value())

    # Comparisons
    def __eq__(self, other):
        return self._value() == _unwrap(other)

    def __ne__(self, other):
        return self._value() != _unwrap(other)

    def __lt__(self, other):
        return self._value() < _unwrap(other)  # type: ignore[operator]

    def __le__(self, other):
        return self._value() <= _unwrap(other)  # type: ignore[operator]

    def __gt__(self, other):
        return self._value() > _unwrap(other)  # type: ignore[operator]

    def __ge__(self, other):
        return self._value() >= _unwrap(other)  # type: ignore[operator]

    # Arithmetic
    def __add__(self, other):
        return self._value() + _unwrap(other)  # type: ignore[operator]

    def __radd__(self, other):
        return _unwrap(other) + self._value()  # type: ignore[operator]

    def __sub__(self, other):
        return self._value() - _unwrap(other)  # type: ignore[operator]

    def __rsub__(self, other):
        return _unwrap(other) - self._value()  # type: ignore[operator]

    def __mul__(self, other):
        return self._value() * _unwrap(other)  # type: ignore[operator]

    def __rmul__(self, other):
        return _unwrap(other) * self._value()  # type: ignore[operator]

    def __truediv__(self, other):
        return self._value() / _unwrap(other)  # type: ignore[operator]

    def __rtruediv__(self, other):
        return _unwrap(other) / self._value()  # type: ignore[operator]

    def __neg__(self):
        return -self._value()  # type: ignore[operator]

    def __abs__(self):
        return abs(self._value())  # type: ignore[arg-type]

    def __round__(self, ndigits=None):
        return round(self._value(), ndigits)  # type: ignore[arg-type]


def _unwrap(value: object) -> object:
    """Resolve ``value`` if it is a lazy binding (forcing its pipeline)."""
    if isinstance(value, _LazyBinding):
        return value._value()
    return value


class NetworkSession:
    """Session facade speaking the wire protocol (see module docstring).

    Statement ``kind`` tags are accepted for signature parity with the
    in-process session but stay client-side: the server's sessions carry
    no statement hooks (those exist for the simulator's cost model).
    """

    def __init__(self, connection: "NetworkConnection", wire: WireConnection) -> None:
        self._connection = connection
        self._wire: Optional[WireConnection] = wire
        self._in_txn = False
        self._txn: Optional[_RemoteTransaction] = None
        self._pending_begin: Optional[str] = None
        #: Placeholders for pipelined requests sent but not yet answered,
        #: in send order (responses arrive in the same order).
        self._pipeline: "list[_PendingStatementResult]" = []
        #: Parameter names bound by ``INTO`` so far in the current
        #: transaction — the dependency information behind the SELECT
        #: pipelining policy (see :meth:`execute_prepared`).
        self._into_bound: "set[str]" = set()
        #: Message dict of the newest queued-but-unsent pipelined frame
        #: (and its index in the wire's send buffer); ``commit`` rewrites
        #: it in place to piggyback the COMMIT.
        self._tail: "Optional[dict]" = None
        self._tail_pos = 0
        #: False once the current transaction has taken any lock or
        #: staged any write — gates the deferred-ack COMMIT shortcut.
        self._readonly = True

    # ------------------------------------------------------------------
    def _stamp_begin(self, response: dict) -> None:
        txn = self._txn
        if txn is not None and "begin_txid" in response:
            txn.txid = int(response["begin_txid"])
            txn.snapshot_ts = int(response["begin_snapshot_ts"])

    def _drain_pipeline(self, wire: WireConnection, extra: int = 0) -> "list[dict]":
        """Read the responses owed to pipelined requests (+ ``extra``).

        Resolves every placeholder in FIFO order; raises the *first*
        pipelined error after all owed responses are consumed (they are
        already on the wire — leaving them unread would corrupt the
        request/response pairing of the next RPC).  Returns the ``extra``
        trailing responses.
        """
        pending, self._pipeline = self._pipeline, []
        self._tail = None
        responses = [wire.recv() for _ in range(len(pending) + extra)]
        first_error: Optional[dict] = None
        for placeholder, response in zip(pending, responses):
            placeholder._resolve(response)
            self._stamp_begin(response)
            if not response.get("ok") and first_error is None:
                first_error = dict(response.get("error") or {})
        if first_error is not None:
            raise_error_payload(first_error)
        return responses[len(pending):]

    def _stale_sid(self, exc: BaseException) -> BaseException:
        """Heal the statement-id cache after a server restart.

        Sids are namespaced per server instance, so an "unknown statement
        id" answer proves the server restarted since the sid was learnt —
        and that *every* cached sid is stale.  Clear the cache (the next
        transaction re-sends SQL text and re-learns fresh sids) and
        surface the failure as the transient :class:`ConnectionClosed`
        it is, so retry layers treat it like the reconnect artifact it
        is rather than a hard protocol violation.
        """
        if isinstance(exc, ProtocolError) and "unknown statement id" in str(exc):
            self._connection._sids.clear()
            return ConnectionClosed(
                f"server restarted: statement cache invalidated ({exc})"
            )
        return exc

    def _call(self, op: str, **args: object) -> dict:
        wire = self._wire
        if wire is None:
            raise ConnectionClosed("session is closed")
        if self._pending_begin is not None:
            # Deferred BEGIN: piggybacked on the transaction's first RPC
            # (the server begins before executing the operation), saving a
            # round trip per transaction.  Whatever the operation's
            # outcome, the BEGIN itself has run once the server answers.
            args["begin"] = self._pending_begin
            self._pending_begin = None
        obs = self._connection.obs
        started = obs.now() if obs is not None else 0.0
        ok = True
        try:
            if self._pipeline:
                # Send first, then collect the pipelined acks together
                # with our own response: one batched round trip.
                wire.send(op, args)
                (response,) = self._drain_pipeline(wire, extra=1)
                if not response.get("ok"):
                    raise_error_payload(response.get("error"))
            else:
                response = wire.call(op, args)
            self._stamp_begin(response)
            return response
        except TransactionAborted:
            # The server aborted the transaction (deadlock victim, SSI
            # certifier, first-updater-wins, ...): mirror the local
            # session, whose transaction handle goes inactive.
            ok = False
            self._in_txn = False
            raise
        except (ConnectionClosed, ProtocolError) as exc:
            ok = False
            self._in_txn = False
            self._wire = None
            self._pipeline = []
            self._connection._discard(wire)
            healed = self._stale_sid(exc)
            if healed is exc:
                raise
            raise healed from exc
        except Exception:
            ok = False
            raise
        finally:
            if obs is not None:
                obs.net_client_rpc(op, obs.now() - started, ok)

    def _send_pipelined(
        self,
        op: str,
        _sid_key: "Optional[tuple[str, Optional[str]]]" = None,
        **args: object,
    ) -> _PendingStatementResult:
        """Fire one request without waiting; response owed to ``_pipeline``."""
        wire = self._wire
        if wire is None:
            raise ConnectionClosed("session is closed")
        if self._pending_begin is not None:
            args["begin"] = self._pending_begin
            self._pending_begin = None
        placeholder = _PendingStatementResult(self, _sid_key)
        try:
            # Queued, not sent: the whole batch leaves in one ``sendall``
            # at the next synchronous RPC (or pipeline drain).
            self._tail = wire.buffer(op, args)
            self._tail_pos = len(wire._sendbuf) - 1
        except (ConnectionClosed, ProtocolError):
            self._in_txn = False
            self._wire = None
            self._pipeline = []
            self._connection._discard(wire)
            raise
        self._pipeline.append(placeholder)
        return placeholder

    def _sync(self) -> None:
        """Collect every outstanding pipelined response (no new request)."""
        wire = self._wire
        if wire is None or not self._pipeline:
            return
        try:
            self._drain_pipeline(wire)
        except TransactionAborted:
            self._in_txn = False
            raise
        except (ConnectionClosed, ProtocolError) as exc:
            self._in_txn = False
            self._wire = None
            self._pipeline = []
            self._connection._discard(wire)
            healed = self._stale_sid(exc)
            if healed is exc:
                raise
            raise healed from exc

    # ------------------------------------------------------------------
    # Transaction control (facade session contract)
    # ------------------------------------------------------------------
    def begin(self, label: str = "") -> _RemoteTransaction:
        """Open a transaction; the BEGIN itself is deferred.

        No RPC happens here: the server-side BEGIN rides on the
        transaction's first statement (or its COMMIT, for an empty
        transaction), so the returned handle's ``txid`` / ``snapshot_ts``
        stay ``None`` until then.  The snapshot is therefore taken at the
        first statement — indistinguishable under snapshot isolation,
        since an idle transaction cannot observe the gap.
        """
        if self._in_txn:
            raise TransactionStateError(
                "session already has an active transaction"
            )
        self._pending_begin = label
        self._in_txn = True
        self._into_bound.clear()
        self._readonly = True
        self._txn = _RemoteTransaction(None, None, label, self)
        return self._txn

    def begin_now(self, label: str = "") -> _RemoteTransaction:
        """Open a transaction and send the BEGIN immediately.

        Used by the cluster router's *consistent* snapshot mode: every
        shard's branch must take its snapshot inside the oracle's
        broadcast window, so the BEGIN cannot ride on a later (arbitrarily
        delayed) first statement the way :meth:`begin` defers it.
        """
        txn = self.begin(label)
        self._pending_begin = None
        response = self._call("BEGIN", label=label)
        txn.txid = int(response["txid"])
        txn.snapshot_ts = int(response["snapshot_ts"])
        return txn

    @property
    def in_transaction(self) -> bool:
        return self._in_txn

    @property
    def is_readonly(self) -> bool:
        """True while the current transaction took no lock, staged no write.

        The cluster coordinator uses this to split participants: read-only
        branches commit plainly (nothing to vote on), only writers pay the
        prepare round.
        """
        return self._readonly

    # ------------------------------------------------------------------
    # Two-phase commit (cluster coordinator drives these)
    # ------------------------------------------------------------------
    def prepare_2pc(self, gtid: str) -> None:
        """Vote on this session's transaction under ``gtid`` (phase one).

        Drains the statement pipeline *first*: a buffered statement's
        failure must surface (and be handled by the coordinator as a NO
        vote) before the vote request is ever sent — otherwise a
        non-aborting statement error could leave a prepared orphan no one
        would ever decide.  On a YES the server detaches the transaction
        from this wire; on a NO (a ``TransactionAborted`` subclass) the
        engine has already rolled it back.
        """
        self._sync()
        self._call("PREPARE_2PC", gtid=gtid)
        # Prepared: the branch is no longer this session's to commit or
        # roll back — only coordinator decisions (by gtid) resolve it.
        self._in_txn = False

    def commit_2pc(self, gtid: str) -> int:
        """Deliver the commit decision for ``gtid``; returns the shard's
        commit timestamp.  Connection-independent and idempotent."""
        return int(self._call("COMMIT_2PC", gtid=gtid)["commit_ts"])

    def abort_2pc(self, gtid: str) -> None:
        """Deliver the abort decision for ``gtid`` (presumed abort)."""
        self._call("ABORT_2PC", gtid=gtid)

    def commit(self) -> None:
        """Commit; three wire-level shortcuts cover the common shapes.

        * **Empty transaction** — the deferred BEGIN never reached the
          server, so there is nothing to commit: resolved client-side.
        * **Piggybacked COMMIT** — when the transaction ends with
          queued-but-unsent pipelined statements (the common writing
          shape), the COMMIT rides as a flag on the *last* queued EXEC:
          the server executes the statement, commits, and answers both
          in one response (see ``_op_exec``), saving a request per
          writing transaction.  A statement failure anywhere in the
          batch surfaces here exactly as it would from a standalone
          COMMIT — and the server rolls back on a failed commit-carrying
          EXEC, so the wire comes back transaction-free either way.
        * **Deferred read-only COMMIT** — under plain SI a transaction
          that took no lock and staged no write commits unconditionally
          (no validation, nothing for a peer to wait on), so the COMMIT
          frame is merely *queued*: it leaves in the same segment as the
          wire's next request (often a later transaction's first
          statement, after the wire was pooled and checked out again)
          and its ack is consumed silently before that request's
          response — zero extra round trips, zero extra syscalls.
          Gated on the server advertising ``isolation == "si"``: under
          S2PL the commit releases read locks peers may be queued on,
          and under SSI it can fail certification — both need the
          synchronous ack.  The one observable cost: the server-side
          transaction stays open until the wire's next use (or EOF, on
          close — equivalent to a rollback, which for a read-only
          transaction is indistinguishable from the commit).
        """
        try:
            wire = self._wire
            tail = self._tail
            if self._pending_begin is not None:
                self._pending_begin = None
            elif (
                wire is not None
                and tail is not None
                and self._pipeline
                and len(wire._sendbuf) == self._tail_pos + 1
            ):
                tail["commit"] = True
                wire._sendbuf[self._tail_pos] = encode_frame(tail)
                self._tail = None
                self._sync()
            elif (
                wire is not None
                and self._readonly
                and not self._pipeline
                and self._connection._isolation == "si"
            ):
                try:
                    wire.buffer("COMMIT", {})
                    wire._owed += 1
                except (ConnectionClosed, ProtocolError):
                    self._wire = None
                    self._pipeline = []
                    self._connection._discard(wire)
                    raise
            else:
                self._call("COMMIT")
        finally:
            self._in_txn = False

    def rollback(self) -> None:
        if self._wire is None:
            return
        if self._pending_begin is not None:
            # The BEGIN never reached the server: nothing to roll back.
            self._pending_begin = None
            self._in_txn = False
            return
        try:
            self._call("ROLLBACK")
        finally:
            self._in_txn = False

    def close(self) -> None:
        """Roll back if needed and return the wire to the pool."""
        wire = self._wire
        if wire is None:
            return
        try:
            if self._in_txn:
                self.rollback()
            elif self._pipeline:
                # Owed responses must be consumed before the wire can be
                # pooled; their errors are moot on close (like rollback).
                self._sync()
        except (ConnectionClosed, TransactionAborted, ReproError):
            if self._wire is None:
                return  # _call already discarded the wire
        finally:
            self._in_txn = False
        if self._wire is None:
            return  # discarded during rollback
        self._wire = None
        self._connection._release(wire)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def select(
        self, table: str, key: Hashable, *, kind: str = "select"
    ) -> Optional[Row]:
        return self._call("READ", table=table, key=key)["row"]

    def select_for_update(
        self, table: str, key: Hashable, *, kind: str = "select-for-update"
    ) -> Optional[Row]:
        self._readonly = False
        return self._call("SELECT_FOR_UPDATE", table=table, key=key)["row"]

    def lookup_unique(
        self, table: str, column: str, value: Hashable, *, kind: str = "select"
    ) -> Optional[tuple[Hashable, Row]]:
        found = self._call(
            "LOOKUP_UNIQUE", table=table, column=column, value=value
        )["found"]
        if found is None:
            return None
        key, row = found
        return key, row

    def scan(
        self,
        table: str,
        predicate: Optional[Callable[[Row], bool]] = None,
        description: str = "<scan>",
        *,
        kind: str = "scan",
    ) -> list[tuple[Hashable, Row]]:
        # The engine's scan reads every row and filters afterwards, so
        # applying the (unserializable) predicate client-side leaves the
        # server-side read footprint identical.
        matches = self._call("SCAN", table=table, description=description)["rows"]
        rows = [(key, row) for key, row in matches]
        if predicate is not None:
            rows = [(key, row) for key, row in rows if predicate(row)]
        return rows

    def update(
        self, table: str, key: Hashable, changes: Changes, *, kind: str = "update"
    ) -> bool:
        current = self._call("READ", table=table, key=key)["row"]
        if current is None:
            return False
        new_values = changes(current) if callable(changes) else changes
        merged = dict(current)
        merged.update(new_values)
        self._readonly = False
        self._call("WRITE", table=table, key=key, row=merged, kind=kind)
        return True

    def identity_update(
        self, table: str, key: Hashable, column: str, *, kind: str = "identity-update"
    ) -> bool:
        return self.update(table, key, lambda row: {column: row[column]}, kind=kind)

    def write(
        self,
        table: str,
        key: Hashable,
        row: Optional[Row],
        *,
        kind: str = "update",
    ) -> None:
        self._readonly = False
        self._call("WRITE", table=table, key=key, row=row, kind=kind)

    def insert(self, table: str, row: Row, *, kind: str = "insert") -> None:
        self._readonly = False
        self._call("INSERT", table=table, row=row)

    def delete(self, table: str, key: Hashable, *, kind: str = "delete") -> None:
        self._readonly = False
        self._call("DELETE", table=table, key=key)

    # ------------------------------------------------------------------
    # Mini-SQL (PreparedStatement.execute dispatches here)
    # ------------------------------------------------------------------
    def _statement_meta(
        self, sql: str
    ) -> "tuple[bool, tuple[str, ...], frozenset[str], frozenset[str], bool]":
        """``(is_select, into, where_params, needed_params, locks)``.

        Cached on the connection keyed by the SQL text, so the per-call
        hot path is one string-keyed dict hit — no parser lock, no
        re-hashing of statement dataclasses.  ``locks`` is True for any
        statement that takes a lock or stages a write (everything except
        a plain SELECT) — the read-only tracking behind the deferred-ack
        COMMIT.
        """
        meta = self._connection._stmt_meta.get(sql)
        if meta is None:
            statement = parse_cached(sql)
            is_select = isinstance(statement, Select)
            meta = (
                is_select,
                statement.into if is_select else (),
                params_in(statement.where) if is_select else frozenset(),
                statement_params(statement),
                not is_select or statement.for_update,
            )
            self._connection._stmt_meta[sql] = meta
        return meta

    def execute_prepared(
        self,
        sql: str,
        kind: Optional[str],
        params: "dict[str, object]",
    ) -> StatementResult:
        """Ship one prepared statement; planning happens server-side.

        ``SELECT ... INTO :var`` bindings round-trip: the server returns
        the updated parameter map and it is merged into ``params`` in
        place, matching the local executor's mutation contract.

        Two classes of statement are *pipelined* — sent immediately, with
        the response collected at the next synchronous RPC (usually the
        COMMIT), batching round trips:

        * **non-SELECT statements** (the mini-SQL grammar gives them no
          ``INTO`` bindings, so deferral never delays a parameter the
          program could read next), and
        * **dependent SELECTs** — SELECTs whose WHERE parameters were
          bound by an earlier ``INTO`` of the same transaction.  Their own
          ``INTO`` targets materialize as :class:`_LazyBinding`
          placeholders that force the drain on first *value* use.
          Externally-keyed lookups (WHERE on program inputs) stay
          synchronous because their bindings idiomatically feed identity
          checks (``params.get("x") is None``), which a placeholder
          cannot intercept.

        A pipelined statement's failure (e.g. a first-updater-wins abort)
        surfaces at the next RPC of the same transaction — always before
        anything commits.
        """
        sid_key = (sql, kind)
        sid = self._connection._sids.get(sid_key)
        is_select, into, where_params, needed, locks = self._statement_meta(sql)
        if locks:
            self._readonly = False
        # Ship only the parameters the statement reads (lazies resolved).
        # Small frames matter less than the side effect: an *unrelated*
        # lazy binding sitting in the same dict never forces a premature
        # pipeline drain, while one the statement genuinely reads is a
        # true dependency chain and forces its pipeline first (SmallBank
        # never does this — values are consumed via ``float()`` before
        # reuse — but the facade must not depend on that).
        clean = {name: _unwrap(params[name]) for name in needed if name in params}
        if self._in_txn and (not is_select or where_params & self._into_bound):
            if sid is not None:
                placeholder = self._send_pipelined("EXEC", sid=sid, params=clean)
            else:
                placeholder = self._send_pipelined(
                    "EXEC", sql=sql, kind=kind, params=clean, _sid_key=sid_key
                )
            if into:
                placeholder._params = params
                self._into_bound.update(into)
                for key in into:
                    params[key] = _LazyBinding(placeholder, key)
            return placeholder
        if sid is not None:
            response = self._call("EXEC", sid=sid, params=clean)
        else:
            response = self._call("EXEC", sql=sql, kind=kind, params=clean)
            if "sid" in response:
                self._connection._sids[sid_key] = int(response["sid"])
        if is_select and self._in_txn:
            self._into_bound.update(into)
        returned = response.get("params")
        if isinstance(returned, dict):
            params.update(returned)
        return StatementResult(
            rows=list(response.get("rows") or []),
            rowcount=int(response.get("rowcount") or 0),
        )

    def prepare_remote(self, sql: str, kind: Optional[str] = None) -> str:
        """Warm the server's statement cache; returns the statement kind."""
        response = self._call("PREPARE", sql=sql, kind=kind)
        if "sid" in response:
            self._connection._sids[(sql, kind)] = int(response["sid"])
        return str(response["kind"])


class NetworkConnection(Connection):
    """Pooled facade connection to a running :class:`DatabaseServer`.

    ``pool_size`` bounds concurrent checked-out sessions; a ``session()``
    call past the bound blocks until one is returned (up to ``timeout``
    seconds, then :class:`~repro.errors.ConnectionClosed`).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        retry_policy: "Optional[RetryPolicy]" = None,
        obs: "Observability | None" = None,
        pool_size: int = 8,
        timeout: Optional[float] = 10.0,
        max_frame: int = DEFAULT_MAX_FRAME,
        url: str = "",
        rpc_deadline: Optional[float] = None,
        reconnect_attempts: int = 3,
        reconnect_backoff: float = 0.05,
        reconnect_backoff_max: float = 1.0,
    ) -> None:
        if pool_size < 1:
            raise ValueError("pool_size must be at least 1")
        if reconnect_attempts < 1:
            raise ValueError("reconnect_attempts must be at least 1")
        self.host = host
        self.port = port
        self.retry_policy = retry_policy
        self.obs = obs
        self.pool_size = pool_size
        self.timeout = timeout
        self.max_frame = max_frame
        self.url = url or f"tcp://{host}:{port}"
        #: Per-RPC response deadline applied to every wire (None = RPCs
        #: block until the server answers, the pre-existing behaviour).
        self.rpc_deadline = rpc_deadline
        #: Bounded exponential backoff for idempotent out-of-session ops
        #: (PING / STATS / VACUUM / decision delivery): on a connection
        #: failure ``_call_once`` redials up to ``reconnect_attempts``
        #: times, sleeping ``backoff * 2^n`` (jittered, capped).
        self.reconnect_attempts = reconnect_attempts
        self.reconnect_backoff = reconnect_backoff
        self.reconnect_backoff_max = reconnect_backoff_max
        self._backoff_rng = random.Random(f"net-reconnect/{host}:{port}")
        self._idle: list[WireConnection] = []
        self._lock = threading.Lock()
        self._slots = threading.Semaphore(pool_size)
        self._closed = False
        #: Client-side statement-id cache, (sql, kind) -> server sid.
        #: Shared by every session: sids are server-global, and the pool
        #: only ever dials one server.  (Plain dict: GIL-atomic get/set,
        #: and a lost race merely re-sends the SQL text once.)
        self._sids: "dict[tuple[str, Optional[str]], int]" = {}
        #: Client-side statement metadata cache, sql -> (is_select, into,
        #: where_params, needed_params, locks); see ``_statement_meta``.
        self._stmt_meta: "dict[str, tuple]" = {}
        #: The server's isolation regime (``"si"`` / ``"s2pl"`` /
        #: ``"ssi"``), learnt from STATS when the first wire is dialled;
        #: ``None`` until then (shortcuts gated on it stay off).
        self._isolation: "Optional[str]" = None

    # --- pool plumbing --------------------------------------------------
    def _acquire(self) -> WireConnection:
        if self._closed:
            raise ConnectionClosed(f"connection {self.url} is closed")
        acquired = (
            self._slots.acquire(timeout=self.timeout)
            if self.timeout is not None
            else self._slots.acquire()
        )
        if not acquired:
            raise ConnectionClosed(
                f"connection pool exhausted ({self.pool_size} wire "
                f"connections all checked out for {self.timeout}s)"
            )
        with self._lock:
            wire = self._idle.pop() if self._idle else None
        if wire is not None and not wire.broken:
            return wire
        if wire is not None:
            wire.close()
        wire = None
        try:
            wire = WireConnection(
                self.host, self.port,
                timeout=self.timeout, max_frame=self.max_frame,
                rpc_deadline=self.rpc_deadline,
            )
            if self._isolation is None:
                # One-time server handshake (first wire only): the
                # isolation regime gates the deferred-ack COMMIT.
                stats = wire.call("STATS", {}).get("stats") or {}
                self._isolation = str(stats.get("isolation") or "")
            return wire
        except BaseException:
            if wire is not None:
                wire.close()
            self._slots.release()
            raise

    def _release(self, wire: WireConnection) -> None:
        returned = False
        if not wire.broken:
            with self._lock:
                if not self._closed:
                    self._idle.append(wire)
                    returned = True
        if not returned:
            wire.close()
        self._slots.release()

    def _discard(self, wire: WireConnection) -> None:
        wire.close()
        self._slots.release()

    def _call_once(
        self,
        op: str,
        _deadline: Optional[float] = None,
        _attempts: Optional[int] = None,
        **args: object,
    ) -> dict:
        """One out-of-session RPC with automatic reconnect.

        Every ``_call_once`` operation is idempotent (PING, STATS,
        VACUUM, 2PC decision delivery — the engine remembers resolved
        gtids), so a connection failure is retried on a *fresh* wire up
        to ``reconnect_attempts`` times with jittered exponential
        backoff.  Server-side errors (which prove the request arrived)
        propagate immediately.  ``_attempts=1`` disables the retries —
        health probes want the fast no.
        """
        attempts = self.reconnect_attempts if _attempts is None else _attempts
        backoff = self.reconnect_backoff
        failure: Optional[ConnectionClosed] = None
        for attempt in range(max(1, attempts)):
            if attempt:
                if self.obs is not None:
                    self.obs.net_reconnect(op)
                time.sleep(backoff * (0.5 + self._backoff_rng.random()))
                backoff = min(backoff * 2.0, self.reconnect_backoff_max)
            if self._closed:
                raise ConnectionClosed(f"connection {self.url} is closed")
            try:
                wire = self._acquire()
            except ConnectionClosed as exc:
                failure = exc
                continue
            try:
                response = wire.call(op, args, deadline=_deadline)
            except ConnectionClosed as exc:
                self._discard(wire)
                failure = exc
                continue
            except BaseException:
                self._discard(wire)
                raise
            self._release(wire)
            return response
        assert failure is not None
        raise failure

    # --- Connection surface ----------------------------------------------
    def session(self) -> NetworkSession:
        return NetworkSession(self, self._acquire())

    def _probe_deadline(self, deadline: Optional[float]) -> Optional[float]:
        """Bound for introspection RPCs: explicit ``deadline``, else the
        configured per-RPC deadline, else the connection ``timeout``."""
        if deadline is not None:
            return deadline
        if self.rpc_deadline is not None:
            return self.rpc_deadline
        return self.timeout

    def ping(self, deadline: Optional[float] = None) -> bool:
        """Liveness probe: bounded by ``deadline`` (default: the per-RPC
        deadline, else the connection ``timeout``), never retried — a
        down server answers ``False`` fast instead of hanging."""
        bound = self._probe_deadline(deadline)
        try:
            return bool(
                self._call_once("PING", _deadline=bound, _attempts=1).get("pong")
            )
        except ConnectionClosed:
            return False

    def stats(self, deadline: Optional[float] = None) -> dict:
        """Server counters; the response wait is bounded by ``deadline``
        (default: the per-RPC deadline, else the connection ``timeout``)
        so a dead server surfaces as :class:`ConnectionClosed` instead of
        an infinite hang."""
        bound = self._probe_deadline(deadline)
        stats = dict(self._call_once("STATS", _deadline=bound)["stats"])
        stats["backend"] = "network"
        return stats

    def vacuum(self) -> int:
        """Prune server-side version chains; returns versions dropped."""
        return int(self._call_once("VACUUM")["pruned"])

    def flush(self) -> None:
        """Settle deferred read-only COMMITs queued on idle pooled wires.

        Their server-side transactions commit only when the wire next
        talks to the server; callers about to inspect server state (an
        execution trace, STATS-based accounting) flush first so every
        client-side "committed" transaction is server-side committed
        too.  Wires that fail while settling are discarded from the
        pool, like any broken wire.
        """
        with self._lock:
            wires = list(self._idle)
        for wire in wires:
            try:
                wire.drain_owed()
            except (ConnectionClosed, ProtocolError):
                with self._lock:
                    if wire in self._idle:
                        self._idle.remove(wire)
                wire.close()

    def commit_2pc(self, gtid: str) -> int:
        """Decision delivery outside any session (coordinator recovery).

        Retried across reconnects: the engine remembers resolved gtids,
        so re-delivering a commit decision is idempotent by contract.
        """
        return int(
            self._call_once("COMMIT_2PC", _deadline=self.timeout, gtid=gtid)[
                "commit_ts"
            ]
        )

    def abort_2pc(self, gtid: str) -> None:
        """Abort-decision delivery outside any session (idempotent)."""
        self._call_once("ABORT_2PC", _deadline=self.timeout, gtid=gtid)

    def close(self) -> None:
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for wire in idle:
            wire.close()
