"""Wire protocol: length-prefixed JSON frames + the error round-trip.

Framing
-------

Every message — request or response — is one *frame*::

    +----------------+---------------------------+
    | length (4B BE) | UTF-8 JSON object payload |
    +----------------+---------------------------+

The length covers the payload only and must be in ``(0, max_frame]``;
``DEFAULT_MAX_FRAME`` is 8 MiB.  A length outside that range, or a payload
that is not a JSON *object*, is a :class:`~repro.errors.ProtocolError` and
poisons the connection (there is no way to resynchronize a byte stream
after a bad length).

Requests and responses
----------------------

A request is ``{"op": <OP>, ...args}``; operations are listed in
:data:`REQUEST_OPS`.  A response is either ``{"ok": true, ...result}`` or
``{"ok": false, "error": {"code", "type", "message"}}``.  Error responses
reconstruct as the *same* exception class on the client via the stable
``code`` attributes on :class:`~repro.errors.ReproError` (see
:func:`raise_error_payload`), so the wire is lossless for every
user-facing error class.

This module is transport-agnostic: the asyncio server uses
``readexactly``-style framing directly, the synchronous client uses
:func:`read_frame_sync` / :func:`write_frame_sync`, and
:class:`FrameDecoder` provides incremental decoding for tests and any
future transport.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Mapping, Optional

from repro.errors import (
    ConnectionClosed,
    ProtocolError,
    ReproError,
    error_from_code,
)

#: Frame payload ceiling (bytes).  Generous for SmallBank rows; a scan of a
#: very large table may need a higher per-server/per-client setting.
DEFAULT_MAX_FRAME = 8 * 1024 * 1024

_LENGTH = struct.Struct(">I")
LENGTH_BYTES = _LENGTH.size

#: Every operation the server understands (DESIGN.md §11 op table).
REQUEST_OPS = (
    "PING",
    "STATS",
    "BEGIN",
    "READ",
    "SELECT_FOR_UPDATE",
    "LOOKUP_UNIQUE",
    "SCAN",
    "WRITE",
    "INSERT",
    "DELETE",
    "COMMIT",
    "ROLLBACK",
    "PREPARE",
    "EXEC",
    "VACUUM",
    "PREPARE_2PC",
    "COMMIT_2PC",
    "ABORT_2PC",
)


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def _jsonify(value: object) -> object:
    """Encoder fallback: the engine returns rows as read-only mapping views."""
    if isinstance(value, Mapping):
        return dict(value)
    raise TypeError(
        f"object of type {type(value).__name__} is not wire-serializable"
    )


#: Reused encoder: ``json.dumps`` with non-default arguments constructs a
#: fresh ``JSONEncoder`` per call, measurable at wire RPC rates.
_ENCODER = json.JSONEncoder(separators=(",", ":"), default=_jsonify)


def encode_frame(message: Mapping[str, object]) -> bytes:
    """Serialize one message to its wire representation."""
    payload = _ENCODER.encode(message).encode("utf-8")
    return _LENGTH.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> dict:
    """Decode one frame payload; raises :class:`ProtocolError` on garbage."""
    try:
        # json.loads takes UTF-8 bytes directly — no intermediate str copy.
        message = json.loads(payload)
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"frame payload is not valid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(message).__name__}"
        )
    return message


def check_length(length: int, max_frame: int = DEFAULT_MAX_FRAME) -> int:
    """Validate a decoded length prefix.

    The wire unpacks the prefix unsigned, so a peer's 2 GiB (or sign-bit)
    header arrives here as a huge positive length and is rejected *before*
    any buffer is sized to it.  The explicit negative check covers direct
    callers that pass an already-signed value.
    """
    if length < 0:
        raise ProtocolError(f"negative frame length {length}")
    if length == 0:
        raise ProtocolError("zero-length frame")
    if length > max_frame:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {max_frame}-byte limit"
        )
    return length


class FrameDecoder:
    """Incremental frame decoder: feed bytes, collect decoded messages.

    Tolerates arbitrary fragmentation (a frame may arrive one byte at a
    time, or many frames in one read).  After a :class:`ProtocolError` the
    decoder is poisoned and every further :meth:`feed` re-raises — a byte
    stream cannot be resynchronized after a framing violation.
    """

    def __init__(self, max_frame: int = DEFAULT_MAX_FRAME) -> None:
        self.max_frame = max_frame
        self._buffer = bytearray()
        self._error: "Optional[ReproError]" = None

    def feed(self, data: bytes) -> list[dict]:
        if self._error is not None:
            raise self._error
        if not self._buffer and len(data) >= LENGTH_BYTES:
            # Fast path: the buffer is empty and ``data`` is exactly one
            # whole frame (the overwhelmingly common case for a
            # request/response protocol) — skip the bytearray churn.
            (length,) = _LENGTH.unpack_from(data)
            if LENGTH_BYTES + length == len(data):
                try:
                    check_length(length, self.max_frame)
                    return [decode_payload(data[LENGTH_BYTES:])]
                except ProtocolError as exc:
                    self._error = exc
                    raise
        self._buffer.extend(data)
        messages: list[dict] = []
        try:
            while True:
                if len(self._buffer) < LENGTH_BYTES:
                    return messages
                (length,) = _LENGTH.unpack_from(self._buffer)
                check_length(length, self.max_frame)
                end = LENGTH_BYTES + length
                if len(self._buffer) < end:
                    return messages
                payload = bytes(self._buffer[LENGTH_BYTES:end])
                del self._buffer[:end]
                messages.append(decode_payload(payload))
        except ProtocolError as exc:
            self._error = exc
            raise

    def feed_eof(self) -> None:
        """The byte stream ended: raise if it ended *inside* a frame.

        A clean EOF at a frame boundary is a no-op; an EOF with buffered
        bytes means the peer closed mid-frame (a truncated length prefix
        or a payload cut short) — that is a :class:`ConnectionClosed`,
        and it poisons the decoder so a late ``feed`` cannot quietly
        resume and misparse the stream.  Deterministic: no partial op is
        ever surfaced, and nothing blocks.
        """
        if self._error is not None:
            raise self._error
        if self._buffer:
            exc = ConnectionClosed(
                f"peer closed mid-frame ({len(self._buffer)} byte(s) of an "
                f"incomplete frame buffered)"
            )
            self._error = exc
            raise exc

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)


# ----------------------------------------------------------------------
# Synchronous socket helpers (client side)
# ----------------------------------------------------------------------
def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; None on clean EOF at a frame boundary."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except (ConnectionError, socket.timeout, OSError) as exc:
            raise ConnectionClosed(f"socket error while receiving: {exc}") from None
        if not chunk:
            if chunks:
                raise ConnectionClosed(
                    f"peer closed mid-frame ({count - remaining}/{count} bytes)"
                )
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame_sync(
    sock: socket.socket, max_frame: int = DEFAULT_MAX_FRAME
) -> Optional[dict]:
    """Blocking read of one frame; ``None`` on clean EOF between frames."""
    header = _recv_exact(sock, LENGTH_BYTES)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    check_length(length, max_frame)
    payload = _recv_exact(sock, length)
    if payload is None:
        raise ConnectionClosed("peer closed between length prefix and payload")
    return decode_payload(payload)


def write_frame_sync(sock: socket.socket, message: Mapping[str, object]) -> None:
    try:
        sock.sendall(encode_frame(message))
    except (ConnectionError, socket.timeout, OSError) as exc:
        raise ConnectionClosed(f"socket error while sending: {exc}") from None


# ----------------------------------------------------------------------
# Error round-trip
# ----------------------------------------------------------------------
def error_payload(exc: BaseException) -> dict:
    """Serialize an exception as an error response."""
    code = getattr(exc, "code", "error")
    return {
        "ok": False,
        "error": {
            "code": code,
            "type": type(exc).__name__,
            "message": str(exc),
        },
    }


def raise_error_payload(error: Mapping[str, object]) -> "ReproError":
    """Raise the exception an error response describes.

    The declared return type is for callers that want
    ``raise raise_error_payload(...)`` ergonomics; this function always
    raises.
    """
    if not isinstance(error, Mapping) or "code" not in error:
        raise ProtocolError(f"malformed error payload: {error!r}")
    message = str(error.get("message", ""))
    raise error_from_code(str(error["code"]), message)
