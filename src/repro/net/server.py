"""``repro.net.server`` — asyncio TCP front end for a :class:`Database`.

Architecture (DESIGN.md §11)
----------------------------

The event loop owns *framing, dispatch and connection lifecycle*.  Every
accepted connection gets

* one engine :class:`~repro.engine.session.Session` (per-connection
  sessions: one transaction at a time, exactly the paper's client model),
* one single-thread executor for the operations that genuinely block.

The server speaks the protocol at the transport level
(:class:`asyncio.Protocol` + :class:`~repro.net.protocol.FrameDecoder`)
rather than through ``StreamReader`` — request/response round trips are
latency-bound, and skipping the stream/coroutine machinery roughly halves
the per-RPC overhead.

**Inline fast path.**  Engine operations may block (lock waits use
:class:`ThreadedWaiter`), and a blocking call on the loop thread would
deadlock the whole server the moment two clients wait on each other.  But
the engine core is non-blocking by design: an operation that cannot
proceed returns ``WaitOn`` *instead of* applying itself.  So each request
is first attempted inline on the loop thread with a
:class:`~repro.engine.session.NoWaitWaiter`; if it raises
:class:`~repro.engine.session.WouldBlock`, the same request is re-run on
the connection's worker thread with a blocking waiter.  Only contended
operations (and COMMITs that must flush the WAL, which block internally
in the group-commit buffer) pay for the thread hop.  Requests *within*
one connection stay strictly ordered either way.

Robustness contract:

* a client that disconnects mid-transaction has its transaction aborted
  and every row lock / stripe released before the connection is reaped;
* a framing violation (oversized length, non-JSON payload) poisons only
  that connection: best-effort error frame, then close;
* a request-level failure (unknown op, engine error) is an error response
  and the connection stays usable — engine errors round-trip losslessly
  via their stable ``code`` (:mod:`repro.net.protocol`);
* graceful shutdown stops accepting, aborts every in-flight transaction
  (which also wakes any lock-waiting worker), drains the handlers and
  asserts nothing leaked (``stats()["connections_active"] == 0``).

``max_connections`` bounds concurrent clients; with ``backpressure=True``
(default) excess connections are parked (reads paused) until a slot
frees, with ``backpressure=False`` they are refused with an error frame.
"""

from __future__ import annotations

import asyncio
import random
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Optional

from repro.engine.engine import Database
from repro.engine.session import NoWaitWaiter, Session, WouldBlock
from repro.errors import (
    ConnectionClosed,
    ProtocolError,
    ReproError,
    TransactionAborted,
    TransactionStateError,
)
from repro.net.protocol import (
    DEFAULT_MAX_FRAME,
    FrameDecoder,
    encode_frame,
    error_payload,
)
from repro.sqlmini import PreparedStatement
from repro.sqlmini.ast import Select

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults import FaultPlan
    from repro.obs import Observability

#: Shared stateless waiter for the inline fast path (see ``_serve``).
_NOWAIT = NoWaitWaiter()


class _ClientConnection:
    """Per-connection server state."""

    def __init__(self, conn_id: int, session: Session) -> None:
        self.conn_id = conn_id
        self.session = session  # one in-flight operation at a time
        self.blocking_waiter = session.waiter
        self.executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"repro-net-conn-{conn_id}"
        )


class _ServerProtocol(asyncio.Protocol):
    """One accepted socket: framing, ordering, admission."""

    def __init__(self, server: "DatabaseServer") -> None:
        self.server = server
        self.transport: Optional[asyncio.Transport] = None
        self.decoder = FrameDecoder(server.max_frame)
        self.pending: "deque[dict]" = deque()
        self.conn: Optional[_ClientConnection] = None
        self.busy = False  # a blocking request is on the worker thread
        self.closed = False
        #: Responses parked behind a delayed frame (``net-delay-frame``):
        #: per-connection response order must survive the delay, so
        #: everything queued after a held frame waits with it.
        self._outbox: "list[bytes]" = []
        self._delaying = False

    # --- asyncio callbacks (loop thread) -------------------------------
    def connection_made(self, transport) -> None:
        self.transport = transport
        self.server._on_connection_made(self)

    def data_received(self, data: bytes) -> None:
        if self.closed:
            return
        try:
            messages = self.decoder.feed(data)
        except ProtocolError as exc:
            self.server._note_protocol_error("framing")
            self._send(error_payload(exc))
            self.kill()
            return
        self.pending.extend(messages)
        self.pump()

    def eof_received(self) -> bool:
        return False  # close the transport; connection_lost follows

    def connection_lost(self, exc) -> None:
        self.closed = True
        self.server._on_connection_lost(self)

    # --- helpers -------------------------------------------------------
    def _send(self, message: dict) -> None:
        if self.server.faults is not None:
            self._deliver(encode_frame(message))
            return
        if self.transport is not None and not self.transport.is_closing():
            self.transport.write(encode_frame(message))

    def _send_raw(self, data: bytes) -> None:
        if self.transport is not None and not self.transport.is_closing():
            self.transport.write(data)

    def _deliver(self, data: bytes) -> None:
        """Outbound response with fault hooks (loop thread only).

        Consulted per response frame *only when a plan is installed* —
        the no-plan path batches raw writes exactly as before.  The
        request has already executed by the time its response reaches
        this point, so every fault here is a lost/late *acknowledgement*,
        the classic 2PC ambiguity the client stack must absorb.
        """
        if self.transport is None or self.transport.is_closing():
            return
        plan = self.server.faults
        if plan is not None:
            if plan.should_fire("conn-reset"):
                self.server._note_fault("conn-reset")
                self.closed = True
                self.transport.abort()  # RST, not FIN: mid-stream cut
                return
            if plan.should_fire("net-drop-frame"):
                self.server._note_fault("net-drop-frame")
                return  # executed, but the client never hears back
            if not self._delaying and plan.should_fire("net-delay-frame"):
                self.server._note_fault("net-delay-frame")
                self._delaying = True
                delay = plan.magnitude("net-delay-frame") or 0.05
                asyncio.get_running_loop().call_later(delay, self._flush_outbox)
        if self._delaying:
            self._outbox.append(data)
            return
        self.transport.write(data)

    def _flush_outbox(self) -> None:
        self._delaying = False
        out, self._outbox = self._outbox, []
        if out and self.transport is not None and not self.transport.is_closing():
            self.transport.write(b"".join(out))

    def kill(self) -> None:
        self.closed = True
        if self.transport is not None:
            self.transport.close()

    def pump(self) -> None:
        """Serve queued requests in order; synchronous while they stay
        inline, parking on the worker thread when one would block.

        Responses for a burst of inline requests (a pipelining client
        sends several frames back-to-back) are batched into a single
        ``transport.write`` — one syscall, one client wakeup.
        """
        server = self.server
        out: "list[bytes]" = []
        while not self.busy and self.pending and not self.closed:
            if self.conn is None:
                break  # not admitted yet (backpressure parking)
            message = self.pending.popleft()
            if server._can_inline(self.conn, message.get("op")):
                try:
                    response = encode_frame(
                        server._serve(self.conn, message, False)
                    )
                    if server.faults is not None:
                        # Per-frame fault consultation; batching would
                        # make one drop/delay decision span a burst.
                        self._deliver(response)
                    else:
                        out.append(response)
                    continue
                except WouldBlock:
                    pass
            # The blocked request's response must follow the inline ones:
            # flush them before handing the message to the worker thread.
            if out:
                self._send_raw(b"".join(out))
                out = []
            self.busy = True
            server._track(asyncio.ensure_future(self._run_blocking(message)))
        if out:
            self._send_raw(b"".join(out))

    async def _run_blocking(self, message: dict) -> None:
        loop = asyncio.get_running_loop()
        try:
            response = await loop.run_in_executor(
                self.conn.executor, self.server._serve, self.conn, message, True
            )
            self._send(response)
        finally:
            self.busy = False
            self.pump()


class DatabaseServer:
    """Host one :class:`Database` behind the length-prefixed JSON protocol."""

    def __init__(
        self,
        db: Database,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_connections: int = 64,
        backpressure: bool = True,
        obs: "Observability | None" = None,
        max_frame: int = DEFAULT_MAX_FRAME,
        autovacuum_interval: Optional[float] = None,
        fault_plan: "FaultPlan | None" = None,
    ) -> None:
        if max_connections < 1:
            raise ValueError("max_connections must be at least 1")
        if autovacuum_interval is not None and autovacuum_interval <= 0:
            raise ValueError("autovacuum_interval must be positive")
        self.db = db
        self.host = host
        self.port = port  # 0 = ephemeral; rewritten once listening
        self.max_connections = max_connections
        self.backpressure = backpressure
        self.obs = obs
        self.max_frame = max_frame
        #: Seconds between automatic :meth:`Database.vacuum` runs (None
        #: disables).  Long cluster runs use this to bound version-chain
        #: growth without any client issuing VACUUM.
        self.autovacuum_interval = autovacuum_interval
        #: Network-level fault plan (``net-drop-frame`` / ``net-delay-
        #: frame`` / ``conn-reset``); None keeps the response path
        #: byte-identical to the pre-chaos server.
        self.faults = fault_plan
        self._autovacuum_task: "asyncio.Task | None" = None
        if obs is not None:
            db.install_observability(obs)
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._protocols: "set[_ServerProtocol]" = set()
        self._parked: "deque[_ServerProtocol]" = deque()
        self._connections: dict[int, _ClientConnection] = {}
        self._tasks: "set[asyncio.Task]" = set()
        self._closing = False
        self._conn_counter = 0
        # Server-side statement cache: (sql, kind) -> (sid, PreparedStatement).
        # Combined with the sqlmini AST cache this makes EXEC parse-free
        # after the first sight of a statement text; the statement id lets
        # clients drop the SQL text from subsequent EXEC frames entirely.
        self._prepared: dict[
            tuple[str, Optional[str]], tuple[int, PreparedStatement]
        ] = {}
        self._prepared_by_id: "list[PreparedStatement]" = []
        self._prepared_lock = threading.Lock()
        # Statement ids are namespaced per server *instance*: a client
        # still holding sids from a previous incarnation of this address
        # (crash + restart on the same port) must get a clean "unknown
        # statement id" error — never a silent hit on whatever statement
        # landed on the same dense index in the new registry.
        self._sid_base = random.SystemRandom().randrange(1 << 30)
        # Lifetime counters (kept even without an Observability installed;
        # STATS and the leak assertions read them).
        self._counters = {
            "connections_total": 0,
            "rejected_total": 0,
            "protocol_errors_total": 0,
            "rpcs_total": 0,
            "sessions_opened": 0,
            "sessions_closed": 0,
            "vacuum_runs": 0,
            "vacuum_pruned_total": 0,
            "net_faults_total": 0,
        }

    def install_faults(self, plan: "FaultPlan | None") -> None:
        """(Un)install the network fault plan; None restores clean paths."""
        self.faults = plan

    def _note_fault(self, point: str) -> None:
        self._counters["net_faults_total"] += 1
        if self.obs is not None:
            self.obs.fault_injected(point)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        return self.host, self.port

    async def start(self) -> "DatabaseServer":
        if self._server is not None:
            raise RuntimeError("server already started")
        self._loop = asyncio.get_running_loop()
        self._server = await self._loop.create_server(
            lambda: _ServerProtocol(self), self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.autovacuum_interval is not None:
            self._autovacuum_task = self._loop.create_task(
                self._autovacuum_loop()
            )
        return self

    async def _autovacuum_loop(self) -> None:
        """Periodic vacuum: same engine entry point as the VACUUM op.

        Runs on the connection-agnostic default executor so the (commit-
        mutex-holding) prune never stalls the event loop.  A crashed
        database ends the loop; any other engine error is counted and the
        loop keeps its cadence.
        """
        assert self.autovacuum_interval is not None
        loop = asyncio.get_running_loop()
        while not self._closing:
            await asyncio.sleep(self.autovacuum_interval)
            if self._closing:
                return
            try:
                pruned = await loop.run_in_executor(None, self.db.vacuum)
            except asyncio.CancelledError:  # pragma: no cover - shutdown
                raise
            except ReproError:
                return  # crashed / shut down underneath us
            self._counters["vacuum_runs"] += 1
            self._counters["vacuum_pruned_total"] += pruned

    async def stop(self) -> None:
        """Graceful shutdown: drain connections, abort in-flight work."""
        self._closing = True
        if self._autovacuum_task is not None:
            self._autovacuum_task.cancel()
            try:
                await self._autovacuum_task
            except asyncio.CancelledError:
                pass
            self._autovacuum_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Closing the transports EOFs every client; aborting every active
        # transaction wakes any worker blocked in a lock wait (its
        # blockers resolve), so no handler can be stuck past this point.
        for proto in list(self._protocols):
            proto.kill()
        for txn in self.db.active_transactions:
            self.db.abort(txn, reason="shutdown")
        for _ in range(600):  # cleanup tasks spawn from connection_lost
            if not self._tasks and not self._connections:
                break
            if self._tasks:
                await asyncio.wait(list(self._tasks), timeout=1.0)
            else:
                await asyncio.sleep(0.05)
        leaked = len(self._connections)
        if leaked:  # pragma: no cover - defensive
            raise RuntimeError(f"shutdown leaked {leaked} connection(s)")

    # --- threaded convenience wrappers (tests, benchmarks, CLI) --------
    def start_in_thread(self) -> "DatabaseServer":
        """Run the server on a private event loop in a daemon thread.

        Returns once the listening socket is bound (``self.port`` is
        final).  Pair with :meth:`shutdown`.
        """
        if self._thread is not None:
            raise RuntimeError("server already running in a thread")
        started = threading.Event()
        failure: list[BaseException] = []

        def runner() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                loop.run_until_complete(self.start())
            except BaseException as exc:  # pragma: no cover - bind errors
                failure.append(exc)
                started.set()
                return
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(loop.shutdown_asyncgens())
                loop.close()

        self._thread = threading.Thread(
            target=runner, name="repro-net-server", daemon=True
        )
        self._thread.start()
        started.wait()
        if failure:
            self._thread.join()
            self._thread = None
            raise failure[0]
        return self

    def shutdown(self, timeout: float = 30.0) -> None:
        """Stop a :meth:`start_in_thread` server and join its thread."""
        if self._thread is None or self._loop is None:
            return
        loop = self._loop
        future = asyncio.run_coroutine_threadsafe(self.stop(), loop)
        future.result(timeout=timeout)
        loop.call_soon_threadsafe(loop.stop)
        self._thread.join(timeout=timeout)
        self._thread = None

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Server-level counters (also served over the wire as STATS)."""
        return {
            "connections_active": len(self._connections),
            "connections_parked": len(self._parked),
            "active_transactions": len(self.db.active_transactions),
            "prepared_statements": len(self._prepared),
            "prepared_2pc": len(self.db.prepared_gtids),
            "in_doubt_2pc": len(self.db.recovered_in_doubt),
            # Listed so a cluster coordinator can re-deliver decisions.
            "in_doubt_gtids": list(self.db.recovered_in_doubt),
            # Live prepared gtids: the in-doubt resolver uses these to
            # spot orphans whose coordinator died before deciding.
            "prepared_gtids": list(self.db.prepared_gtids),
            "max_connections": self.max_connections,
            "backpressure": self.backpressure,
            # Clients gate wire-level shortcuts on the hosted engine's
            # regime (read-only COMMIT acks are deferrable only under SI).
            "isolation": self.db.config.isolation.value,
            **self._counters,
        }

    # ------------------------------------------------------------------
    # Connection admission / reaping (loop thread)
    # ------------------------------------------------------------------
    def _on_connection_made(self, proto: _ServerProtocol) -> None:
        if self._closing:
            proto.kill()
            return
        self._protocols.add(proto)
        if len(self._connections) < self.max_connections:
            self._admit(proto)
        elif self.backpressure:
            # Park: stop reading until a slot frees.
            proto.transport.pause_reading()
            self._parked.append(proto)
        else:
            self._counters["rejected_total"] += 1
            if self.obs is not None:
                self.obs.net_connection_rejected()
            proto._send(
                error_payload(
                    ConnectionClosed(
                        f"server at capacity "
                        f"({self.max_connections} connections)"
                    )
                )
            )
            proto.kill()

    def _admit(self, proto: _ServerProtocol) -> None:
        self._conn_counter += 1
        conn = _ClientConnection(self._conn_counter, Session._internal(self.db))
        proto.conn = conn
        self._connections[conn.conn_id] = conn
        self._counters["connections_total"] += 1
        self._counters["sessions_opened"] += 1
        if self.obs is not None:
            self.obs.net_connection_opened(len(self._connections))
        proto.pump()  # frames may have queued while parked

    def _on_connection_lost(self, proto: _ServerProtocol) -> None:
        self._protocols.discard(proto)
        if proto.conn is None:
            try:
                self._parked.remove(proto)
            except ValueError:
                pass
            return
        self._track(asyncio.ensure_future(self._cleanup(proto.conn)))

    async def _cleanup(self, conn: _ClientConnection) -> None:
        """Reap one connection: abort its transaction, free its slot."""
        loop = asyncio.get_running_loop()
        try:
            # Run on the connection's executor so it serializes after any
            # in-flight statement of the same session.
            await loop.run_in_executor(conn.executor, conn.session.close)
        except Exception:  # pragma: no cover - close is best-effort
            pass
        conn.executor.shutdown(wait=False)
        self._connections.pop(conn.conn_id, None)
        self._counters["sessions_closed"] += 1
        if self.obs is not None:
            self.obs.net_connection_closed(len(self._connections))
        while self._parked and len(self._connections) < self.max_connections:
            waiter = self._parked.popleft()
            if waiter.closed:
                continue
            self._admit(waiter)
            waiter.transport.resume_reading()

    def _track(self, task: "asyncio.Task") -> None:
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    def _note_protocol_error(self, kind: str) -> None:
        self._counters["protocol_errors_total"] += 1
        if self.obs is not None:
            self.obs.net_protocol_error(kind)

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------
    def _can_inline(self, conn: _ClientConnection, op: object) -> bool:
        """Whether this request may be *attempted* on the loop thread.

        Single engine operations are WouldBlock-safe: the non-blocking
        core returns ``WaitOn`` *instead of* applying the operation, so a
        retry on the worker thread re-runs it from scratch.  COMMIT never
        returns ``WaitOn``; its only internal blocking is the group-commit
        flush mutex (short, in-memory — the "leader" drains every staged
        record itself, no condition wait), so it is loop-safe too.  EXEC
        spans several engine operations; ``_serve`` guards its retry
        safety explicitly (see there), so it is inline-attemptable as
        well.  Everything is currently inline-first; the hook stays for
        future ops with non-retryable side effects.
        """
        return True

    def _serve(self, conn: _ClientConnection, message: dict, blocking: bool) -> dict:
        """Execute one request (loop thread when ``blocking`` is False,
        the connection's worker thread when True) and build the response.

        A :class:`WouldBlock` escape from the inline attempt is *not* an
        RPC outcome — it propagates to the caller, which re-dispatches the
        same message on the worker thread with the blocking waiter.  That
        re-dispatch is sound only if the aborted attempt left no staged
        write behind: engine ops stage nothing when they return ``WaitOn``
        (reads and lock re-acquisition are idempotent on retry), and a
        mini-SQL statement stages at most one write as its final effect —
        but the ``txn.writes`` guard below enforces it rather than trusting
        the statement grammar.
        """
        op = message.get("op")
        obs = self.obs
        started = obs.now() if obs is not None else 0.0
        session = conn.session
        session.waiter = conn.blocking_waiter if blocking else _NOWAIT
        began = None
        txn_before = session.txn
        writes_before = (
            len(txn_before.writes)
            if txn_before is not None and txn_before.is_active
            else 0
        )
        try:
            handler = self._HANDLERS.get(op)
            if handler is None:
                self._note_protocol_error("unknown-op")
                raise ProtocolError(f"unknown operation {op!r}")
            try:
                # Piggybacked BEGIN (deferred by the client to save a
                # round trip).  Guarded on in_transaction so a WouldBlock
                # re-dispatch does not begin twice.
                label = message.get("begin")
                if label is not None and op != "BEGIN" and not session.in_transaction:
                    began = session.begin(str(label))
                response = handler(self, conn, message)
            except KeyError as exc:
                self._note_protocol_error("missing-field")
                raise ProtocolError(
                    f"request {op} is missing field {exc.args[0]!r}"
                ) from None
            response["ok"] = True
            if message.get("begin") is not None and op != "BEGIN":
                txn_now = session.txn
                if began is not None:
                    response["begin_txid"] = began.txid
                    response["begin_snapshot_ts"] = began.snapshot_ts
                elif txn_now is not None and txn_now is not txn_before:
                    # Begun by an earlier inline attempt of this same
                    # message (WouldBlock re-dispatch): still report it.
                    response["begin_txid"] = txn_now.txid
                    response["begin_snapshot_ts"] = txn_now.snapshot_ts
            self._counters["rpcs_total"] += 1
            if obs is not None:
                obs.net_rpc(str(op), obs.now() - started, True)
            return response
        except WouldBlock:
            # Escalate to the worker thread; not an RPC outcome.  Only
            # sound when the attempt staged nothing (see docstring) —
            # unreachable with the current statement grammar, but abort
            # rather than risk double-applying a partially run statement.
            txn_now = session.txn
            if (
                txn_now is not None
                and txn_now.is_active
                and len(txn_now.writes) != writes_before
            ):  # pragma: no cover - defensive
                self.db.abort(txn_now, reason="net-retry-unsafe")
                self._counters["rpcs_total"] += 1
                if obs is not None:
                    obs.net_rpc(str(op or "?"), obs.now() - started, False)
                return error_payload(
                    TransactionAborted(
                        "statement blocked after staging writes; "
                        "transaction aborted (not retryable in place)"
                    )
                )
            raise
        except ReproError as exc:
            self._counters["rpcs_total"] += 1
            if obs is not None:
                obs.net_rpc(str(op or "?"), obs.now() - started, False)
            return error_payload(exc)

    # --- handlers ------------------------------------------------------
    def _op_ping(self, conn: _ClientConnection, msg: dict) -> dict:
        return {"pong": True}

    def _op_stats(self, conn: _ClientConnection, msg: dict) -> dict:
        return {"stats": self.stats()}

    def _op_begin(self, conn: _ClientConnection, msg: dict) -> dict:
        txn = conn.session.begin(str(msg.get("label", "")))
        return {"txid": txn.txid, "snapshot_ts": txn.snapshot_ts}

    def _op_read(self, conn: _ClientConnection, msg: dict) -> dict:
        row = conn.session.select(msg["table"], msg["key"])
        return {"row": row}

    def _op_select_for_update(self, conn: _ClientConnection, msg: dict) -> dict:
        row = conn.session.select_for_update(msg["table"], msg["key"])
        return {"row": row}

    def _op_lookup_unique(self, conn: _ClientConnection, msg: dict) -> dict:
        found = conn.session.lookup_unique(
            msg["table"], msg["column"], msg["value"]
        )
        return {"found": list(found) if found is not None else None}

    def _op_scan(self, conn: _ClientConnection, msg: dict) -> dict:
        matches = conn.session.scan(
            msg["table"], description=str(msg.get("description", "<scan>"))
        )
        return {"rows": [[key, row] for key, row in matches]}

    def _op_write(self, conn: _ClientConnection, msg: dict) -> dict:
        conn.session.write(
            msg["table"],
            msg["key"],
            msg["row"],
            kind=str(msg.get("kind", "update")),
        )
        return {}

    def _op_insert(self, conn: _ClientConnection, msg: dict) -> dict:
        conn.session.insert(msg["table"], msg["row"])
        return {}

    def _op_delete(self, conn: _ClientConnection, msg: dict) -> dict:
        conn.session.delete(msg["table"], msg["key"])
        return {}

    def _op_commit(self, conn: _ClientConnection, msg: dict) -> dict:
        conn.session.commit()
        return {}

    def _op_rollback(self, conn: _ClientConnection, msg: dict) -> dict:
        conn.session.rollback()
        return {}

    def _op_vacuum(self, conn: _ClientConnection, msg: dict) -> dict:
        pruned = self.db.vacuum()
        self._counters["vacuum_runs"] += 1
        self._counters["vacuum_pruned_total"] += pruned
        return {"pruned": pruned}

    # --- two-phase commit (coordinator -> participant ops) --------------
    def _op_prepare_2pc(self, conn: _ClientConnection, msg: dict) -> dict:
        """Phase one: vote on this connection's open transaction.

        On a YES the transaction is *detached* from the session: a
        prepared transaction belongs to the coordinator's decision, not
        to the wire it arrived on — the client disconnecting (or the
        session being reused) must not roll it back.  The decision ops
        below address it by gtid and work on any connection.
        """
        gtid = str(msg["gtid"])
        session = conn.session
        txn = session.txn
        if txn is None or not txn.is_active:
            raise TransactionStateError("no active transaction to prepare")
        self.db.prepare_commit(txn, gtid)
        session.txn = None  # survives disconnect; resolved only by gtid
        return {"prepared": True, "gtid": gtid}

    def _op_commit_2pc(self, conn: _ClientConnection, msg: dict) -> dict:
        commit_ts = self.db.commit_prepared(str(msg["gtid"]))
        return {"commit_ts": commit_ts}

    def _op_abort_2pc(self, conn: _ClientConnection, msg: dict) -> dict:
        self.db.abort_prepared(str(msg["gtid"]))
        return {}

    def _statement(self, sql: str, kind: Optional[str]) -> tuple[int, PreparedStatement]:
        cache_key = (sql, kind)
        with self._prepared_lock:
            entry = self._prepared.get(cache_key)
            if entry is None:
                statement = PreparedStatement(sql, kind=kind)
                entry = (
                    self._sid_base + len(self._prepared_by_id),
                    statement,
                )
                self._prepared_by_id.append(statement)
                self._prepared[cache_key] = entry
        return entry

    def _resolve_statement(self, msg: dict) -> tuple[int, PreparedStatement]:
        """EXEC/PREPARE statement lookup: by ``sid`` (fast path, no SQL
        text on the wire) or by ``sql`` text (registers and returns the
        sid for the client to cache)."""
        sid = msg.get("sid")
        if sid is not None:
            statements = self._prepared_by_id
            index = sid - self._sid_base if isinstance(sid, int) else -1
            if not 0 <= index < len(statements):
                raise ProtocolError(f"unknown statement id {sid!r}")
            return sid, statements[index]
        kind = msg.get("kind")
        return self._statement(
            str(msg["sql"]), str(kind) if kind is not None else None
        )

    def _op_prepare(self, conn: _ClientConnection, msg: dict) -> dict:
        sid, statement = self._resolve_statement(msg)
        return {"sid": sid, "kind": statement.kind}

    def _op_exec(self, conn: _ClientConnection, msg: dict) -> dict:
        sid, statement = self._resolve_statement(msg)
        params = msg.get("params") or {}
        if not isinstance(params, dict):
            raise ProtocolError("EXEC params must be a JSON object")
        # Echo back only the parameters the statement changed (its
        # ``INTO :var`` bindings): the client merges the delta in place,
        # and unchanged values would merge to themselves anyway.  Only
        # SELECT ... INTO can bind at all, so anything else skips the
        # before-copy and the delta scan (and the empty-field bytes).
        ast = statement.statement
        binds = isinstance(ast, Select) and bool(ast.into)
        before = dict(params) if binds else None
        commit = bool(msg.get("commit"))
        try:
            result = statement.execute(conn.session, params)
        except WouldBlock:
            raise  # re-dispatched on the worker thread, commit included
        except ReproError:
            # Piggybacked COMMIT (see the client's ``commit``): the batch
            # was declared to end here, so a failed statement means the
            # transaction can never commit — roll it back before replying
            # rather than leave it (and its locks) open on a wire the
            # client is about to pool as idle.
            if commit and conn.session.in_transaction:
                conn.session.rollback()
            raise
        if commit:
            conn.session.commit()
        response: dict = {}
        if result.rows:
            response["rows"] = result.rows
        if result.rowcount:
            response["rowcount"] = result.rowcount
        if binds:
            response["params"] = {
                k: v
                for k, v in params.items()
                if k not in before or before[k] != v
            }
        if commit:
            response["committed"] = True
        if "sid" not in msg:  # first sight: teach the client the id
            response["sid"] = sid
        return response

    _HANDLERS = {
        "PING": _op_ping,
        "STATS": _op_stats,
        "BEGIN": _op_begin,
        "READ": _op_read,
        "SELECT_FOR_UPDATE": _op_select_for_update,
        "LOOKUP_UNIQUE": _op_lookup_unique,
        "SCAN": _op_scan,
        "WRITE": _op_write,
        "INSERT": _op_insert,
        "DELETE": _op_delete,
        "COMMIT": _op_commit,
        "ROLLBACK": _op_rollback,
        "PREPARE": _op_prepare,
        "EXEC": _op_exec,
        "VACUUM": _op_vacuum,
        "PREPARE_2PC": _op_prepare_2pc,
        "COMMIT_2PC": _op_commit_2pc,
        "ABORT_2PC": _op_abort_2pc,
    }
