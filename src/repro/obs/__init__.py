"""``repro.obs`` — zero-overhead-by-default observability (DESIGN.md §10).

Three parts:

* :mod:`repro.obs.trace` — a structured trace of transaction lifecycle
  events, dumpable to JSONL and consumable by the MVSG checker;
* :mod:`repro.obs.metrics` — a registry of counters, gauges and
  fixed-bucket latency histograms with JSON and Prometheus expositions;
* :class:`Observability` — the bundle the engine, session layer and
  drivers talk to.  It owns the canonical metric names and pre-registers
  every engine-level instrument, so an exported registry always carries
  the full schema (WAL batch sizes, SSI aborts, ...) even when a counter
  never fired.

The overhead contract: nothing in the hot paths allocates, locks or even
calls a function unless an :class:`Observability` is installed — every
hook in the engine is gated on an ``is not None`` check of one attribute,
the same pattern the fault layer uses.  With no instance installed, seed
figures are bit-identical.

``clock`` decides what timestamps mean: wall-clock seconds for threaded
runs (the default), simulated seconds when the simulation runner installs
the bundle (it rebinds the clock to ``sim.now`` via :meth:`use_clock`).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Optional

from repro.obs.metrics import (
    LATENCY_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import EVENT_KINDS, OWN_WRITE_TS, TraceEvent, TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids engine cycle)
    from repro.engine.engine import WaitOn
    from repro.engine.locks import RowId
    from repro.engine.transaction import Transaction
    from repro.engine.wal import WalRecord

__all__ = [
    "Observability",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "TraceRecorder",
    "TraceEvent",
    "EVENT_KINDS",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "OWN_WRITE_TS",
]

#: Attempt-count buckets for the retry histograms.
ATTEMPT_BUCKETS = (1, 2, 3, 4, 5, 6, 8, 10)


class Observability:
    """Metrics registry + optional trace recorder + the clock for both.

    Install on a database with
    :meth:`repro.engine.engine.Database.install_observability`; the
    threaded driver and the simulation runner do this for you when handed
    an instance.  All emit helpers are cheap no-ops for the parts that are
    absent (no trace recorder -> trace events are skipped; the registry is
    always present).
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        trace: Optional[TraceRecorder] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.trace = trace
        if clock is None:
            epoch = time.monotonic()
            clock = lambda: time.monotonic() - epoch  # noqa: E731
        self.clock = clock
        m = self.metrics
        # Engine-level instruments, pre-registered so every exposition
        # carries the full schema regardless of what actually fired.
        self.begins = m.counter(
            "repro_txn_begins_total", help="Transactions started"
        )
        self.commits = m.counter(
            "repro_txn_commits_total", help="Transactions committed"
        )
        self.reads = m.counter(
            "repro_engine_reads_total", help="Row reads served by the engine"
        )
        self.writes = m.counter(
            "repro_engine_writes_total", help="Row writes staged by the engine"
        )
        self.commit_path = m.histogram(
            "repro_commit_path_seconds",
            help="Commit entry to durable acknowledgement",
        )
        self.lock_wait = m.histogram(
            "repro_lock_wait_seconds", help="Row-lock wait durations"
        )
        self.lock_waits_total = m.counter(
            "repro_lock_waits_total", help="Row-lock waits entered"
        )
        self.lock_timeouts = m.counter(
            "repro_lock_timeouts_total", help="Lock waits that expired"
        )
        self.wal_flush = m.histogram(
            "repro_wal_flush_seconds", help="Group-commit flush durations"
        )
        self.wal_batch = m.histogram(
            "repro_wal_batch_size",
            help="Records per group-commit flush (leader batches)",
            buckets=SIZE_BUCKETS,
        )
        self.wal_last_batch = m.gauge(
            "repro_wal_last_batch_size", help="Size of the newest flushed batch"
        )
        self.wal_records = m.counter(
            "repro_wal_records_total", help="WAL records staged"
        )
        self.ssi_aborts = m.counter(
            "repro_ssi_aborts_total",
            help=(
                "Aborts by the SSI certifier (conservative dangerous-"
                "structure detection: every one is a potential false positive)"
            ),
        )
        self.vacuum_reclaimed = m.counter(
            "repro_vacuum_reclaimed_total", help="Versions pruned by vacuum"
        )
        self.chain_max = m.gauge(
            "repro_version_chain_max_length",
            help="Longest committed version chain at last sample",
        )
        self.chain_mean = m.gauge(
            "repro_version_chain_mean_length",
            help="Mean committed version chain length at last sample",
        )
        self.response_time = m.histogram(
            "repro_response_time_seconds",
            help="Per-transaction response time observed by the driver",
        )
        # Network service layer (DESIGN.md §11), pre-registered like the
        # engine schema so an exported registry always carries it.
        self.net_connections = m.gauge(
            "repro_net_connections", help="Currently open server connections"
        )
        self.net_connections_total = m.counter(
            "repro_net_connections_total", help="Server connections accepted"
        )
        self.net_rejected = m.counter(
            "repro_net_rejected_total",
            help="Connections refused at the max-connection limit",
        )
        self.net_protocol_errors = m.counter(
            "repro_net_protocol_errors_total",
            help="Wire-protocol violations observed by the server",
        )
        self.net_rpc_latency = m.histogram(
            "repro_net_rpc_seconds", help="Server-side RPC service time"
        )
        self.net_client_rpc_latency = m.histogram(
            "repro_net_client_rpc_seconds",
            help="Client-observed RPC round-trip time",
        )
        # Distributed chaos / recovery instruments (DESIGN.md §13),
        # pre-registered so the Prometheus/JSON expositions always carry
        # the fault, reconnect and in-doubt schema even on clean runs.
        self.faults_injected = m.counter(
            "repro_faults_injected_total",
            help="Faults fired by the installed FaultPlan",
        )
        self.net_reconnects = m.counter(
            "repro_net_reconnects_total",
            help="Client redials after a connection failure (idempotent ops)",
        )
        self.cluster_in_doubt_resolved_total = m.counter(
            "repro_cluster_in_doubt_resolved_total",
            help="In-doubt gtids resolved by coordinator-decision redelivery",
        )
        self.cluster_coordinator_crashes = m.counter(
            "repro_cluster_coordinator_crashes_total",
            help="Coordinator crashes inside the prepare-to-decision window",
        )
        self.cluster_heartbeats = m.counter(
            "repro_cluster_heartbeats_total",
            help="Shard heartbeat probes sent by the cluster client",
        )
        self.cluster_shards_unhealthy = m.gauge(
            "repro_cluster_shards_unhealthy",
            help="Shards currently marked unhealthy by heartbeat tracking",
        )
        # Fleet / fan-out instruments (DESIGN.md §14).
        self.cluster_fanout_broadcasts = m.counter(
            "repro_cluster_fanout_broadcasts_total",
            help="Concurrent per-shard RPC broadcasts through the fan-out pool",
        )
        self.cluster_fanout_width = m.histogram(
            "repro_cluster_fanout_width",
            help="Shards addressed per fan-out broadcast",
        )
        self.fleet_spawns = m.counter(
            "repro_fleet_spawns_total",
            help="Shard OS processes launched by the fleet manager",
        )
        self.fleet_restarts = m.counter(
            "repro_fleet_restarts_total",
            help="Shard engine crash/recover cycles driven over the fleet "
            "control channel",
        )

    # ------------------------------------------------------------------
    def now(self) -> float:
        return self.clock()

    def use_clock(self, clock: Callable[[], float]) -> None:
        """Rebind the time source (e.g. to simulated time) in place."""
        self.clock = clock
        if self.trace is not None:
            self.trace.clock = clock

    def _emit(self, kind: str, txid: int, label: str, **detail: object) -> None:
        trace = self.trace
        if trace is not None:
            trace.emit(kind, txid, label, at=self.clock(), **detail)

    # ------------------------------------------------------------------
    # Engine hooks (called by Database / Session with an instance installed)
    # ------------------------------------------------------------------
    def engine_begin(self, txn: "Transaction") -> None:
        self.begins.inc()
        self._emit("begin", txn.txid, txn.label, snapshot_ts=txn.snapshot_ts)

    def engine_read(self, txn: "Transaction", row: "RowId", version_ts: int) -> None:
        self.reads.inc()
        self._emit("read", txn.txid, txn.label, row=row, version_ts=version_ts)

    def engine_write(self, txn: "Transaction", row: "RowId") -> None:
        self.writes.inc()
        self._emit("write", txn.txid, txn.label, row=row)

    def engine_commit(self, txn: "Transaction", seconds: float) -> None:
        self.commits.inc()
        self.commit_path.observe(seconds)
        self._emit(
            "commit", txn.txid, txn.label,
            commit_ts=txn.commit_ts, seconds=round(seconds, 9),
        )

    def engine_abort(self, txn: "Transaction", reason: str) -> None:
        self.metrics.counter(
            "repro_txn_aborts_total",
            labels={"reason": reason},
            help="Transactions aborted, by reason tag",
        ).inc()
        if reason == "ssi":
            self.ssi_aborts.inc()
        self._emit("abort", txn.txid, txn.label, reason=reason)

    def engine_wal_stage(self, txn: "Transaction", record: "WalRecord") -> None:
        self.wal_records.inc()
        self._emit(
            "wal-stage", txn.txid, txn.label,
            commit_ts=record.commit_ts, rows=len(record.rows),
        )

    def engine_wal_flush(
        self, txn: "Transaction", batch: int, seconds: float
    ) -> None:
        """One :meth:`GroupCommitBuffer.sync` returned; ``batch`` is the
        number of records this caller flushed (0 = follower, its record was
        covered by another leader's batch)."""
        if batch > 0:
            self.wal_batch.observe(batch)
            self.wal_last_batch.set(batch)
            self.wal_flush.observe(seconds)
            self._emit(
                "wal-flush", txn.txid, txn.label,
                batch=batch, seconds=round(seconds, 9),
            )

    def lock_wait_start(self, txn: "Transaction", wait: "WaitOn") -> None:
        self.lock_waits_total.inc()
        self._emit(
            "lock-wait-start", txn.txid, txn.label,
            blockers=sorted(wait.blocker_ids),
        )

    def lock_wait_end(
        self, txn: "Transaction", wait: "WaitOn", seconds: float, timed_out: bool
    ) -> None:
        self.lock_wait.observe(seconds)
        if timed_out:
            self.lock_timeouts.inc()
        self._emit(
            "lock-wait-end", txn.txid, txn.label,
            blockers=sorted(wait.blocker_ids),
            seconds=round(seconds, 9), timed_out=timed_out,
        )

    def engine_vacuum(self, reclaimed: int) -> None:
        self.vacuum_reclaimed.inc(reclaimed)

    def engine_version_stats(self, lengths: "list[int]") -> None:
        if lengths:
            self.chain_max.set(max(lengths))
            self.chain_mean.set(sum(lengths) / len(lengths))

    # ------------------------------------------------------------------
    # Network service hooks (repro.net server)
    # ------------------------------------------------------------------
    def net_connection_opened(self, active: int) -> None:
        self.net_connections_total.inc()
        self.net_connections.set(active)

    def net_connection_closed(self, active: int) -> None:
        self.net_connections.set(active)

    def net_connection_rejected(self) -> None:
        self.net_rejected.inc()

    def net_protocol_error(self, kind: str) -> None:
        self.net_protocol_errors.inc()
        self.metrics.counter(
            "repro_net_protocol_errors_total",
            labels={"kind": kind},
            help="Wire-protocol violations observed by the server, by kind",
        ).inc()

    def net_client_rpc(self, op: str, seconds: float, ok: bool) -> None:
        self.net_client_rpc_latency.observe(seconds)
        self.metrics.histogram(
            "repro_net_client_rpc_seconds", labels={"op": op}
        ).observe(seconds)
        self.metrics.counter(
            "repro_net_client_rpcs_total",
            labels={"op": op, "ok": "true" if ok else "false"},
            help="Client RPCs issued, by operation and outcome",
        ).inc()

    def net_rpc(self, op: str, seconds: float, ok: bool) -> None:
        self.net_rpc_latency.observe(seconds)
        self.metrics.histogram(
            "repro_net_rpc_seconds", labels={"op": op}
        ).observe(seconds)
        self.metrics.counter(
            "repro_net_rpcs_total",
            labels={"op": op, "ok": "true" if ok else "false"},
            help="RPCs served, by operation and outcome",
        ).inc()

    # ------------------------------------------------------------------
    # Chaos / cluster-recovery hooks (repro.faults + repro.cluster)
    # ------------------------------------------------------------------
    def fault_injected(self, point: str) -> None:
        self.faults_injected.inc()
        self.metrics.counter(
            "repro_faults_injected_total",
            labels={"point": point},
            help="Faults fired by the installed FaultPlan, by injection point",
        ).inc()

    def net_reconnect(self, op: str) -> None:
        self.net_reconnects.inc()
        self.metrics.counter(
            "repro_net_reconnects_total",
            labels={"op": op},
            help="Client redials after a connection failure, by operation",
        ).inc()

    def cluster_in_doubt_resolved(self, outcome: str) -> None:
        self.cluster_in_doubt_resolved_total.inc()
        self.metrics.counter(
            "repro_cluster_in_doubt_resolved_total",
            labels={"outcome": outcome},
            help="In-doubt gtids resolved by redelivery, by outcome",
        ).inc()

    def cluster_coordinator_crash(self) -> None:
        self.cluster_coordinator_crashes.inc()

    def cluster_heartbeat(self, shard: int, ok: bool) -> None:
        self.cluster_heartbeats.inc()
        self.metrics.counter(
            "repro_cluster_heartbeats_total",
            labels={"shard": shard, "ok": "true" if ok else "false"},
            help="Shard heartbeat probes, by shard and outcome",
        ).inc()

    def cluster_shard_health(self, unhealthy: int) -> None:
        self.cluster_shards_unhealthy.set(unhealthy)

    def cluster_fanout(self, op: str, width: int) -> None:
        """One concurrent per-shard broadcast through the fan-out pool."""
        self.cluster_fanout_broadcasts.inc()
        self.cluster_fanout_width.observe(width)
        self.metrics.counter(
            "repro_cluster_fanout_broadcasts_total",
            labels={"op": op},
            help="Fan-out broadcasts, by router operation",
        ).inc()

    def fleet_spawn(self, shard: int) -> None:
        self.fleet_spawns.inc()

    def fleet_restart(self, shard: int) -> None:
        self.fleet_restarts.inc()

    # ------------------------------------------------------------------
    # Driver hooks (program-labelled run accounting)
    # ------------------------------------------------------------------
    def driver_commit(self, program: str, response_time: float, attempts: int) -> None:
        self.response_time.observe(response_time)
        self.metrics.histogram(
            "repro_response_time_seconds", labels={"program": program}
        ).observe(response_time)
        self.metrics.counter(
            "repro_driver_commits_total",
            labels={"program": program},
            help="Committed logical requests per program",
        ).inc()
        self.metrics.histogram(
            "repro_driver_attempts",
            labels={"program": program},
            help="Attempts needed per committed request",
            buckets=ATTEMPT_BUCKETS,
        ).observe(attempts)

    def driver_abort(self, program: str, reason: str) -> None:
        self.metrics.counter(
            "repro_driver_aborts_total",
            labels={"program": program, "reason": reason},
            help="Aborted attempts per program and reason",
        ).inc()

    def driver_rollback(self, program: str) -> None:
        self.metrics.counter(
            "repro_driver_rollbacks_total",
            labels={"program": program},
            help="Business rollbacks per program",
        ).inc()

    def driver_retry(self, program: str) -> None:
        self.metrics.counter(
            "repro_driver_retries_total",
            labels={"program": program},
            help="In-place retries actually attempted per program",
        ).inc()

    def driver_giveup(self, program: str) -> None:
        self.metrics.counter(
            "repro_driver_giveups_total",
            labels={"program": program},
            help="Logical requests abandoned per program",
        ).inc()
