"""Metrics registry: counters, gauges and fixed-bucket latency histograms.

The registry is the quantitative half of the observability layer
(DESIGN.md §10).  It is deliberately small and dependency-free:

* **Counter** — a monotonically increasing float (``inc``);
* **Gauge** — a point-in-time value (``set`` / ``inc`` / ``dec``);
* **Histogram** — fixed upper-bound buckets (Prometheus-style cumulative
  exposition) with an exact ``sum``/``count`` and interpolated quantiles
  (:meth:`Histogram.quantile`, plus ``p50``/``p95``/``p99`` shortcuts).

Instruments are identified by ``(name, labels)`` and created lazily by the
get-or-create accessors (:meth:`MetricsRegistry.counter` etc.); asking for
an existing name with a different instrument kind is an error.  Every
instrument is thread-safe — the threaded driver's workers all write into
one shared registry.

Two expositions are provided: :meth:`MetricsRegistry.to_json` (nested
dict, what ``--metrics-out`` and ``BENCH_engine.json`` store) and
:meth:`MetricsRegistry.to_prometheus` (the text format scraped by a
Prometheus server, with ``_bucket``/``_sum``/``_count`` series per
histogram).

Quantiles from fixed buckets are estimates: the value is linearly
interpolated inside the bucket that contains the target rank, which is the
same estimate ``histogram_quantile`` computes server-side in PromQL.
Buckets therefore should bracket the latencies of interest —
:data:`LATENCY_BUCKETS` spans 50 µs to 10 s logarithmically, and
:data:`SIZE_BUCKETS` covers small integer sizes (group-commit batches,
attempts).
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from typing import Iterable, Mapping, Optional

#: Log-spaced latency buckets (seconds), 50 µs .. 10 s.
LATENCY_BUCKETS: tuple[float, ...] = (
    0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Small-integer size buckets (batch sizes, attempt counts).
SIZE_BUCKETS: tuple[float, ...] = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 64)

Labels = tuple[tuple[str, str], ...]
"""Canonical (sorted) label form used as part of an instrument's key."""


def _canon_labels(labels: "Mapping[str, object] | None") -> Labels:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(labels: Labels, extra: "tuple[tuple[str, str], ...]" = ()) -> str:
    pairs = labels + extra
    if not pairs:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + body + "}"


class _Instrument:
    """Base: a named, optionally labelled, thread-safe instrument."""

    kind = "untyped"

    def __init__(self, name: str, labels: Labels = ()) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()


class Counter(_Instrument):
    """Monotonically increasing value."""

    kind = "counter"

    def __init__(self, name: str, labels: Labels = ()) -> None:
        super().__init__(name, labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge(_Instrument):
    """Point-in-time value."""

    kind = "gauge"

    def __init__(self, name: str, labels: Labels = ()) -> None:
        super().__init__(name, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram(_Instrument):
    """Fixed-bucket histogram with exact sum/count and estimated quantiles.

    ``buckets`` are ascending upper bounds; one implicit ``+Inf`` bucket is
    appended, so every observation lands somewhere.  Per-bucket counts are
    stored non-cumulatively and cumulated at exposition time.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: Labels = (),
        buckets: "Iterable[float] | None" = None,
    ) -> None:
        super().__init__(name, labels)
        bounds = tuple(buckets) if buckets is not None else LATENCY_BUCKETS
        if not bounds or list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be strictly ascending and non-empty")
        self.bounds = tuple(float(b) for b in bounds)
        self._counts = [0] * (len(self.bounds) + 1)  # last = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def bucket_counts(self) -> "tuple[tuple[float, int], ...]":
        """Cumulative (upper_bound, count) pairs, ending with +Inf."""
        with self._lock:
            counts = list(self._counts)
        total = 0
        out: list[tuple[float, int]] = []
        for bound, count in zip(self.bounds + (float("inf"),), counts):
            total += count
            out.append((bound, total))
        return tuple(out)

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``0 <= q <= 1``) by linear
        interpolation inside the bucket holding the target rank.

        Observations beyond the last finite bound are reported as that
        bound (the estimate cannot exceed the instrumented range); an
        empty histogram reports 0.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            counts = list(self._counts)
            total = self._count
        if total == 0:
            return 0.0
        rank = q * total
        cumulative = 0
        for idx, count in enumerate(counts):
            if count == 0:
                continue
            lower = self.bounds[idx - 1] if idx > 0 else 0.0
            if idx >= len(self.bounds):  # +Inf bucket: clamp to last bound
                return self.bounds[-1]
            upper = self.bounds[idx]
            if cumulative + count >= rank:
                fraction = (rank - cumulative) / count
                return lower + (upper - lower) * min(1.0, max(0.0, fraction))
            cumulative += count
        return self.bounds[-1]

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)


class MetricsRegistry:
    """Get-or-create home for every instrument of one run.

    One registry per measured run (the drivers create or receive one);
    merging across runs is the caller's concern — exposition is cheap, so
    benchmarks export one registry per configuration instead.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[tuple[str, Labels], _Instrument] = {}
        self._kinds: dict[str, str] = {}
        self._help: dict[str, str] = {}

    # ------------------------------------------------------------------
    def _get_or_create(
        self,
        cls: type,
        name: str,
        labels: "Mapping[str, object] | None",
        help: str,
        **kwargs,
    ) -> _Instrument:
        key = (name, _canon_labels(labels))
        with self._lock:
            existing = self._instruments.get(key)
            if existing is not None:
                if existing.kind != cls.kind:
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            if self._kinds.setdefault(name, cls.kind) != cls.kind:
                raise ValueError(
                    f"metric {name!r} already registered as {self._kinds[name]}"
                )
            instrument = cls(name, key[1], **kwargs)
            self._instruments[key] = instrument
            if help and name not in self._help:
                self._help[name] = help
            return instrument

    def counter(
        self, name: str, labels: "Mapping[str, object] | None" = None, help: str = ""
    ) -> Counter:
        return self._get_or_create(Counter, name, labels, help)

    def gauge(
        self, name: str, labels: "Mapping[str, object] | None" = None, help: str = ""
    ) -> Gauge:
        return self._get_or_create(Gauge, name, labels, help)

    def histogram(
        self,
        name: str,
        labels: "Mapping[str, object] | None" = None,
        help: str = "",
        buckets: "Iterable[float] | None" = None,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, labels, help, buckets=buckets)

    # ------------------------------------------------------------------
    def get(
        self, name: str, labels: "Mapping[str, object] | None" = None
    ) -> Optional[_Instrument]:
        return self._instruments.get((name, _canon_labels(labels)))

    def names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._kinds))

    def __iter__(self):
        with self._lock:
            items = sorted(self._instruments.items())
        return iter(instrument for _key, instrument in items)

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        """Nested-dict exposition: ``{name: {type, help, series: [...]}}``."""
        out: dict = {}
        for instrument in self:
            entry = out.setdefault(
                instrument.name,
                {
                    "type": instrument.kind,
                    "help": self._help.get(instrument.name, ""),
                    "series": [],
                },
            )
            series: dict = {"labels": dict(instrument.labels)}
            if isinstance(instrument, Histogram):
                series.update(
                    count=instrument.count,
                    sum=round(instrument.sum, 9),
                    mean=round(instrument.mean, 9),
                    p50=round(instrument.p50, 9),
                    p95=round(instrument.p95, 9),
                    p99=round(instrument.p99, 9),
                    buckets={
                        ("+Inf" if bound == float("inf") else repr(bound)): count
                        for bound, count in instrument.bucket_counts()
                    },
                )
            else:
                series["value"] = instrument.value
            entry["series"].append(series)
        return out

    def dump_json(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        seen_header: set[str] = set()
        for instrument in self:
            if instrument.name not in seen_header:
                seen_header.add(instrument.name)
                help_text = self._help.get(instrument.name, "")
                if help_text:
                    lines.append(f"# HELP {instrument.name} {help_text}")
                lines.append(f"# TYPE {instrument.name} {instrument.kind}")
            if isinstance(instrument, Histogram):
                for bound, cumulative in instrument.bucket_counts():
                    le = "+Inf" if bound == float("inf") else repr(bound)
                    label_text = _format_labels(instrument.labels, (("le", le),))
                    lines.append(
                        f"{instrument.name}_bucket{label_text} {cumulative}"
                    )
                base = _format_labels(instrument.labels)
                lines.append(f"{instrument.name}_sum{base} {instrument.sum}")
                lines.append(f"{instrument.name}_count{base} {instrument.count}")
            else:
                label_text = _format_labels(instrument.labels)
                lines.append(f"{instrument.name}{label_text} {instrument.value}")
        return "\n".join(lines) + ("\n" if lines else "")

    def dump_prometheus(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_prometheus())
