"""Structured transaction-lifecycle tracing.

The trace is the qualitative half of the observability layer (DESIGN.md
§10): an append-only stream of :class:`TraceEvent` records describing what
every transaction did and when — ``begin``, ``read``, ``write``,
``lock-wait-start`` / ``lock-wait-end``, ``wal-stage`` / ``wal-flush``,
``commit`` and ``abort`` (with the abort reason tag).  The engine emits
events only when a recorder is installed, so the default configuration
records nothing and costs one ``None`` check per hook.

Event schema (stable; the JSONL dump is one event per line):

``at``
    Seconds since the recorder's epoch — wall clock for threaded runs,
    simulated time for simulator runs (the installer rebinds the clock).
``kind``
    One of :data:`EVENT_KINDS`.
``txid`` / ``label``
    The transaction and its program label ("" for engine-level events).
``detail``
    Kind-specific payload: ``row`` + ``version_ts`` for reads, ``row``
    for writes, ``snapshot_ts`` for begins, ``commit_ts`` for commits,
    ``reason`` for aborts, ``blockers`` for lock waits (plus
    ``seconds``/``timed_out`` on the end event), ``batch`` for WAL
    flushes.

Because read events carry the commit timestamp of the version read and
commit events the commit timestamp, a trace is sufficient to rebuild the
:class:`~repro.analysis.recorder.CommittedTransaction` footprints the
multi-version serialization graph needs —
:meth:`TraceRecorder.committed_transactions` does exactly that, and
:meth:`TraceRecorder.check_serializability` feeds them to the existing
MVSG checker.  A trace dumped to JSONL and reloaded verifies the same way.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle (analysis -> engine)
    from repro.analysis.checker import SerializabilityReport
    from repro.analysis.recorder import CommittedTransaction

#: Every event kind the engine, session layer and drivers emit.
EVENT_KINDS = (
    "begin",
    "read",
    "write",
    "lock-wait-start",
    "lock-wait-end",
    "wal-stage",
    "wal-flush",
    "commit",
    "abort",
)

#: ``version_ts`` marker for a read served from the transaction's own
#: write set (mirrors :data:`repro.engine.transaction.OWN_WRITE`).
OWN_WRITE_TS = -1


@dataclass(frozen=True)
class TraceEvent:
    """One structured lifecycle event."""

    at: float
    kind: str
    txid: int
    label: str = ""
    detail: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown trace event kind {self.kind!r}; known: {EVENT_KINDS}"
            )

    def to_json(self) -> dict:
        return {
            "at": round(self.at, 9),
            "kind": self.kind,
            "txid": self.txid,
            "label": self.label,
            "detail": dict(self.detail),
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "TraceEvent":
        detail = dict(data.get("detail", {}))
        # JSON turns row tuples into lists; restore the RowId shape.
        row = detail.get("row")
        if isinstance(row, list) and len(row) == 2:
            detail["row"] = (row[0], row[1])
        return cls(
            at=float(data["at"]),
            kind=str(data["kind"]),
            txid=int(data["txid"]),
            label=str(data.get("label", "")),
            detail=detail,
        )


class TraceRecorder:
    """Thread-safe, append-only in-memory event stream.

    ``clock`` supplies timestamps when the emitter does not pass one; the
    default is seconds since construction on the monotonic clock.  The
    recorder never touches the engine — it is a passive sink.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        if clock is None:
            epoch = time.monotonic()
            clock = lambda: time.monotonic() - epoch  # noqa: E731
        self.clock = clock
        self._lock = threading.Lock()
        self._events: list[TraceEvent] = []

    # ------------------------------------------------------------------
    def emit(
        self,
        kind: str,
        txid: int,
        label: str = "",
        at: Optional[float] = None,
        **detail: object,
    ) -> TraceEvent:
        event = TraceEvent(
            at=self.clock() if at is None else at,
            kind=kind,
            txid=txid,
            label=label,
            detail=detail,
        )
        with self._lock:
            self._events.append(event)
        return event

    @property
    def events(self) -> tuple[TraceEvent, ...]:
        with self._lock:
            return tuple(self._events)

    def events_of(self, kind: str) -> tuple[TraceEvent, ...]:
        return tuple(e for e in self.events if e.kind == kind)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    # ------------------------------------------------------------------
    # JSONL persistence
    # ------------------------------------------------------------------
    def dump_jsonl(self, path) -> int:
        """Write one event per line; returns the number of events written."""
        events = self.events
        with open(path, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event.to_json(), sort_keys=True))
                handle.write("\n")
        return len(events)

    @classmethod
    def load_jsonl(cls, path) -> "TraceRecorder":
        """Rebuild a recorder (events only) from a JSONL dump."""
        recorder = cls()
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    recorder._events.append(TraceEvent.from_json(json.loads(line)))
        return recorder

    # ------------------------------------------------------------------
    # MVSG bridge
    # ------------------------------------------------------------------
    def committed_transactions(self) -> "list[CommittedTransaction]":
        """Rebuild committed-transaction footprints from the event stream.

        Produces the same shape the live
        :class:`~repro.analysis.recorder.ExecutionRecorder` collects:
        reads as ``(row, version_ts)`` pairs (own-write reads excluded,
        first read of a row wins — later re-reads see the same snapshot
        version under SI), writes in event order, begin/commit
        timestamps.  ``cc_writes`` and predicate reads are not traced, so
        footprints built here support the item-level MVSG analysis
        (``phantom_edges=False``).
        """
        from repro.analysis.recorder import CommittedTransaction

        begins: dict[int, TraceEvent] = {}
        reads: dict[int, dict] = {}
        writes: dict[int, list] = {}
        labels: dict[int, str] = {}
        committed: list[CommittedTransaction] = []
        for event in self.events:
            txid = event.txid
            if event.label:
                labels.setdefault(txid, event.label)
            if event.kind == "begin":
                begins[txid] = event
            elif event.kind == "read":
                version_ts = int(event.detail.get("version_ts", 0))
                if version_ts != OWN_WRITE_TS:
                    reads.setdefault(txid, {}).setdefault(
                        event.detail["row"], version_ts
                    )
            elif event.kind == "write":
                row = event.detail["row"]
                order = writes.setdefault(txid, [])
                if row not in order:
                    order.append(row)
            elif event.kind == "commit":
                begin = begins.get(txid)
                snapshot_ts = (
                    int(begin.detail.get("snapshot_ts", 0)) if begin else 0
                )
                committed.append(
                    CommittedTransaction(
                        txid=txid,
                        label=labels.get(txid, ""),
                        start_ts=snapshot_ts,
                        snapshot_ts=snapshot_ts,
                        commit_ts=int(event.detail["commit_ts"]),
                        reads=tuple(
                            sorted(reads.get(txid, {}).items(), key=repr)
                        ),
                        writes=tuple(writes.get(txid, [])),
                        cc_writes=(),
                        predicate_reads=(),
                    )
                )
        return committed

    def check_serializability(self) -> "SerializabilityReport":
        """Run the MVSG checker over the traced committed history."""
        from repro.analysis.checker import check_history

        return check_history(self.committed_transactions())
