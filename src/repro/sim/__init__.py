"""Deterministic discrete-event simulation of the paper's platforms.

Reproduce one data point::

    from repro.sim import SimulationConfig, run_replicated

    result = run_replicated(SimulationConfig(strategy="base-si", mpl=20))
    print(result.describe())
"""

from repro.sim.client import SimulatedClient, SimWaiter
from repro.sim.core import SimDeadlock, SimEvent, SimStopped, Simulator
from repro.sim.platform import (
    PLATFORMS,
    PlatformModel,
    commercial_platform,
    get_platform,
    postgres_platform,
)
from repro.sim.resources import GroupCommitLog, Resource
from repro.sim.runner import (
    DEFAULT_CUSTOMERS,
    DEFAULT_HOTSPOT,
    PAPER_CUSTOMERS,
    PAPER_HOTSPOT,
    SimulationConfig,
    run_once,
    run_replicated,
)

__all__ = [
    "DEFAULT_CUSTOMERS",
    "DEFAULT_HOTSPOT",
    "GroupCommitLog",
    "PAPER_CUSTOMERS",
    "PAPER_HOTSPOT",
    "PLATFORMS",
    "PlatformModel",
    "Resource",
    "SimDeadlock",
    "SimEvent",
    "SimStopped",
    "SimWaiter",
    "SimulatedClient",
    "SimulationConfig",
    "Simulator",
    "commercial_platform",
    "get_platform",
    "postgres_platform",
    "run_once",
    "run_replicated",
]
