"""Simulated closed-system clients.

Each client is one simulation process implementing the paper's driver
loop: "each thread runs the selected transaction and waits for the reply,
after which it immediately (with no think time) initiates another
transaction".  Statements charge the platform's CPU; commits of writing
transactions wait on the group-commit WAL disk; lock waits suspend in
simulated time; serialization failures and deadlocks count as aborts and
the client moves on to a fresh transaction.
"""

from __future__ import annotations

import random

from repro.engine.engine import Database, WaitOn
from repro.engine.session import Session, Waiter
from repro.errors import ApplicationRollback, TransactionAborted
from repro.sim.core import SimEvent, Simulator
from repro.sim.platform import PlatformModel
from repro.sim.resources import GroupCommitLog, Resource
from repro.smallbank.transactions import SmallBankTransactions
from repro.workload.mix import ParameterGenerator, TransactionMix
from repro.workload.stats import RunStats


class SimWaiter(Waiter):
    """Suspend the simulated client until any blocker resolves."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim

    def wait_any(self, wait: WaitOn) -> None:
        event = SimEvent(self.sim)
        for blocker in wait.blockers:
            blocker.add_resolution_callback(lambda _txn: event.fire())
        event.wait()


class SimulatedClient:
    """One closed-loop client thread of the paper's test driver."""

    def __init__(
        self,
        sim: Simulator,
        db: Database,
        platform: PlatformModel,
        cpu: Resource,
        wal: GroupCommitLog,
        transactions: SmallBankTransactions,
        mix: TransactionMix,
        generator: ParameterGenerator,
        stats: RunStats,
        *,
        mpl: int,
        rng: random.Random,
    ) -> None:
        self.sim = sim
        self.db = db
        self.platform = platform
        self.cpu = cpu
        self.wal = wal
        self.transactions = transactions
        self.mix = mix
        self.generator = generator
        self.stats = stats
        self.mpl = mpl
        self.rng = rng
        self._cpu_multiplier = platform.cpu_multiplier(mpl)

    # ------------------------------------------------------------------
    def _charge_cpu(self, seconds: float) -> None:
        if seconds > 0:
            self.cpu.use(seconds * self._cpu_multiplier)

    def _statement_hook(self, kind: str, _txn) -> None:
        self._charge_cpu(self.platform.statement_cost(kind))

    def _commit(self, session: Session) -> None:
        txn = session.transaction
        self._charge_cpu(self.platform.commit_cpu)
        flush = self.platform.needs_flush(
            wrote_data=txn.needs_wal_flush,
            used_sfu=bool(txn.sfu_rows or txn.cc_writes),
        )
        if flush:
            # Becoming a writer has a fixed price (undo/redo bookkeeping)
            # and the WAL flush; both happen while row locks are held.
            self._charge_cpu(self.platform.write_txn_overhead)
            self.wal.commit_flush()
        session.commit()

    # ------------------------------------------------------------------
    def run(self) -> None:
        """Process body: loop until the simulation shuts down."""
        while True:
            self.sim.checkpoint()
            program = self.mix.choose(self.rng)
            args = self.generator.args_for(program)
            started = self.sim.now
            session = Session(
                self.db,
                waiter=SimWaiter(self.sim),
                statement_hook=self._statement_hook,
            )
            self.sim.sleep(self.platform.network_rtt)
            try:
                session.begin(program)
                self.transactions.body(program)(session, args)
                self._commit(session)
                self.stats.record_commit(
                    program, self.sim.now - started, self.sim.now
                )
            except ApplicationRollback:
                self.stats.record_rollback(program, self.sim.now)
            except TransactionAborted as exc:
                session.rollback()
                self.stats.record_abort(program, exc.reason, self.sim.now)
