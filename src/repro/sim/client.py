"""Simulated closed-system clients.

Each client is one simulation process implementing the paper's driver
loop: "each thread runs the selected transaction and waits for the reply,
after which it immediately (with no think time) initiates another
transaction".  Statements charge the platform's CPU; commits of writing
transactions wait on the group-commit WAL disk; lock waits suspend in
simulated time; serialization failures and deadlocks count as aborts and
the client moves on to a fresh transaction.

The retry layer rides on top: with a non-default
:class:`~repro.workload.retry.RetryPolicy` the client retries the *same*
request (program + arguments) as a new transaction, backing off in
simulated time, before giving up and drawing a fresh request.  The default
policy (``max_attempts=1``) reproduces the paper's protocol exactly —
including the random streams, since no extra draws or sleeps happen.

A :class:`~repro.faults.FaultPlan` installed on the database can kill the
client (``client-death``) or force lock-wait expiry; WAL stalls are
injected by the :class:`~repro.sim.resources.GroupCommitLog` itself.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.engine.engine import Database, WaitOn
from repro.engine.session import Session, Waiter
from repro.errors import ApplicationRollback, TransactionAborted
from repro.obs import Observability
from repro.sim.core import SimEvent, Simulator
from repro.sim.platform import PlatformModel
from repro.sim.resources import GroupCommitLog, Resource
from repro.smallbank.transactions import SmallBankTransactions
from repro.workload.mix import ParameterGenerator, TransactionMix
from repro.workload.retry import RetryPolicy
from repro.workload.stats import RunStats


class SimWaiter(Waiter):
    """Suspend the simulated client until any blocker resolves.

    With a ``timeout`` the waiter also schedules an expiry at ``now +
    timeout`` simulated seconds and reports ``False`` when the expiry wins
    the race — the session turns that into a
    :class:`~repro.errors.LockTimeout` abort.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim

    def wait_any(self, wait: WaitOn, timeout: Optional[float] = None) -> bool:
        event = SimEvent(self.sim)
        for blocker in wait.blockers:
            blocker.add_resolution_callback(lambda _txn: event.fire())
        if timeout is None:
            event.wait()
            return True
        expired = [False]

        def expire() -> None:
            if not event.fired:
                expired[0] = True
                event.fire()

        self.sim.schedule(timeout, expire)
        event.wait()
        return not expired[0]


class SimulatedClient:
    """One closed-loop client thread of the paper's test driver."""

    def __init__(
        self,
        sim: Simulator,
        db: Database,
        platform: PlatformModel,
        cpu: Resource,
        wal: GroupCommitLog,
        transactions: SmallBankTransactions,
        mix: TransactionMix,
        generator: ParameterGenerator,
        stats: RunStats,
        *,
        mpl: int,
        rng: random.Random,
        retry: Optional[RetryPolicy] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.sim = sim
        self.db = db
        self.platform = platform
        self.cpu = cpu
        self.wal = wal
        self.transactions = transactions
        self.mix = mix
        self.generator = generator
        self.stats = stats
        self.mpl = mpl
        self.rng = rng
        self.retry = retry or RetryPolicy.paper_default()
        self.obs = obs
        self._cpu_multiplier = platform.cpu_multiplier(mpl)

    # ------------------------------------------------------------------
    def _charge_cpu(self, seconds: float) -> None:
        if seconds > 0:
            self.cpu.use(seconds * self._cpu_multiplier)

    def _statement_hook(self, kind: str, _txn) -> None:
        self._charge_cpu(self.platform.statement_cost(kind))

    def _commit(self, session: Session) -> None:
        txn = session.transaction
        self._charge_cpu(self.platform.commit_cpu)
        flush = self.platform.needs_flush(
            wrote_data=txn.needs_wal_flush,
            used_sfu=bool(txn.sfu_rows or txn.cc_writes),
        )
        if flush:
            # Becoming a writer has a fixed price (undo/redo bookkeeping)
            # and the WAL flush; both happen while row locks are held.
            self._charge_cpu(self.platform.write_txn_overhead)
            self.wal.commit_flush()
        session.commit()

    # ------------------------------------------------------------------
    def run(self) -> None:
        """Process body: loop until the simulation shuts down."""
        policy = self.retry
        obs = self.obs
        while True:
            self.sim.checkpoint()
            faults = self.db.faults
            if faults is not None and faults.should_fire("client-death"):
                return
            program = self.mix.choose(self.rng)
            args = self.generator.args_for(program)
            started = self.sim.now
            attempts = 0
            while True:
                attempts += 1
                session = Session._internal(
                    self.db,
                    waiter=SimWaiter(self.sim),
                    statement_hook=self._statement_hook,
                )
                self.sim.sleep(self.platform.network_rtt)
                try:
                    session.begin(program)
                    self.transactions.body(program)(session, args)
                    self._commit(session)
                    response = self.sim.now - started
                    self.stats.record_commit(
                        program, response, self.sim.now, attempts
                    )
                    if obs is not None:
                        obs.driver_commit(program, response, attempts)
                    break
                except ApplicationRollback:
                    session.rollback()
                    self.stats.record_rollback(program, self.sim.now)
                    if obs is not None:
                        obs.driver_rollback(program)
                    break
                except TransactionAborted as exc:
                    session.rollback()
                    self.stats.record_abort(program, exc.reason, self.sim.now)
                    if obs is not None:
                        obs.driver_abort(program, exc.reason)
                    if not policy.should_retry(exc, attempts):
                        self.stats.record_giveup(program, self.sim.now, attempts)
                        if obs is not None:
                            obs.driver_giveup(program)
                        break
                    # Jitter draws share the client's stream; they only
                    # happen under a non-default policy, where exact figure
                    # reproduction is not expected (still deterministic).
                    delay = policy.backoff(attempts, self.rng)
                    if delay > 0:
                        self.sim.sleep(delay)
                    # Recorded after the backoff sleep: a retry only counts
                    # once the extra attempt actually starts (a simulation
                    # shutdown mid-backoff must not inflate total_retries).
                    self.stats.record_retry(program, self.sim.now)
                    if obs is not None:
                        obs.driver_retry(program)
