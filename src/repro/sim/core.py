"""A deterministic discrete-event simulator with thread-backed processes.

The performance experiments need simulated time (a 3 GHz Pentium IV with
IDE disks cannot be timed faithfully from Python wall-clock), but the
transaction programs are plain Python functions that cannot be suspended
like generators.  The classic resolution: every simulated *process* runs
on its own OS thread, and a scheduler thread hands control to exactly one
process at a time.  Because only one thread ever executes simulation code,
the result is fully deterministic — event order is a pure function of the
event heap, keyed ``(time, sequence)`` — while process code stays ordinary
imperative Python (the same SmallBank bodies the correctness tests run).

The cost of a handoff is two semaphore operations (~10 µs), so a full
paper-scale figure simulates in seconds, not hours.

Public surface:

* :meth:`Simulator.spawn` — start a process (runs until it returns or the
  simulation shuts down, at which point blocked processes see
  :class:`SimStopped`);
* :meth:`Simulator.sleep` / :meth:`Simulator.schedule` — time;
* :class:`SimEvent` — one-shot signalling between processes;
* :meth:`Simulator.run_for` — drive the clock, then :meth:`shutdown`.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Callable, Optional

from repro.errors import ReproError


class SimStopped(ReproError):
    """Raised inside a process when the simulation is shutting down."""


class SimDeadlock(ReproError):
    """No runnable events remain but processes are still blocked."""


class _Process:
    __slots__ = ("name", "thread", "resume", "alive", "waiting")

    def __init__(self, name: str) -> None:
        self.name = name
        self.thread: Optional[threading.Thread] = None
        self.resume = threading.Semaphore(0)
        self.alive = True
        # True while blocked on an event/sleep (including the pre-start
        # wait); guards against double activation.
        self.waiting = True


class Simulator:
    """The event loop.  Not reentrant; one simulation per instance."""

    _JOIN_TIMEOUT = 30.0

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._yield_to_scheduler = threading.Semaphore(0)
        self._processes: list[_Process] = []
        self._current: Optional[_Process] = None
        self.stopping = False

    # ------------------------------------------------------------------
    # Scheduling primitives (callable from scheduler or the one running
    # process -- never from arbitrary threads)
    # ------------------------------------------------------------------
    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Run ``action`` (in scheduler context) after ``delay``."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(self._heap, (self.now + delay, next(self._seq), action))

    def spawn(self, fn: Callable[[], None], name: str = "proc") -> None:
        """Create a process; it starts at the current simulation time."""
        process = _Process(name)
        self._processes.append(process)

        def body() -> None:
            try:
                process.resume.acquire()  # wait for first activation
                if self.stopping:
                    raise SimStopped()
                fn()
            except SimStopped:
                pass
            finally:
                process.alive = False
                self._yield_to_scheduler.release()

        process.thread = threading.Thread(
            target=body, name=f"sim-{name}", daemon=True
        )
        process.thread.start()
        self.schedule(0.0, lambda: self._activate(process))

    # ------------------------------------------------------------------
    # Process-side operations
    # ------------------------------------------------------------------
    def sleep(self, duration: float) -> None:
        """Suspend the calling process for ``duration`` simulated seconds."""
        process = self._require_current()
        self.schedule(duration, lambda: self._activate(process))
        self._suspend(process)

    def checkpoint(self) -> None:
        """Raise :class:`SimStopped` if the simulation is shutting down."""
        if self.stopping:
            raise SimStopped()

    def _require_current(self) -> _Process:
        process = self._current
        if process is None:
            raise ReproError(
                "simulation primitive called outside a simulated process"
            )
        return process

    def _suspend(self, process: _Process) -> None:
        """Yield to the scheduler until re-activated."""
        process.waiting = True
        self._yield_to_scheduler.release()
        process.resume.acquire()
        if self.stopping:
            raise SimStopped()

    def _activate(self, process: _Process) -> None:
        """(Scheduler context) run ``process`` until it suspends again."""
        if not process.alive or not process.waiting:
            return
        process.waiting = False
        self._current = process
        process.resume.release()
        self._yield_to_scheduler.acquire()
        self._current = None

    # ------------------------------------------------------------------
    # Driving the clock
    # ------------------------------------------------------------------
    def run_until(self, deadline: float) -> None:
        """Process events up to and including ``deadline``."""
        while self._heap and self._heap[0][0] <= deadline:
            time, _seq, action = heapq.heappop(self._heap)
            self.now = time
            action()
        self.now = max(self.now, deadline)
        if not self._heap and any(
            p.alive and p.waiting for p in self._processes
        ) and not self.stopping:
            # Nothing scheduled, yet processes wait: nobody can ever wake
            # them.  Indicates a lost wake-up bug in a resource model.
            blocked = [p.name for p in self._processes if p.alive and p.waiting]
            raise SimDeadlock(f"all events drained; blocked: {blocked}")

    def run_for(self, duration: float) -> None:
        self.run_until(self.now + duration)

    def shutdown(self) -> None:
        """Stop every process (they see :class:`SimStopped`) and join."""
        self.stopping = True
        for process in self._processes:
            if process.alive and process.waiting:
                process.waiting = False
                self._current = process
                process.resume.release()
                self._yield_to_scheduler.acquire()
                self._current = None
        for process in self._processes:
            if process.thread is not None:
                process.thread.join(timeout=self._JOIN_TIMEOUT)
                if process.thread.is_alive():  # pragma: no cover
                    raise ReproError(
                        f"simulated process {process.name!r} failed to stop"
                    )


class SimEvent:
    """A one-shot event: processes wait, somebody fires.

    ``fire`` may be called from scheduler context or from the currently
    running process (e.g. an engine resolution callback); multiple calls
    are harmless.
    """

    __slots__ = ("sim", "fired", "_waiters")

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.fired = False
        self._waiters: list[_Process] = []

    def wait(self) -> None:
        process = self.sim._require_current()
        if self.fired:
            return
        self._waiters.append(process)
        self.sim._suspend(process)

    def fire(self) -> None:
        if self.fired:
            return
        self.fired = True
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self.sim.schedule(0.0, lambda p=process: self.sim._activate(p))
