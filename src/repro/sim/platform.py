"""Hardware/platform cost models for the simulation.

Every constant here is a *calibration* of the paper's testbed (Section IV:
3.0 GHz Pentium IV, 2 GB RAM, two IDE disks with the log-disk cache
disabled, Fast Ethernet, stored procedures over JDBC) chosen so that the
mechanisms the paper itself identifies reproduce its curves:

* a single-server CPU whose saturation sets the throughput plateau;
* a group-commit WAL disk that only *update* transactions must wait for —
  the source of the MPL-1 gap between WT options (flush fraction stays
  4/5) and BW options (5/5, hence the ~20 % penalty, Section IV-D);
* a fixed per-transaction cost of *becoming a writer*
  (``write_txn_overhead``) — large on the commercial platform (undo/redo
  bookkeeping), which is what makes the BW options lose their peak there
  while the WT options do not (Figures 8 vs 9);
* platform-specific prices for the strategy-introduced statements —
  identity writes are cheap on PostgreSQL but expensive on the commercial
  engine, while materialized ``Conflict`` updates are the reverse, which
  reproduces the paper's "Promotion is faster than materialisation in
  PostgreSQL, and vice-versa on the commercial system" (Guideline 4);
* on the commercial platform ``SELECT FOR UPDATE`` marks rows in the data
  blocks, so an SFU-only transaction still pays the commit flush (Oracle
  semantics); on PostgreSQL it does not need one in this model;
* a per-active-transaction overhead past a knee on the commercial
  platform, giving the "rises to a peak at MPL 20–25 then declines
  rapidly" thrashing shape of Figures 8/9.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

from repro.engine.config import EngineConfig


@dataclass(frozen=True)
class PlatformModel:
    """Cost model + engine semantics of one platform."""

    name: str
    engine_config: EngineConfig
    statement_costs: Mapping[str, float]
    default_statement_cost: float
    commit_cpu: float
    write_txn_overhead: float
    network_rtt: float
    wal_flush_time: float
    wal_commit_delay: float
    cpu_servers: int = 1
    sfu_forces_flush: bool = False
    thrash_knee: int = 10**9
    thrash_factor: float = 0.0

    def statement_cost(self, kind: str) -> float:
        return self.statement_costs.get(kind, self.default_statement_cost)

    def cpu_multiplier(self, active_clients: int) -> float:
        """Per-statement CPU inflation from concurrency overhead."""
        excess = max(0, active_clients - self.thrash_knee)
        return 1.0 + self.thrash_factor * excess

    def needs_flush(self, *, wrote_data: bool, used_sfu: bool) -> bool:
        return wrote_data or (used_sfu and self.sfu_forces_flush)


def postgres_platform() -> PlatformModel:
    """PostgreSQL 8.2 on the paper's server (Figures 4–7).

    Calibration arithmetic (uniform mix averages 3.8 statements per
    transaction as implemented in :mod:`repro.smallbank.transactions`):
    CPU per transaction ≈ 3.8·0.185 ms + 0.05 ms commit + 0.8·0.15 ms
    writer overhead ≈ 0.87 ms, giving the ≈1150 TPS plateau the paper
    reports; at MPL 1 the ≈10 ms group-commit wait dominates, so raising
    the flushing fraction from 4/5 to 5/5 costs ≈20 %.
    """
    return PlatformModel(
        name="postgres",
        engine_config=EngineConfig.postgres(),
        statement_costs=MappingProxyType(
            {
                "select": 0.000185,
                "scan": 0.00037,
                "update": 0.000185,
                "insert": 0.000185,
                "delete": 0.000185,
                # Promotion's identity write: hot row, no index change —
                # nearly free, hence PromoteWT ~ SI (Figure 5).
                "identity-update": 0.00008,
                # Materialization touches the extra Conflict table (one
                # more buffer + WAL record): the ~10 % plateau drop of
                # MaterializeWT/BW and the ~25 % of MaterializeALL.
                "materialize-update": 0.00025,
                "select-for-update": 0.0002,
            }
        ),
        default_statement_cost=0.000185,
        commit_cpu=0.00005,
        write_txn_overhead=0.00015,
        network_rtt=0.0003,
        # IDE disk with the write cache disabled: ~10 ms per forced flush,
        # 2 ms commit-delay gather window (group commit).
        wal_flush_time=0.010,
        wal_commit_delay=0.002,
        sfu_forces_flush=False,
    )


def commercial_platform() -> PlatformModel:
    """The commercial SI platform (Figures 8–9).

    Calibration: lower raw per-statement cost but a heavy per-transaction
    *writer* overhead (0.95 ms of undo/redo bookkeeping) ⇒ peak ≈ 850 TPS
    around MPL 20; options that make the read-only Balance a writer (all
    BW options — including SFU, which dirties data blocks on this
    platform) push every transaction into that overhead and lose 15–20 %
    of peak, while WT options do not (Figure 8 vs 9).  The identity write
    is priced well above the Conflict update, reversing the PostgreSQL
    materialize/promote ranking, and a per-active-transaction CPU
    inflation past MPL 22 produces the post-peak decline.
    """
    return PlatformModel(
        name="commercial",
        engine_config=EngineConfig.commercial(),
        statement_costs=MappingProxyType(
            {
                "select": 0.00009,
                "scan": 0.00018,
                "update": 0.00009,
                "insert": 0.00009,
                "delete": 0.00009,
                "identity-update": 0.0004,
                "materialize-update": 0.00005,
                "select-for-update": 0.0001,
            }
        ),
        default_statement_cost=0.00009,
        commit_cpu=0.00005,
        write_txn_overhead=0.00095,
        network_rtt=0.0003,
        wal_flush_time=0.010,
        wal_commit_delay=0.001,
        sfu_forces_flush=True,
        thrash_knee=22,
        thrash_factor=0.05,
    )


PLATFORMS = {
    "postgres": postgres_platform,
    "commercial": commercial_platform,
}


def get_platform(name: str) -> PlatformModel:
    try:
        return PLATFORMS[name]()
    except KeyError:
        known = ", ".join(sorted(PLATFORMS))
        raise KeyError(f"unknown platform {name!r}; known: {known}") from None
