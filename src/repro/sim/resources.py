"""Simulated hardware resources: CPU and the group-commit log disk.

Two resources carry the paper's entire performance story (its Section IV-D
analysis): a CPU that saturates — producing the throughput plateau — and a
WAL disk whose forced flush every *update* transaction must wait for —
producing the 20 % MPL-1 penalty of strategies that turn the read-only
Balance program into an updater.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.sim.core import SimEvent, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults import FaultPlan


class Resource:
    """A FIFO server pool (e.g. the CPU: ``capacity=1`` for the paper's
    single-core Pentium IV)."""

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "res") -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._queue: deque[SimEvent] = deque()
        # Utilization accounting (busy integral over time).
        self._busy_time = 0.0
        self._last_change = 0.0

    # ------------------------------------------------------------------
    def acquire(self) -> None:
        while self.in_use >= self.capacity:
            event = SimEvent(self.sim)
            self._queue.append(event)
            event.wait()
        self._account()
        self.in_use += 1

    def release(self) -> None:
        if self.in_use <= 0:
            raise RuntimeError(f"release of idle resource {self.name!r}")
        self._account()
        self.in_use -= 1
        if self._queue:
            self._queue.popleft().fire()

    def use(self, duration: float) -> None:
        """Hold one server for ``duration`` (the common pattern)."""
        self.acquire()
        try:
            self.sim.sleep(duration)
        finally:
            self.release()

    # ------------------------------------------------------------------
    def _account(self) -> None:
        self._busy_time += self.in_use * (self.sim.now - self._last_change)
        self._last_change = self.sim.now

    def utilization(self, since: float = 0.0) -> float:
        """Average busy fraction since ``since`` (per server)."""
        self._account()
        elapsed = self.sim.now - since
        if elapsed <= 0:
            return 0.0
        return min(1.0, self._busy_time / (elapsed * self.capacity))


class GroupCommitLog:
    """The WAL disk with group commit.

    A committing transaction calls :meth:`commit_flush` and is released
    once a flush covering its record hits the platter.  While the disk is
    idle, the first request opens a *gather window* of ``commit_delay``
    (the paper: "We configured commit-delay ..., thus taking advantage of
    group commit"); everything arriving within the window — or during the
    ``flush_time`` of the previous flush — rides the next flush together.
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        flush_time: float,
        commit_delay: float = 0.0,
        faults: "FaultPlan | None" = None,
    ) -> None:
        if flush_time <= 0:
            raise ValueError("flush_time must be positive")
        self.sim = sim
        self.flush_time = flush_time
        self.commit_delay = commit_delay
        self.faults = faults
        self._pending: list[SimEvent] = []
        self._active = False  # a gather window or flush is in progress
        self.flush_count = 0
        self.commits_flushed = 0
        self.stall_count = 0
        self.stall_time = 0.0

    # ------------------------------------------------------------------
    def commit_flush(self) -> None:
        """(Process) wait until this commit's log record is durable."""
        event = SimEvent(self.sim)
        self._pending.append(event)
        if not self._active:
            self._active = True
            self.sim.schedule(self.commit_delay, self._start_flush)
        event.wait()

    # -- scheduler-context machinery ------------------------------------
    def _start_flush(self) -> None:
        batch, self._pending = self._pending, []
        if not batch:
            self._active = False
            return
        self.flush_count += 1
        self.commits_flushed += len(batch)
        flush_time = self.flush_time
        if self.faults is not None and self.faults.should_fire("wal-stall"):
            # A disk hiccup: this flush (and every commit riding it) takes
            # ``magnitude`` extra seconds while row locks stay held.
            stall = self.faults.magnitude("wal-stall")
            flush_time += stall
            self.stall_count += 1
            self.stall_time += stall
        self.sim.schedule(
            flush_time, lambda: self._finish_flush(batch)
        )

    def _finish_flush(self, batch: list[SimEvent]) -> None:
        for event in batch:
            event.fire()
        if self._pending:
            # Commits queued during the flush form the next batch at once:
            # under load the disk streams back-to-back group flushes.
            self._start_flush()
        else:
            self._active = False

    @property
    def mean_batch_size(self) -> float:
        if self.flush_count == 0:
            return 0.0
        return self.commits_flushed / self.flush_count
