"""Simulation experiment runner.

:func:`run_once` executes one (strategy, platform, MPL) configuration on a
fresh database and returns its :class:`~repro.workload.stats.RunStats`;
:func:`run_replicated` repeats it with different seeds and aggregates, as
the paper does ("we repeated each experiment five times; the figures show
the average values plus a 95 % confidence interval").

Scale: by default the database holds 3 600 customers with a 200-customer
hotspot — the paper's 18 000/1 000 shrunk 5× to keep full figure sweeps in
seconds.  Contention behaviour depends on the *hotspot* (collision
probability per row), which is preserved exactly in the high-contention
configuration (hotspot = 10) and closely in the default one.  Use
:meth:`SimulationConfig.at_paper_scale` (the bench CLI's ``--paper-scale``
flag) for the full 18 000/1 000 with the 30 s + 60 s protocol.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable

from repro.engine.engine import Database

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults import FaultPlan
    from repro.obs import Observability
    from repro.workload.retry import RetryPolicy
from repro.sim.client import SimulatedClient
from repro.sim.core import Simulator
from repro.sim.platform import PlatformModel, get_platform
from repro.sim.resources import GroupCommitLog, Resource
from repro.smallbank.schema import PopulationConfig, build_database
from repro.smallbank.strategies import get_strategy
from repro.workload.mix import HotspotConfig, ParameterGenerator, get_mix
from repro.workload.stats import AggregateResult, RunStats

#: Paper-fidelity sizes (Section IV).
PAPER_CUSTOMERS = 18_000
PAPER_HOTSPOT = 1_000
#: Default 5x-shrunk sizes for fast sweeps.
DEFAULT_CUSTOMERS = 3_600
DEFAULT_HOTSPOT = 200


@dataclass(frozen=True)
class SimulationConfig:
    """One point of an experiment grid."""

    strategy: str = "base-si"
    platform: str = "postgres"
    mpl: int = 10
    customers: int = DEFAULT_CUSTOMERS
    hotspot: int = DEFAULT_HOTSPOT
    hotspot_probability: float = 0.9
    mix: str = "uniform"
    ramp_up: float = 0.5
    measure: float = 4.0
    seed: int = 1

    def at_paper_scale(self) -> "SimulationConfig":
        """The paper's full population/window sizes."""
        return replace(
            self,
            customers=PAPER_CUSTOMERS,
            hotspot=PAPER_HOTSPOT if self.hotspot != 10 else 10,
            ramp_up=30.0,
            measure=60.0,
        )


def run_once(
    config: SimulationConfig,
    platform_model: "PlatformModel | None" = None,
    *,
    fault_plan: "FaultPlan | None" = None,
    retry: "RetryPolicy | None" = None,
    on_database: "Callable[[Database], None] | None" = None,
    obs: "Observability | None" = None,
) -> RunStats:
    """Run one simulation and return its measurement-window statistics.

    ``platform_model`` overrides the named platform's cost model — the
    hook the ablation benchmarks use (e.g. sweeping the WAL flush latency
    or disabling the group-commit gather window).

    ``fault_plan`` installs a :class:`~repro.faults.FaultPlan` on the
    database and the WAL disk (chaos benchmarks); ``retry`` overrides the
    clients' retry protocol; ``on_database`` runs against the freshly
    populated database before clients start (e.g. to attach a
    :class:`~repro.analysis.checker.SerializabilityChecker`); ``obs``
    installs an :class:`~repro.obs.Observability` on the database with its
    clock rebound to simulated time, so histograms are in simulated
    seconds.  All default to no-ops that leave the seed figures unchanged.
    """
    platform: PlatformModel = platform_model or get_platform(config.platform)
    strategy = get_strategy(config.strategy)
    db: Database = build_database(
        platform.engine_config,
        PopulationConfig(customers=config.customers, seed=config.seed),
    )
    if fault_plan is not None:
        db.install_faults(fault_plan)
    if on_database is not None:
        on_database(db)
    transactions = strategy.transactions()

    sim = Simulator()
    if obs is not None:
        obs.use_clock(lambda: sim.now)
        db.install_observability(obs)
    cpu = Resource(sim, capacity=platform.cpu_servers, name="cpu")
    wal = GroupCommitLog(
        sim,
        flush_time=platform.wal_flush_time,
        commit_delay=platform.wal_commit_delay,
        faults=fault_plan,
    )
    stats = RunStats(
        window_start=config.ramp_up,
        window_end=config.ramp_up + config.measure,
    )
    hotspot = HotspotConfig(
        customers=config.customers,
        hotspot=config.hotspot,
        hotspot_probability=config.hotspot_probability,
    )
    mix = get_mix(config.mix)
    for client_id in range(config.mpl):
        rng = random.Random(f"{config.seed}/{client_id}")
        client = SimulatedClient(
            sim,
            db,
            platform,
            cpu,
            wal,
            transactions,
            mix,
            ParameterGenerator(hotspot, rng),
            stats,
            mpl=config.mpl,
            rng=rng,
            retry=retry,
            obs=obs,
        )
        sim.spawn(client.run, name=f"client-{client_id}")
    try:
        sim.run_for(config.ramp_up + config.measure)
    finally:
        sim.shutdown()
    if obs is not None:
        db.observe_version_stats()
    return stats


def run_replicated(
    config: SimulationConfig,
    repetitions: int = 2,
    platform_model: "PlatformModel | None" = None,
    obs: "Observability | None" = None,
) -> AggregateResult:
    """Repeat a configuration with distinct seeds; aggregate mean ± CI.

    A shared ``obs`` accumulates metrics across all repetitions (its clock
    is rebound to each repetition's simulator in turn).
    """
    runs = [
        run_once(
            replace(config, seed=config.seed + 1000 * rep),
            platform_model,
            obs=obs,
        )
        for rep in range(repetitions)
    ]
    return AggregateResult(runs)
