"""The SmallBank benchmark: schema, programs, and modification strategies.

Quick use::

    import repro
    from repro.engine import EngineConfig
    from repro.smallbank import build_database, get_strategy

    strategy = get_strategy("promote-wt-upd")
    db = build_database(EngineConfig.postgres())
    txns = strategy.transactions()
    session = repro.connect("local://", database=db).session()
    total = txns.run(session, "Balance", {"N": "cust0000001"})
"""

from repro.smallbank.programs import (
    AMALGAMATE,
    BALANCE,
    DEPOSIT_CHECKING,
    PROGRAM_NAMES,
    SHORT_NAMES,
    TRANSACT_SAVING,
    WRITE_CHECK,
    smallbank_specs,
)
from repro.smallbank.schema import (
    ACCOUNT,
    CHECKING,
    CONFLICT,
    PAPER_CUSTOMERS,
    PAPER_HOTSPOT,
    PAPER_HOTSPOT_HIGH_CONTENTION,
    SAVING,
    PopulationConfig,
    build_database,
    customer_name,
    smallbank_schemas,
    total_money,
)
from repro.smallbank.strategies import (
    ALL_STRATEGIES,
    BASE_SI,
    MATERIALIZE_ALL,
    MATERIALIZE_BW,
    MATERIALIZE_WT,
    POSTGRES_STRATEGIES,
    PROMOTE_ALL,
    PROMOTE_BW_SFU,
    PROMOTE_BW_UPD,
    PROMOTE_WT_SFU,
    PROMOTE_WT_UPD,
    STRATEGIES_BY_KEY,
    Strategy,
    get_strategy,
)
from repro.smallbank.transactions import SmallBankTransactions

__all__ = [
    "ACCOUNT",
    "ALL_STRATEGIES",
    "AMALGAMATE",
    "BALANCE",
    "BASE_SI",
    "CHECKING",
    "CONFLICT",
    "DEPOSIT_CHECKING",
    "MATERIALIZE_ALL",
    "MATERIALIZE_BW",
    "MATERIALIZE_WT",
    "PAPER_CUSTOMERS",
    "PAPER_HOTSPOT",
    "PAPER_HOTSPOT_HIGH_CONTENTION",
    "POSTGRES_STRATEGIES",
    "PROGRAM_NAMES",
    "PROMOTE_ALL",
    "PROMOTE_BW_SFU",
    "PROMOTE_BW_UPD",
    "PROMOTE_WT_SFU",
    "PROMOTE_WT_UPD",
    "SAVING",
    "SHORT_NAMES",
    "STRATEGIES_BY_KEY",
    "SmallBankTransactions",
    "PopulationConfig",
    "Strategy",
    "TRANSACT_SAVING",
    "WRITE_CHECK",
    "build_database",
    "customer_name",
    "get_strategy",
    "smallbank_schemas",
    "smallbank_specs",
    "total_money",
]
