"""Symbolic specs of the five SmallBank programs (paper Section III-B/C).

The parameters are customer identities: each program's name parameter
``N`` resolves (via the Account table) to a customer id ``x``; Account,
Saving, Checking and Conflict rows of one customer are all keyed by that
one identity, so the specs use a single parameter ``x`` (``x1``/``x2``
for Amalgamate's two customers).

The resulting SDG (built by :func:`repro.core.build_sdg`) reproduces the
paper's Figure 1 exactly — the tests in ``tests/test_smallbank_sdg.py``
assert every edge and that the only dangerous structure is
``Balance -(v)-> WriteCheck -(v)-> TransactSaving``.
"""

from __future__ import annotations

from repro.core import ProgramSet, ProgramSpec, read, write
from repro.smallbank.schema import ACCOUNT, CHECKING, SAVING

BALANCE = "Balance"
DEPOSIT_CHECKING = "DepositChecking"
TRANSACT_SAVING = "TransactSaving"
AMALGAMATE = "Amalgamate"
WRITE_CHECK = "WriteCheck"

PROGRAM_NAMES = (
    BALANCE,
    DEPOSIT_CHECKING,
    TRANSACT_SAVING,
    AMALGAMATE,
    WRITE_CHECK,
)

#: Short labels used in the paper's figures.
SHORT_NAMES = {
    BALANCE: "Bal",
    DEPOSIT_CHECKING: "DC",
    TRANSACT_SAVING: "TS",
    AMALGAMATE: "Amg",
    WRITE_CHECK: "WC",
}


def balance_spec() -> ProgramSpec:
    """Bal(N): total of both balances; entirely read-only."""
    return ProgramSpec(
        BALANCE,
        ("x",),
        (
            read(ACCOUNT, "x", "CustomerId"),
            read(SAVING, "x", "Balance"),
            read(CHECKING, "x", "Balance"),
        ),
        description="Calculate the customer's total balance (read-only).",
    )


def deposit_checking_spec() -> ProgramSpec:
    """DC(N, V): checking += V — reads Checking only to modify it."""
    return ProgramSpec(
        DEPOSIT_CHECKING,
        ("x",),
        (
            read(ACCOUNT, "x", "CustomerId"),
            read(CHECKING, "x", "Balance"),
            write(CHECKING, "x", "Balance"),
        ),
        description="Deposit into the checking account.",
    )


def transact_saving_spec() -> ProgramSpec:
    """TS(N, V): saving += V (rolls back below zero)."""
    return ProgramSpec(
        TRANSACT_SAVING,
        ("x",),
        (
            read(ACCOUNT, "x", "CustomerId"),
            read(SAVING, "x", "Balance"),
            write(SAVING, "x", "Balance"),
        ),
        description="Deposit to / withdraw from the savings account.",
    )


def amalgamate_spec() -> ProgramSpec:
    """Amg(N1, N2): move all funds of customer 1 into customer 2's checking.

    Crucially for the Figure 1 analysis: whenever Amg writes a Saving row it
    also writes the same customer's Checking row, so WriteCheck's rw
    conflict with Amg is always accompanied by a ww conflict.
    """
    return ProgramSpec(
        AMALGAMATE,
        ("x1", "x2"),
        (
            read(ACCOUNT, "x1", "CustomerId"),
            read(ACCOUNT, "x2", "CustomerId"),
            read(SAVING, "x1", "Balance"),
            read(CHECKING, "x1", "Balance"),
            write(SAVING, "x1", "Balance"),
            write(CHECKING, "x1", "Balance"),
            read(CHECKING, "x2", "Balance"),
            write(CHECKING, "x2", "Balance"),
        ),
        description="Move all funds from one customer to another.",
    )


def write_check_spec() -> ProgramSpec:
    """WC(N, V): reads both balances, debits Checking (maybe with penalty)."""
    return ProgramSpec(
        WRITE_CHECK,
        ("x",),
        (
            read(ACCOUNT, "x", "CustomerId"),
            read(SAVING, "x", "Balance"),
            read(CHECKING, "x", "Balance"),
            write(CHECKING, "x", "Balance"),
        ),
        description="Write a check against the total balance.",
    )


def smallbank_specs() -> ProgramSet:
    """The unmodified SmallBank mix (the paper's Figure 1 input)."""
    return ProgramSet(
        [
            balance_spec(),
            deposit_checking_spec(),
            transact_saving_spec(),
            amalgamate_spec(),
            write_check_spec(),
        ],
        name="SmallBank",
    )
