"""SmallBank schema and population (Section III-A of the paper).

Three application tables::

    Account(Name, CustomerId)      -- PK Name, unique non-null CustomerId
    Saving(CustomerId, Balance)    -- PK CustomerId
    Checking(CustomerId, Balance)  -- PK CustomerId

plus the auxiliary ``Conflict(Id, Value)`` table used by materialization
strategies, pre-populated with one row per customer ("we must initialize
Conflict with one row for every CustomerId, before starting the benchmark").

The paper populates 18 000 randomly generated customers; the default here
is smaller so tests stay fast, and the benchmark harness passes the paper's
numbers explicitly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.engine import Column, Database, EngineConfig, TableSchema

ACCOUNT = "Account"
SAVING = "Saving"
CHECKING = "Checking"
CONFLICT = "Conflict"

#: Number of customers in the paper's experiments.
PAPER_CUSTOMERS = 18_000
#: Paper hotspot sizes: normal and high contention.
PAPER_HOTSPOT = 1_000
PAPER_HOTSPOT_HIGH_CONTENTION = 10


def customer_name(customer_id: int) -> str:
    """The account name for a customer id (deterministic, unique)."""
    return f"cust{customer_id:07d}"


def smallbank_schemas() -> list[TableSchema]:
    """Schemas for the three application tables plus ``Conflict``."""
    return [
        TableSchema(
            name=ACCOUNT,
            columns=(Column("Name", "text"), Column("CustomerId", "int")),
            primary_key="Name",
            unique=("CustomerId",),
        ),
        TableSchema(
            name=SAVING,
            columns=(Column("CustomerId", "int"), Column("Balance", "numeric")),
            primary_key="CustomerId",
        ),
        TableSchema(
            name=CHECKING,
            columns=(Column("CustomerId", "int"), Column("Balance", "numeric")),
            primary_key="CustomerId",
        ),
        TableSchema(
            name=CONFLICT,
            columns=(Column("Id", "int"), Column("Value", "int")),
            primary_key="Id",
        ),
    ]


@dataclass(frozen=True)
class PopulationConfig:
    """How to populate a SmallBank database."""

    customers: int = 100
    min_saving: float = 1_000.0
    max_saving: float = 5_000.0
    min_checking: float = 100.0
    max_checking: float = 500.0
    seed: int = 20080407  # ICDE 2008, week of the conference


def build_database(
    config: Optional[EngineConfig] = None,
    population: Optional[PopulationConfig] = None,
) -> Database:
    """A populated SmallBank database.

    Balances are drawn uniformly from the configured ranges with a seeded
    RNG, so every run sees the same initial state.  Generous initial
    balances keep business-rule rollbacks (overdraws) rare, as in the
    paper's workload.
    """
    population = population or PopulationConfig()
    rng = random.Random(population.seed)
    db = Database(smallbank_schemas(), config)
    for cid in range(1, population.customers + 1):
        db.load_row(ACCOUNT, {"Name": customer_name(cid), "CustomerId": cid})
        db.load_row(
            SAVING,
            {
                "CustomerId": cid,
                "Balance": round(
                    rng.uniform(population.min_saving, population.max_saving), 2
                ),
            },
        )
        db.load_row(
            CHECKING,
            {
                "CustomerId": cid,
                "Balance": round(
                    rng.uniform(population.min_checking, population.max_checking), 2
                ),
            },
        )
        db.load_row(CONFLICT, {"Id": cid, "Value": 0})
    return db


def total_money(db: Database) -> float:
    """Sum of all balances — conserved by DC/TS/Amg, changed by WC only.

    Used by integrity tests: a serial replay must reach the same total.
    """
    txn = db.begin("audit")
    total = 0.0
    for table in (SAVING, CHECKING):
        for _key, row in db.scan(txn, table):
            total += row["Balance"]
    db.commit(txn)
    return round(total, 2)
