"""The nine SmallBank configurations evaluated in the paper.

Each :class:`Strategy` couples

* a *spec-level* transform (from :mod:`repro.core.modify`) that rewrites the
  symbolic program set — from which the SDGs of Figures 2/3 and the rows of
  Table I are **derived**, and
* the matching *executable* rewrite: the list of
  :class:`~repro.core.modify.Modification` records is fed into
  :class:`~repro.smallbank.transactions.SmallBankTransactions`, which adds
  the corresponding SQL statements.

Strategies (paper Section III-D/E):

==================  ===========================================================
``base-si``         unmodified SmallBank (non-serializable executions possible)
``materialize-wt``  Conflict-table update in WriteCheck and TransactSaving
``promote-wt-upd``  identity write on Saving in WriteCheck
``promote-wt-sfu``  WriteCheck's Saving read becomes SELECT FOR UPDATE
``materialize-bw``  Conflict-table update in Balance and WriteCheck
``promote-bw-upd``  identity write on Checking in Balance
``promote-bw-sfu``  Balance's Checking read becomes SELECT FOR UPDATE
``materialize-all`` Conflict update in every program (2 rows in Amalgamate)
``promote-all``     identity writes on all vulnerable reads (2 in Balance)
==================  ===========================================================

The ``-sfu`` strategies guarantee serializability only on the commercial
platform (where SFU acts as a concurrency-control write);
:attr:`Strategy.serializable_on_postgres` records that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core import StaticDependencyGraph, build_sdg
from repro.core.modify import (
    Modification,
    materialize_all,
    materialize_edge,
    promote_all,
    promote_edge,
    tables_updated_by,
)
from repro.core.specs import ProgramSet
from repro.smallbank.programs import (
    BALANCE,
    TRANSACT_SAVING,
    WRITE_CHECK,
    smallbank_specs,
)
from repro.smallbank.transactions import SmallBankTransactions

Transform = Callable[[ProgramSet], tuple[ProgramSet, list[Modification]]]


@dataclass(frozen=True)
class Strategy:
    """One way of (not) ensuring serializable SmallBank executions."""

    key: str
    label: str  # the name used in the paper's figures
    transform: Optional[Transform]
    requires_cc_sfu: bool = False
    """True when correctness depends on commercial SFU semantics."""

    # ------------------------------------------------------------------
    def apply(
        self, base: Optional[ProgramSet] = None
    ) -> tuple[ProgramSet, tuple[Modification, ...]]:
        """The transformed spec set and the modification records."""
        specs = base if base is not None else smallbank_specs()
        if self.transform is None:
            return specs, ()
        transformed, mods = self.transform(specs)
        return transformed, tuple(mods)

    def specs(self) -> ProgramSet:
        return self.apply()[0]

    def modifications(self) -> tuple[Modification, ...]:
        return self.apply()[1]

    def transactions(self) -> SmallBankTransactions:
        """Executable programs with this strategy's statements injected."""
        return SmallBankTransactions(self.modifications())

    def sdg(self, *, sfu_is_write: bool = True) -> StaticDependencyGraph:
        return build_sdg(self.specs(), sfu_is_write=sfu_is_write)

    # ------------------------------------------------------------------
    @property
    def is_baseline(self) -> bool:
        return self.transform is None

    @property
    def serializable_on_postgres(self) -> bool:
        """Does the strategy guarantee serializability on PostgreSQL?

        Baseline SI does not; SFU promotions do not (lock-only SFU leaves
        the edge vulnerable); everything else does.
        """
        if self.is_baseline:
            return False
        return self.sdg(sfu_is_write=False).is_si_serializable()

    @property
    def serializable_on_commercial(self) -> bool:
        if self.is_baseline:
            return False
        return self.sdg(sfu_is_write=True).is_si_serializable()

    def table_one_row(self) -> dict[str, tuple[str, ...]]:
        """This strategy's row of the paper's Table I: program -> tables
        that gained an update (derived from the spec transform)."""
        base = smallbank_specs()
        transformed, _ = self.apply(base)
        return tables_updated_by(base, transformed)


def _edge_wt(via: str) -> Transform:
    if via == "materialize":
        return lambda specs: materialize_edge(specs, WRITE_CHECK, TRANSACT_SAVING)
    return lambda specs: promote_edge(
        specs, WRITE_CHECK, TRANSACT_SAVING, via=via
    )


def _edge_bw(via: str) -> Transform:
    if via == "materialize":
        return lambda specs: materialize_edge(specs, BALANCE, WRITE_CHECK)
    return lambda specs: promote_edge(specs, BALANCE, WRITE_CHECK, via=via)


BASE_SI = Strategy("base-si", "SI", None)
MATERIALIZE_WT = Strategy("materialize-wt", "MaterializeWT", _edge_wt("materialize"))
PROMOTE_WT_UPD = Strategy("promote-wt-upd", "PromoteWT-upd", _edge_wt("update"))
PROMOTE_WT_SFU = Strategy(
    "promote-wt-sfu", "PromoteWT-sfu", _edge_wt("sfu"), requires_cc_sfu=True
)
MATERIALIZE_BW = Strategy("materialize-bw", "MaterializeBW", _edge_bw("materialize"))
PROMOTE_BW_UPD = Strategy("promote-bw-upd", "PromoteBW-upd", _edge_bw("update"))
PROMOTE_BW_SFU = Strategy(
    "promote-bw-sfu", "PromoteBW-sfu", _edge_bw("sfu"), requires_cc_sfu=True
)
MATERIALIZE_ALL = Strategy(
    "materialize-all", "MaterializeALL", lambda specs: materialize_all(specs)
)
PROMOTE_ALL = Strategy(
    "promote-all", "PromoteALL", lambda specs: promote_all(specs, via="update")
)

ALL_STRATEGIES: tuple[Strategy, ...] = (
    BASE_SI,
    MATERIALIZE_WT,
    PROMOTE_WT_UPD,
    PROMOTE_WT_SFU,
    MATERIALIZE_BW,
    PROMOTE_BW_UPD,
    PROMOTE_BW_SFU,
    MATERIALIZE_ALL,
    PROMOTE_ALL,
)

STRATEGIES_BY_KEY = {s.key: s for s in ALL_STRATEGIES}

#: The subsets shown in each figure of the paper.
POSTGRES_STRATEGIES = tuple(
    s for s in ALL_STRATEGIES if not s.requires_cc_sfu
)


def get_strategy(key: str) -> Strategy:
    try:
        return STRATEGIES_BY_KEY[key]
    except KeyError:
        known = ", ".join(sorted(STRATEGIES_BY_KEY))
        raise KeyError(f"unknown strategy {key!r}; known: {known}") from None
