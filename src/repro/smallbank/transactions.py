"""Executable SmallBank transaction programs (paper Section III-B).

The bodies are written with :mod:`repro.sqlmini` prepared statements so
they match the SQL the paper prints (Program 1).  A
:class:`SmallBankTransactions` instance is parameterized by the list of
:class:`~repro.core.modify.Modification` records produced by the strategy
transforms — the *same* records that rewrite the symbolic specs also
rewrite the executable programs:

* ``materialize`` on program P keyed by ``x`` → P additionally executes
  ``UPDATE Conflict SET Value = Value + 1 WHERE Id = :x``;
* ``promote-upd`` on table T keyed by ``x`` → P additionally executes the
  identity write ``UPDATE T SET Balance = Balance WHERE CustomerId = :x``;
* ``promote-sfu`` on table T keyed by ``x`` → P's read of T[x] becomes
  ``SELECT ... FOR UPDATE``.

Programs signal business-rule aborts (unknown customer, negative deposit,
overdrawn savings) by rolling the session back and raising
:class:`~repro.errors.ApplicationRollback` — these are *not* concurrency
aborts and the workload driver counts them separately.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from repro.core.modify import Modification
from repro.engine.session import Session
from repro.errors import ApplicationRollback
from repro.smallbank import programs as names
from repro.smallbank.schema import CHECKING, CONFLICT, SAVING
from repro.sqlmini import PreparedStatement

# ----------------------------------------------------------------------
# Prepared statements (parsed once at import)
# ----------------------------------------------------------------------
GET_ACCOUNT = PreparedStatement(
    "SELECT CustomerId INTO :x FROM Account WHERE Name = :N"
)
GET_ACCOUNT_2 = PreparedStatement(
    "SELECT CustomerId INTO :x2 FROM Account WHERE Name = :N2"
)
GET_SAVING = PreparedStatement(
    "SELECT Balance INTO :a FROM Saving WHERE CustomerId = :x"
)
GET_SAVING_SFU = PreparedStatement(
    "SELECT Balance INTO :a FROM Saving WHERE CustomerId = :x FOR UPDATE"
)
GET_CHECKING = PreparedStatement(
    "SELECT Balance INTO :b FROM Checking WHERE CustomerId = :x"
)
GET_CHECKING_SFU = PreparedStatement(
    "SELECT Balance INTO :b FROM Checking WHERE CustomerId = :x FOR UPDATE"
)
ADD_SAVING = PreparedStatement(
    "UPDATE Saving SET Balance = Balance + :V WHERE CustomerId = :x"
)
ADD_CHECKING = PreparedStatement(
    "UPDATE Checking SET Balance = Balance + :V WHERE CustomerId = :x"
)
DEBIT_CHECKING = PreparedStatement(
    "UPDATE Checking SET Balance = Balance - :V WHERE CustomerId = :x"
)
DEBIT_CHECKING_PENALTY = PreparedStatement(
    "UPDATE Checking SET Balance = Balance - (:V + 1) WHERE CustomerId = :x"
)
ZERO_SAVING = PreparedStatement(
    "UPDATE Saving SET Balance = 0 WHERE CustomerId = :x"
)
ZERO_CHECKING = PreparedStatement(
    "UPDATE Checking SET Balance = 0 WHERE CustomerId = :x"
)
IDENTITY_SAVING = PreparedStatement(
    "UPDATE Saving SET Balance = Balance WHERE CustomerId = :x"
)
IDENTITY_CHECKING = PreparedStatement(
    "UPDATE Checking SET Balance = Balance WHERE CustomerId = :x"
)
TOUCH_CONFLICT = PreparedStatement(
    "UPDATE Conflict SET Value = Value + 1 WHERE Id = :x",
    kind="materialize-update",
)

_IDENTITY = {SAVING: IDENTITY_SAVING, CHECKING: IDENTITY_CHECKING}

ProgramBody = Callable[[Session, Mapping[str, object]], object]


class SmallBankTransactions:
    """The five programs, optionally rewritten by strategy modifications."""

    def __init__(self, modifications: Iterable[Modification] = ()) -> None:
        self.modifications = tuple(modifications)
        # program -> ordered extra operations; program -> sfu'd reads.
        self._materialize: dict[str, list[str]] = {}
        self._promote: dict[str, list[tuple[str, str]]] = {}
        self._sfu: dict[str, set[tuple[str, str]]] = {}
        for mod in self.modifications:
            if mod.kind == "materialize":
                if mod.key is None:
                    raise ValueError(
                        "SmallBank materialization is keyed per customer; "
                        f"got a constant-row modification for {mod.program}"
                    )
                self._materialize.setdefault(mod.program, []).append(mod.key)
            elif mod.kind == "promote-upd":
                self._promote.setdefault(mod.program, []).append(
                    (mod.table, mod.key or "x")
                )
            elif mod.kind == "promote-sfu":
                self._sfu.setdefault(mod.program, set()).add(
                    (mod.table, mod.key or "x")
                )
            else:
                raise ValueError(f"unknown modification kind {mod.kind!r}")

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _lookup(
        self, session: Session, statement: PreparedStatement, params: dict
    ) -> None:
        statement.execute(session, params)

    def _resolve_customer(
        self, session: Session, params: dict, name_var: str = "N"
    ) -> int:
        """Account lookup; rolls back when the name is unknown."""
        if name_var == "N":
            GET_ACCOUNT.execute(session, params)
            cid = params.get("x")
        else:
            GET_ACCOUNT_2.execute(session, params)
            cid = params.get("x2")
        if cid is None:
            session.rollback()
            raise ApplicationRollback(f"unknown customer {params.get(name_var)!r}")
        return cid

    def _apply_extra_writes(
        self, session: Session, program: str, bindings: Mapping[str, int]
    ) -> None:
        """Run the strategy-introduced statements for ``program``.

        ``bindings`` maps spec parameter names (``x`` / ``x1`` / ``x2``) to
        the customer ids this invocation resolved.
        """
        for key in self._materialize.get(program, ()):
            TOUCH_CONFLICT.execute(session, {"x": bindings[key]})
        for table, key in self._promote.get(program, ()):
            _IDENTITY[table].execute(session, {"x": bindings[key]})

    def _uses_sfu(self, program: str, table: str, key: str = "x") -> bool:
        return (table, key) in self._sfu.get(program, set())

    def _get_saving(self, session: Session, program: str, params: dict) -> None:
        stmt = (
            GET_SAVING_SFU if self._uses_sfu(program, SAVING) else GET_SAVING
        )
        stmt.execute(session, params)

    def _get_checking(self, session: Session, program: str, params: dict) -> None:
        stmt = (
            GET_CHECKING_SFU
            if self._uses_sfu(program, CHECKING)
            else GET_CHECKING
        )
        stmt.execute(session, params)

    # ------------------------------------------------------------------
    # The five programs
    # ------------------------------------------------------------------
    def balance(self, session: Session, args: Mapping[str, object]) -> float:
        """Bal(N): return savings + checking for the customer."""
        params = {"N": args["N"]}
        x = self._resolve_customer(session, params)
        self._apply_extra_writes(session, names.BALANCE, {"x": x})
        self._get_saving(session, names.BALANCE, params)
        self._get_checking(session, names.BALANCE, params)
        return float(params["a"]) + float(params["b"])

    def deposit_checking(
        self, session: Session, args: Mapping[str, object]
    ) -> None:
        """DC(N, V): checking += V; rolls back for negative V."""
        value = float(args["V"])
        if value < 0:
            session.rollback()
            raise ApplicationRollback("negative deposit")
        params = {"N": args["N"], "V": value}
        x = self._resolve_customer(session, params)
        self._apply_extra_writes(session, names.DEPOSIT_CHECKING, {"x": x})
        ADD_CHECKING.execute(session, params)

    def transact_saving(
        self, session: Session, args: Mapping[str, object]
    ) -> None:
        """TS(N, V): saving += V; rolls back if the result would be < 0."""
        value = float(args["V"])
        params = {"N": args["N"], "V": value}
        x = self._resolve_customer(session, params)
        self._apply_extra_writes(session, names.TRANSACT_SAVING, {"x": x})
        self._get_saving(session, names.TRANSACT_SAVING, params)
        if float(params["a"]) + value < 0:
            session.rollback()
            raise ApplicationRollback("savings would go negative")
        ADD_SAVING.execute(session, params)

    def amalgamate(self, session: Session, args: Mapping[str, object]) -> None:
        """Amg(N1, N2): zero customer 1's accounts, credit customer 2."""
        params: dict = {"N": args["N1"], "N2": args["N2"]}
        x1 = self._resolve_customer(session, params, "N")
        x2 = self._resolve_customer(session, params, "N2")
        self._apply_extra_writes(
            session, names.AMALGAMATE, {"x1": x1, "x2": x2}
        )
        self._get_saving(session, names.AMALGAMATE, params)
        self._get_checking(session, names.AMALGAMATE, params)
        total = float(params["a"]) + float(params["b"])
        ZERO_SAVING.execute(session, {"x": x1})
        ZERO_CHECKING.execute(session, {"x": x1})
        ADD_CHECKING.execute(session, {"x": x2, "V": total})

    def write_check(self, session: Session, args: Mapping[str, object]) -> bool:
        """WC(N, V): debit checking by V, or V+1 when overdrawing.

        Returns True when the overdraft penalty was charged (Program 1).
        """
        value = float(args["V"])
        params = {"N": args["N"], "V": value}
        x = self._resolve_customer(session, params)
        self._apply_extra_writes(session, names.WRITE_CHECK, {"x": x})
        self._get_saving(session, names.WRITE_CHECK, params)
        self._get_checking(session, names.WRITE_CHECK, params)
        total = float(params["a"]) + float(params["b"])
        if total < value:
            DEBIT_CHECKING_PENALTY.execute(session, params)
            return True
        DEBIT_CHECKING.execute(session, params)
        return False

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def body(self, program: str) -> ProgramBody:
        bodies: dict[str, ProgramBody] = {
            names.BALANCE: self.balance,
            names.DEPOSIT_CHECKING: self.deposit_checking,
            names.TRANSACT_SAVING: self.transact_saving,
            names.AMALGAMATE: self.amalgamate,
            names.WRITE_CHECK: self.write_check,
        }
        try:
            return bodies[program]
        except KeyError:
            raise ValueError(f"unknown SmallBank program {program!r}") from None

    def run(
        self,
        session: Session,
        program: str,
        args: Mapping[str, object],
        *,
        commit: bool = True,
    ) -> object:
        """Execute one program inside a fresh transaction on ``session``."""
        session.begin(program)
        result = self.body(program)(session, args)
        if commit:
            session.commit()
        return result
