"""Mini SQL layer: AST, parser and executor over engine sessions.

The SmallBank transaction programs are written against this layer so their
code matches the SQL printed in the paper (Program 1)::

    from repro.sqlmini import PreparedStatement

    get_saving = PreparedStatement(
        "SELECT Balance INTO :a FROM Saving WHERE CustomerId = :x"
    )
    params = {"x": 42}
    get_saving.execute(session, params)
    print(params["a"])
"""

from repro.sqlmini.ast import (
    BinOp,
    ColumnRef,
    Delete,
    Expr,
    Insert,
    Literal,
    Param,
    Select,
    Statement,
    UnaryOp,
    Update,
    columns_in,
    params_in,
    statement_params,
    equality_key,
    evaluate,
)
from repro.sqlmini.executor import (
    PreparedStatement,
    StatementResult,
    clear_parse_cache,
    execute_sql,
    parse_cache_stats,
    parse_cached,
)
from repro.sqlmini.parser import parse, parse_script

__all__ = [
    "BinOp",
    "ColumnRef",
    "Delete",
    "Expr",
    "Insert",
    "Literal",
    "Param",
    "PreparedStatement",
    "Select",
    "Statement",
    "StatementResult",
    "UnaryOp",
    "Update",
    "clear_parse_cache",
    "columns_in",
    "params_in",
    "statement_params",
    "equality_key",
    "evaluate",
    "execute_sql",
    "parse",
    "parse_cache_stats",
    "parse_cached",
    "parse_script",
]
