"""Abstract syntax for the mini SQL dialect.

The dialect covers exactly what the paper's transaction programs (Program 1
and the strategy modifications) need, in PL/pgSQL-flavoured form:

* ``SELECT col [, col] [INTO :var [, :var]] FROM t [WHERE expr] [FOR UPDATE]``
* ``UPDATE t SET col = expr [, col = expr] [WHERE expr]``
* ``INSERT INTO t (col, ...) VALUES (expr, ...)``
* ``DELETE FROM t [WHERE expr]``

Expressions support column references, ``:parameter`` placeholders, numeric
and string literals, ``+ - * /``, comparisons and ``AND`` / ``OR`` / ``NOT``.
Statements are plain immutable dataclasses; the executor interprets them
against a :class:`~repro.engine.session.Session`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Mapping, Optional, Union

from repro.errors import SqlError

# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Literal:
    value: object

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return "'" + self.value.replace("'", "''") + "'"
        return repr(self.value)


@dataclass(frozen=True)
class Param:
    name: str

    def __str__(self) -> str:
        return f":{self.name}"


@dataclass(frozen=True)
class ColumnRef:
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class BinOp:
    op: str  # + - * / = != < <= > >= AND OR
    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryOp:
    op: str  # NOT, -
    operand: "Expr"

    def __str__(self) -> str:
        return f"({self.op} {self.operand})"


Expr = Union[Literal, Param, ColumnRef, BinOp, UnaryOp]

_ARITH = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}
_COMPARE = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def evaluate(
    expr: Expr,
    row: Optional[Mapping[str, object]],
    params: Mapping[str, object],
) -> object:
    """Evaluate ``expr`` against a row (may be None) and bound parameters."""
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, Param):
        try:
            return params[expr.name]
        except KeyError:
            raise SqlError(f"unbound parameter :{expr.name}") from None
    if isinstance(expr, ColumnRef):
        if row is None:
            raise SqlError(f"column {expr.name!r} referenced outside a row context")
        try:
            return row[expr.name]
        except KeyError:
            raise SqlError(f"unknown column {expr.name!r}") from None
    if isinstance(expr, UnaryOp):
        value = evaluate(expr.operand, row, params)
        if expr.op == "NOT":
            return not value
        if expr.op == "-":
            return -value  # type: ignore[operator]
        raise SqlError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, BinOp):
        if expr.op == "AND":
            return bool(evaluate(expr.left, row, params)) and bool(
                evaluate(expr.right, row, params)
            )
        if expr.op == "OR":
            return bool(evaluate(expr.left, row, params)) or bool(
                evaluate(expr.right, row, params)
            )
        left = evaluate(expr.left, row, params)
        right = evaluate(expr.right, row, params)
        if expr.op in _ARITH:
            return _ARITH[expr.op](left, right)  # type: ignore[arg-type]
        if expr.op in _COMPARE:
            return _COMPARE[expr.op](left, right)  # type: ignore[arg-type]
        raise SqlError(f"unknown operator {expr.op!r}")
    raise SqlError(f"unknown expression node {expr!r}")


def columns_in(expr: Optional[Expr]) -> frozenset[str]:
    """All column names referenced by ``expr``."""
    if expr is None:
        return frozenset()
    if isinstance(expr, ColumnRef):
        return frozenset({expr.name})
    if isinstance(expr, BinOp):
        return columns_in(expr.left) | columns_in(expr.right)
    if isinstance(expr, UnaryOp):
        return columns_in(expr.operand)
    return frozenset()


def params_in(expr: Optional[Expr]) -> frozenset[str]:
    """All ``:parameter`` names referenced by ``expr``."""
    if expr is None:
        return frozenset()
    if isinstance(expr, Param):
        return frozenset({expr.name})
    if isinstance(expr, BinOp):
        return params_in(expr.left) | params_in(expr.right)
    if isinstance(expr, UnaryOp):
        return params_in(expr.operand)
    return frozenset()


def equality_key(
    where: Optional[Expr], column: str
) -> Optional[Expr]:
    """If ``where`` constrains ``column = <column-free expr>``, return it.

    Recognizes the pattern directly or as a conjunct of an AND chain, which
    is how the executor turns WHERE clauses into primary-key or unique-index
    lookups instead of full scans.
    """
    if where is None:
        return None
    if isinstance(where, BinOp):
        if where.op == "=":
            if (
                isinstance(where.left, ColumnRef)
                and where.left.name == column
                and not columns_in(where.right)
            ):
                return where.right
            if (
                isinstance(where.right, ColumnRef)
                and where.right.name == column
                and not columns_in(where.left)
            ):
                return where.left
            return None
        if where.op == "AND":
            return equality_key(where.left, column) or equality_key(
                where.right, column
            )
    return None


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Select:
    table: str
    columns: tuple[str, ...]  # ("*",) selects every column
    where: Optional[Expr] = None
    into: tuple[str, ...] = ()
    for_update: bool = False

    def __str__(self) -> str:
        parts = [f"SELECT {', '.join(self.columns)}"]
        if self.into:
            parts.append("INTO " + ", ".join(f":{name}" for name in self.into))
        parts.append(f"FROM {self.table}")
        if self.where is not None:
            parts.append(f"WHERE {self.where}")
        if self.for_update:
            parts.append("FOR UPDATE")
        return " ".join(parts)


@dataclass(frozen=True)
class Update:
    table: str
    assignments: tuple[tuple[str, Expr], ...]
    where: Optional[Expr] = None

    @property
    def is_identity(self) -> bool:
        """True for the promotion idiom ``SET col = col`` (all assignments)."""
        return all(
            isinstance(expr, ColumnRef) and expr.name == column
            for column, expr in self.assignments
        )

    def __str__(self) -> str:
        sets = ", ".join(f"{col} = {expr}" for col, expr in self.assignments)
        where = f" WHERE {self.where}" if self.where is not None else ""
        return f"UPDATE {self.table} SET {sets}{where}"


@dataclass(frozen=True)
class Insert:
    table: str
    columns: tuple[str, ...]
    values: tuple[Expr, ...]

    def __post_init__(self) -> None:
        if len(self.columns) != len(self.values):
            raise SqlError("INSERT column/value count mismatch")

    def __str__(self) -> str:
        cols = ", ".join(self.columns)
        vals = ", ".join(str(v) for v in self.values)
        return f"INSERT INTO {self.table} ({cols}) VALUES ({vals})"


@dataclass(frozen=True)
class Delete:
    table: str
    where: Optional[Expr] = None

    def __str__(self) -> str:
        where = f" WHERE {self.where}" if self.where is not None else ""
        return f"DELETE FROM {self.table}{where}"


Statement = Union[Select, Update, Insert, Delete]


@lru_cache(maxsize=None)
def statement_params(statement: Statement) -> frozenset[str]:
    """All ``:parameter`` names a statement *reads* (``INTO`` targets are
    outputs, not inputs, and are excluded).  Cached per (hashable,
    immutable) statement — the network client uses this to ship only the
    parameters a statement needs.
    """
    if isinstance(statement, Select):
        return params_in(statement.where)
    if isinstance(statement, Update):
        names = params_in(statement.where)
        for _, expr in statement.assignments:
            names |= params_in(expr)
        return names
    if isinstance(statement, Insert):
        names: frozenset[str] = frozenset()
        for expr in statement.values:
            names |= params_in(expr)
        return names
    if isinstance(statement, Delete):
        return params_in(statement.where)
    raise SqlError(f"unknown statement node {statement!r}")
