"""Execution of mini-SQL statements against an engine session.

A :class:`PreparedStatement` is parsed once and executed many times with
different parameter bindings — the shape of the stored procedures the
paper's test driver invokes.  ``SELECT ... INTO :var`` writes the result
into the parameter mapping, mirroring PL/pgSQL, so transaction programs can
chain statements exactly like Program 1 in the paper.

Planning is deliberately simple: a ``WHERE`` clause that pins the table's
primary key (or a unique column) with an equality against a column-free
expression becomes a key lookup; anything else is a predicate scan.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Hashable, MutableMapping, Optional

from repro.engine.session import Session
from repro.errors import SqlError
from repro.sqlmini.ast import (
    Delete,
    Expr,
    Insert,
    Select,
    Statement,
    Update,
    columns_in,
    equality_key,
    evaluate,
)
from repro.sqlmini.parser import parse

Params = MutableMapping[str, object]


# ----------------------------------------------------------------------
# Parse cache
# ----------------------------------------------------------------------
# Statement ASTs are frozen dataclasses, so one parse result can safely be
# shared by every PreparedStatement (and every server-side EXEC) carrying
# the same SQL text.  Before this cache existed, the facade/wire path — a
# fresh PreparedStatement per EXEC — re-parsed on every execution.
_parse_cache: dict[str, Statement] = {}
_parse_cache_lock = threading.Lock()
_parse_misses = 0


def parse_cached(sql: str) -> Statement:
    """Parse ``sql``, memoizing the (immutable) AST by exact text."""
    global _parse_misses
    with _parse_cache_lock:
        cached = _parse_cache.get(sql)
    if cached is not None:
        return cached
    statement = parse(sql)
    with _parse_cache_lock:
        _parse_misses += 1
        return _parse_cache.setdefault(sql, statement)


def parse_cache_stats() -> tuple[int, int]:
    """``(cached_statements, total_parse_misses)`` — for tests/metrics."""
    with _parse_cache_lock:
        return len(_parse_cache), _parse_misses


def clear_parse_cache() -> None:
    global _parse_misses
    with _parse_cache_lock:
        _parse_cache.clear()
        _parse_misses = 0


@dataclass
class StatementResult:
    """Outcome of one statement execution."""

    rows: list[dict[str, object]] = field(default_factory=list)
    rowcount: int = 0

    @property
    def first(self) -> Optional[dict[str, object]]:
        return self.rows[0] if self.rows else None


class PreparedStatement:
    """A parsed statement bound to no particular session.

    Parameters
    ----------
    sql:
        Statement text (or an already-parsed :class:`Statement`).
    kind:
        Override for the session statement-accounting hook.  The strategy
        layer tags the statements it injects (``"materialize-update"``)
        so the platform cost models can price them; identity updates are
        tagged automatically.
    """

    def __init__(self, sql: "str | Statement", kind: Optional[str] = None) -> None:
        if isinstance(sql, str):
            self.statement: Statement = parse_cached(sql)
            self.sql = sql
        else:
            self.statement = sql
            self.sql = str(sql)
        if kind is not None:
            self.kind = kind
        elif isinstance(self.statement, Update) and self.statement.is_identity:
            self.kind = "identity-update"
        else:
            self.kind = type(self.statement).__name__.lower()

    def __str__(self) -> str:
        return str(self.statement)

    # ------------------------------------------------------------------
    def execute(self, session: Session, params: Optional[Params] = None) -> StatementResult:
        bound: Params = params if params is not None else {}
        # Network facade path: a session that executes statements remotely
        # (ships SQL text + params, merges returned bindings) advertises
        # ``execute_prepared``; planning then happens server-side.
        remote = getattr(session, "execute_prepared", None)
        if remote is not None:
            return remote(self.sql, self.kind, bound)
        statement = self.statement
        if isinstance(statement, Select):
            return self._execute_select(session, statement, bound)
        if isinstance(statement, Update):
            return self._execute_update(session, statement, bound)
        if isinstance(statement, Insert):
            return self._execute_insert(session, statement, bound)
        if isinstance(statement, Delete):
            return self._execute_delete(session, statement, bound)
        raise SqlError(f"unsupported statement {statement!r}")

    # ------------------------------------------------------------------
    def _schema(self, session: Session, table: str):
        return session.db.catalog.table(table).schema

    def _resolve_rows(
        self,
        session: Session,
        table: str,
        where: Optional[Expr],
        params: Params,
        *,
        for_update: bool,
        kind: str,
    ) -> list[tuple[Hashable, dict[str, object]]]:
        """Find the rows a statement targets, preferring key lookups."""
        schema = self._schema(session, table)
        pk = schema.primary_key

        key_expr = equality_key(where, pk)
        if key_expr is not None:
            key = evaluate(key_expr, None, params)
            if for_update:
                row = session.select_for_update(table, key, kind=kind)
            else:
                row = session.select(table, key, kind=kind)
            if row is None:
                return []
            if where is not None and not evaluate(where, row, params):
                return []
            return [(key, dict(row))]

        for column in schema.unique:
            value_expr = equality_key(where, column)
            if value_expr is None:
                continue
            value = evaluate(value_expr, None, params)
            found = session.lookup_unique(table, column, value, kind=kind)
            if found is None:
                return []
            key, row = found
            if for_update:
                locked = session.select_for_update(table, key)
                if locked is None:
                    return []
                row = locked
            if where is not None and not evaluate(where, row, params):
                return []
            return [(key, dict(row))]

        matches = session.scan(
            table,
            predicate=(
                (lambda row: bool(evaluate(where, row, params)))
                if where is not None
                else None
            ),
            description=str(where) if where is not None else "<all>",
            kind="scan",
        )
        resolved: list[tuple[Hashable, dict[str, object]]] = []
        for key, row in matches:
            if for_update:
                locked = session.select_for_update(table, key)
                if locked is None:
                    continue
                row = locked
            resolved.append((key, dict(row)))
        return resolved

    def _execute_select(
        self, session: Session, statement: Select, params: Params
    ) -> StatementResult:
        kind = self.kind if self.kind != "select" else (
            "select-for-update" if statement.for_update else "select"
        )
        targets = self._resolve_rows(
            session,
            statement.table,
            statement.where,
            params,
            for_update=statement.for_update,
            kind=kind,
        )
        schema = self._schema(session, statement.table)
        columns = (
            schema.column_names
            if statement.columns == ("*",)
            else statement.columns
        )
        rows = [{col: row[col] for col in columns} for _, row in targets]
        if statement.into:
            first = rows[0] if rows else None
            for column, var in zip(columns, statement.into):
                params[var] = first[column] if first is not None else None
        return StatementResult(rows=rows, rowcount=len(rows))

    def _execute_update(
        self, session: Session, statement: Update, params: Params
    ) -> StatementResult:
        schema = self._schema(session, statement.table)
        pk = schema.primary_key
        key_expr = equality_key(statement.where, pk)

        def changes(row):
            return {
                column: evaluate(expr, row, params)
                for column, expr in statement.assignments
            }

        count = 0
        if key_expr is not None and columns_in(statement.where) == {pk}:
            key = evaluate(key_expr, None, params)
            if session.update(statement.table, key, changes, kind=self.kind):
                count = 1
        else:
            targets = self._resolve_rows(
                session,
                statement.table,
                statement.where,
                params,
                for_update=False,
                kind="scan",
            )
            for key, _row in targets:
                if session.update(statement.table, key, changes, kind=self.kind):
                    count += 1
        return StatementResult(rowcount=count)

    def _execute_insert(
        self, session: Session, statement: Insert, params: Params
    ) -> StatementResult:
        row = {
            column: evaluate(expr, None, params)
            for column, expr in zip(statement.columns, statement.values)
        }
        session.insert(statement.table, row, kind=self.kind)
        return StatementResult(rowcount=1)

    def _execute_delete(
        self, session: Session, statement: Delete, params: Params
    ) -> StatementResult:
        targets = self._resolve_rows(
            session,
            statement.table,
            statement.where,
            params,
            for_update=False,
            kind=self.kind,
        )
        count = 0
        for key, _row in targets:
            session.delete(statement.table, key, kind=self.kind)
            count += 1
        return StatementResult(rowcount=count)


def execute_sql(
    session: Session, sql: str, params: Optional[Params] = None
) -> StatementResult:
    """One-shot convenience: parse and execute ``sql`` in ``session``."""
    return PreparedStatement(sql).execute(session, params)
