"""A small recursive-descent parser for the mini SQL dialect.

Accepts the SQL that appears in the paper (Program 1 and the strategy
statements), e.g.::

    SELECT Balance INTO :b FROM Saving WHERE CustomerId = :x FOR UPDATE;
    UPDATE Checking SET Balance = Balance - (:v + 1) WHERE CustomerId = :x;
    UPDATE Conflict SET Value = Value + 1 WHERE Id = :x;
    INSERT INTO Account (Name, CustomerId) VALUES (:n, :c);

Keywords are case-insensitive; identifiers keep their case.  A trailing
semicolon is optional.  :func:`parse` returns one statement;
:func:`parse_script` splits on semicolons and returns all of them.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.errors import SqlError
from repro.sqlmini.ast import (
    BinOp,
    ColumnRef,
    Delete,
    Expr,
    Insert,
    Literal,
    Param,
    Select,
    Statement,
    UnaryOp,
    Update,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d+|\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<param>:[A-Za-z_][A-Za-z0-9_]*)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><=|>=|!=|<>|[=<>+\-*/(),;])
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "SELECT",
    "INTO",
    "FROM",
    "WHERE",
    "FOR",
    "UPDATE",
    "SET",
    "INSERT",
    "VALUES",
    "DELETE",
    "AND",
    "OR",
    "NOT",
}


class _Token:
    __slots__ = ("kind", "value")

    def __init__(self, kind: str, value: str) -> None:
        self.kind = kind
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r})"


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise SqlError(f"cannot tokenize SQL at: {text[pos:pos + 20]!r}")
        pos = match.end()
        kind = match.lastgroup or ""
        if kind == "ws":
            continue
        value = match.group()
        if kind == "name" and value.upper() in _KEYWORDS:
            tokens.append(_Token("kw", value.upper()))
        elif kind == "op" and value == "<>":
            tokens.append(_Token("op", "!="))
        else:
            tokens.append(_Token(kind, value))
    return tokens


class _Parser:
    def __init__(self, tokens: list[_Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers -------------------------------------------------
    def _peek(self) -> Optional[_Token]:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise SqlError("unexpected end of SQL")
        self._pos += 1
        return token

    def _accept(self, kind: str, value: Optional[str] = None) -> Optional[_Token]:
        token = self._peek()
        if token is not None and token.kind == kind and (
            value is None or token.value == value
        ):
            self._pos += 1
            return token
        return None

    def _expect(self, kind: str, value: Optional[str] = None) -> _Token:
        token = self._accept(kind, value)
        if token is None:
            found = self._peek()
            raise SqlError(
                f"expected {value or kind}, found "
                f"{found.value if found else 'end of input'!r}"
            )
        return token

    def _name(self) -> str:
        return self._expect("name").value

    # -- expressions (precedence climbing) -----------------------------
    def expression(self) -> Expr:
        return self._or_expr()

    def _or_expr(self) -> Expr:
        left = self._and_expr()
        while self._accept("kw", "OR"):
            left = BinOp("OR", left, self._and_expr())
        return left

    def _and_expr(self) -> Expr:
        left = self._not_expr()
        while self._accept("kw", "AND"):
            left = BinOp("AND", left, self._not_expr())
        return left

    def _not_expr(self) -> Expr:
        if self._accept("kw", "NOT"):
            return UnaryOp("NOT", self._not_expr())
        return self._comparison()

    def _comparison(self) -> Expr:
        left = self._additive()
        token = self._peek()
        if token is not None and token.kind == "op" and token.value in (
            "=",
            "!=",
            "<",
            "<=",
            ">",
            ">=",
        ):
            self._next()
            return BinOp(token.value, left, self._additive())
        return left

    def _additive(self) -> Expr:
        left = self._multiplicative()
        while True:
            token = self._peek()
            if token is not None and token.kind == "op" and token.value in "+-":
                self._next()
                left = BinOp(token.value, left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> Expr:
        left = self._unary()
        while True:
            token = self._peek()
            if token is not None and token.kind == "op" and token.value in "*/":
                self._next()
                left = BinOp(token.value, left, self._unary())
            else:
                return left

    def _unary(self) -> Expr:
        if self._accept("op", "-"):
            return UnaryOp("-", self._unary())
        return self._primary()

    def _primary(self) -> Expr:
        token = self._next()
        if token.kind == "number":
            text = token.value
            return Literal(float(text) if "." in text else int(text))
        if token.kind == "string":
            return Literal(token.value[1:-1].replace("''", "'"))
        if token.kind == "param":
            return Param(token.value[1:])
        if token.kind == "name":
            return ColumnRef(token.value)
        if token.kind == "op" and token.value == "(":
            inner = self.expression()
            self._expect("op", ")")
            return inner
        raise SqlError(f"unexpected token {token.value!r} in expression")

    # -- statements ----------------------------------------------------
    def statement(self) -> Statement:
        token = self._peek()
        if token is None:
            raise SqlError("empty SQL statement")
        if token.kind != "kw":
            raise SqlError(f"expected a statement keyword, found {token.value!r}")
        if token.value == "SELECT":
            return self._select()
        if token.value == "UPDATE":
            return self._update()
        if token.value == "INSERT":
            return self._insert()
        if token.value == "DELETE":
            return self._delete()
        raise SqlError(f"unsupported statement {token.value!r}")

    def _select(self) -> Select:
        self._expect("kw", "SELECT")
        columns: list[str] = []
        if self._accept("op", "*"):
            columns.append("*")
        else:
            columns.append(self._name())
            while self._accept("op", ","):
                columns.append(self._name())
        into: list[str] = []
        if self._accept("kw", "INTO"):
            into.append(self._expect("param").value[1:])
            while self._accept("op", ","):
                into.append(self._expect("param").value[1:])
            if len(into) != len(columns):
                raise SqlError("SELECT INTO variable/column count mismatch")
        self._expect("kw", "FROM")
        table = self._name()
        where = self.expression() if self._accept("kw", "WHERE") else None
        for_update = False
        if self._accept("kw", "FOR"):
            self._expect("kw", "UPDATE")
            for_update = True
        return Select(table, tuple(columns), where, tuple(into), for_update)

    def _update(self) -> Update:
        self._expect("kw", "UPDATE")
        table = self._name()
        self._expect("kw", "SET")
        assignments: list[tuple[str, Expr]] = []
        while True:
            column = self._name()
            self._expect("op", "=")
            assignments.append((column, self.expression()))
            if not self._accept("op", ","):
                break
        where = self.expression() if self._accept("kw", "WHERE") else None
        return Update(table, tuple(assignments), where)

    def _insert(self) -> Insert:
        self._expect("kw", "INSERT")
        self._expect("kw", "INTO")
        table = self._name()
        self._expect("op", "(")
        columns = [self._name()]
        while self._accept("op", ","):
            columns.append(self._name())
        self._expect("op", ")")
        self._expect("kw", "VALUES")
        self._expect("op", "(")
        values = [self.expression()]
        while self._accept("op", ","):
            values.append(self.expression())
        self._expect("op", ")")
        return Insert(table, tuple(columns), tuple(values))

    def _delete(self) -> Delete:
        self._expect("kw", "DELETE")
        self._expect("kw", "FROM")
        table = self._name()
        where = self.expression() if self._accept("kw", "WHERE") else None
        return Delete(table, where)

    def finish_statement(self) -> None:
        self._accept("op", ";")
        token = self._peek()
        if token is not None:
            raise SqlError(f"trailing input after statement: {token.value!r}")


def parse(sql: str) -> Statement:
    """Parse exactly one statement."""
    parser = _Parser(_tokenize(sql))
    statement = parser.statement()
    parser.finish_statement()
    return statement


def parse_script(sql: str) -> list[Statement]:
    """Parse a semicolon-separated list of statements."""
    statements: list[Statement] = []
    for chunk in sql.split(";"):
        if chunk.strip():
            statements.append(parse(chunk))
    return statements
