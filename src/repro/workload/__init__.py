"""Workload definitions and the threaded closed-system driver."""

from repro.workload.driver import (
    ThreadedDriver,
    ThreadedDriverConfig,
    ThreadedDriverError,
)
from repro.workload.retry import RetryPolicy
from repro.workload.mix import (
    BALANCE60_MIX,
    MIXES,
    UNIFORM_MIX,
    HotspotConfig,
    ParameterGenerator,
    TransactionMix,
    get_mix,
)
from repro.workload.stats import (
    AggregateResult,
    RunStats,
    mean_and_ci,
    t_critical,
)

__all__ = [
    "AggregateResult",
    "BALANCE60_MIX",
    "HotspotConfig",
    "MIXES",
    "ParameterGenerator",
    "RetryPolicy",
    "RunStats",
    "ThreadedDriver",
    "ThreadedDriverConfig",
    "ThreadedDriverError",
    "TransactionMix",
    "UNIFORM_MIX",
    "get_mix",
    "mean_and_ci",
    "t_critical",
]
