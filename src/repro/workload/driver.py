"""The threaded (real-concurrency, wall-clock) closed-system driver.

The performance figures come from the simulator (:mod:`repro.sim`), where
time is modelled; this driver runs the same mix on real OS threads and is
used for correctness under genuine concurrency (combine with
:class:`~repro.analysis.SerializabilityChecker`) and for quick smoke
benchmarks of the engine itself.

Robustness contract:

* every transaction outcome releases its session — aborts *and* business
  rollbacks call ``session.rollback()`` so no locks or uncommitted
  versions leak into later requests;
* a worker thread that dies on an unexpected exception does not silently
  deflate the run's TPS: per-thread exceptions are captured and re-raised
  (as :class:`ThreadedDriverError`) after all threads are joined, and
  threads still alive after the join timeout are reported the same way;
* retries follow the shared :class:`~repro.workload.retry.RetryPolicy`
  (default: the paper's retry-as-new-transaction protocol), and a
  :class:`~repro.faults.FaultPlan` installed on the database can kill
  clients mid-run (``client-death``);
* retry accounting is exact: a retry is recorded only once the extra
  attempt actually starts, so within one measurement window
  ``RunStats.total_retries == RunStats.accounted_retries`` — a request
  whose deadline expires mid-backoff counts as a give-up, not a retry.

Handing the driver an :class:`~repro.obs.Observability` installs it on
the database and additionally populates program-labelled driver metrics
(response-time histograms, commit/abort/retry/give-up counters) per run.

Backends: the driver runs against any :class:`repro.api.Connection` —
pass ``connection=`` (e.g. ``repro.connect("tcp://host:port")``) to push
the same closed-system load over the network service layer.  Passing a
bare :class:`Database` keeps the historical behaviour (an in-process
:class:`~repro.api.LocalConnection` is wrapped around it).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Optional

from repro.api import Connection, LocalConnection
from repro.engine.engine import Database
from repro.errors import ApplicationRollback, ReproError, TransactionAborted
from repro.obs import Observability
from repro.smallbank.transactions import SmallBankTransactions
from repro.workload.mix import HotspotConfig, ParameterGenerator, get_mix
from repro.workload.retry import RetryPolicy
from repro.workload.stats import RunStats


class ThreadedDriverError(ReproError):
    """One or more worker threads failed or never finished.

    ``failures`` maps client id to the exception that killed the worker;
    ``stuck`` lists client ids whose threads were still alive after the
    join timeout.
    """

    def __init__(
        self,
        failures: "dict[int, BaseException]",
        stuck: "tuple[int, ...]" = (),
    ) -> None:
        parts = []
        if failures:
            detail = "; ".join(
                f"client {cid}: {type(exc).__name__}: {exc}"
                for cid, exc in sorted(failures.items())
            )
            parts.append(f"{len(failures)} worker(s) died ({detail})")
        if stuck:
            parts.append(
                f"{len(stuck)} worker(s) still alive after join timeout: "
                f"{sorted(stuck)}"
            )
        super().__init__("; ".join(parts) or "threaded driver failure")
        self.failures = dict(failures)
        self.stuck = tuple(stuck)


@dataclass(frozen=True)
class ThreadedDriverConfig:
    mpl: int = 4
    customers: int = 100
    hotspot: int = 10
    hotspot_probability: float = 0.9
    mix: str = "uniform"
    duration: float = 1.0
    ramp_up: float = 0.0
    seed: int = 1
    #: Extra wall-clock grace given to the join beyond ramp-up + duration.
    join_grace: float = 60.0
    #: In-place retry protocol; ``None`` means the paper's default
    #: (surface every abort, move on to a fresh transaction).
    retry: Optional[RetryPolicy] = None
    #: Override for the stats measurement window ``(start, end)`` on the
    #: run clock; ``None`` means the standard ``[ramp_up, ramp_up +
    #: duration)``.  The retry-accounting tests pass ``(0.0, inf)`` so no
    #: event falls outside the window and the reconciliation is exact.
    stats_window: Optional[tuple[float, float]] = None


class ThreadedDriver:
    """Closed system of ``mpl`` real threads, no think time."""

    def __init__(
        self,
        db: Optional[Database],
        transactions: SmallBankTransactions,
        config: ThreadedDriverConfig,
        obs: Optional[Observability] = None,
        *,
        connection: Optional[Connection] = None,
    ) -> None:
        if connection is None:
            if db is None:
                raise ValueError("pass a Database or a connection")
            connection = LocalConnection(db)
        elif db is None:
            # A LocalConnection still exposes its engine (fault plans,
            # version-chain sampling); a network backend has no local
            # database and those hooks are skipped.
            db = getattr(connection, "db", None)
        self.db = db
        self.connection = connection
        self.transactions = transactions
        self.config = config
        self.obs = obs
        if obs is not None and db is not None:
            db.install_observability(obs)

    def run(self) -> RunStats:
        config = self.config
        obs = self.obs
        policy = config.retry or RetryPolicy.paper_default()
        window = config.stats_window or (
            config.ramp_up,
            config.ramp_up + config.duration,
        )
        stats = RunStats(window_start=window[0], window_end=window[1])
        mix = get_mix(config.mix)
        hotspot = HotspotConfig(
            customers=config.customers,
            hotspot=config.hotspot,
            hotspot_probability=config.hotspot_probability,
        )
        epoch = time.monotonic()
        deadline = epoch + config.ramp_up + config.duration

        def clock() -> float:
            return time.monotonic() - epoch

        def worker(client_id: int) -> None:
            rng = random.Random(f"{config.seed}/{client_id}")
            backoff_rng = random.Random(f"{config.seed}/backoff/{client_id}")
            generator = ParameterGenerator(hotspot, rng)
            faults = self.db.faults if self.db is not None else None
            while time.monotonic() < deadline:
                if faults is not None and faults.should_fire("client-death"):
                    return
                program = mix.choose(rng)
                args = generator.args_for(program)
                attempts = 0
                while True:
                    attempts += 1
                    session = self.connection.session()
                    started = clock()
                    try:
                        try:
                            self.transactions.run(session, program, args)
                            response = clock() - started
                            stats.record_commit(program, response, clock(), attempts)
                            if obs is not None:
                                obs.driver_commit(program, response, attempts)
                            break
                        except ApplicationRollback:
                            session.rollback()
                            stats.record_rollback(program, clock())
                            if obs is not None:
                                obs.driver_rollback(program)
                            break
                        except TransactionAborted as exc:
                            session.rollback()
                            stats.record_abort(program, exc.reason, clock())
                            if obs is not None:
                                obs.driver_abort(program, exc.reason)
                            if not policy.should_retry(exc, attempts):
                                stats.record_giveup(program, clock(), attempts)
                                if obs is not None:
                                    obs.driver_giveup(program)
                                break
                            delay = policy.backoff(attempts, backoff_rng)
                            if time.monotonic() >= deadline:
                                # The run ended before the extra attempt
                                # could start: a give-up, not a retry.
                                stats.record_giveup(program, clock(), attempts)
                                if obs is not None:
                                    obs.driver_giveup(program)
                                break
                            if delay > 0:
                                time.sleep(delay)
                                if time.monotonic() >= deadline:
                                    stats.record_giveup(program, clock(), attempts)
                                    if obs is not None:
                                        obs.driver_giveup(program)
                                    break
                            stats.record_retry(program, clock())
                            if obs is not None:
                                obs.driver_retry(program)
                    finally:
                        session.close()

        failures: dict[int, BaseException] = {}
        failures_lock = threading.Lock()

        def guarded(client_id: int) -> None:
            try:
                worker(client_id)
            except BaseException as exc:  # noqa: BLE001 - reported after join
                with failures_lock:
                    failures[client_id] = exc

        threads = {
            client_id: threading.Thread(
                target=guarded, args=(client_id,), daemon=True
            )
            for client_id in range(config.mpl)
        }
        for thread in threads.values():
            thread.start()
        join_deadline = (
            epoch + config.ramp_up + config.duration + config.join_grace
        )
        for thread in threads.values():
            thread.join(timeout=max(0.0, join_deadline - time.monotonic()))
        stuck = tuple(
            client_id
            for client_id, thread in threads.items()
            if thread.is_alive()
        )
        if obs is not None and self.db is not None:
            self.db.observe_version_stats()
        if failures or stuck:
            raise ThreadedDriverError(failures, stuck)
        return stats
