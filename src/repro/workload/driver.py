"""The threaded (real-concurrency, wall-clock) closed-system driver.

The performance figures come from the simulator (:mod:`repro.sim`), where
time is modelled; this driver runs the same mix on real OS threads and is
used for correctness under genuine concurrency (combine with
:class:`~repro.analysis.SerializabilityChecker`) and for quick smoke
benchmarks of the engine itself.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass

from repro.engine.engine import Database
from repro.engine.session import Session
from repro.errors import ApplicationRollback, TransactionAborted
from repro.smallbank.transactions import SmallBankTransactions
from repro.workload.mix import HotspotConfig, ParameterGenerator, get_mix
from repro.workload.stats import RunStats


@dataclass(frozen=True)
class ThreadedDriverConfig:
    mpl: int = 4
    customers: int = 100
    hotspot: int = 10
    hotspot_probability: float = 0.9
    mix: str = "uniform"
    duration: float = 1.0
    ramp_up: float = 0.0
    seed: int = 1


class ThreadedDriver:
    """Closed system of ``mpl`` real threads, no think time."""

    def __init__(
        self,
        db: Database,
        transactions: SmallBankTransactions,
        config: ThreadedDriverConfig,
    ) -> None:
        self.db = db
        self.transactions = transactions
        self.config = config

    def run(self) -> RunStats:
        config = self.config
        stats = RunStats(
            window_start=config.ramp_up,
            window_end=config.ramp_up + config.duration,
        )
        mix = get_mix(config.mix)
        hotspot = HotspotConfig(
            customers=config.customers,
            hotspot=config.hotspot,
            hotspot_probability=config.hotspot_probability,
        )
        epoch = time.monotonic()
        deadline = epoch + config.ramp_up + config.duration

        def clock() -> float:
            return time.monotonic() - epoch

        def worker(client_id: int) -> None:
            rng = random.Random(f"{config.seed}/{client_id}")
            generator = ParameterGenerator(hotspot, rng)
            while time.monotonic() < deadline:
                program = mix.choose(rng)
                args = generator.args_for(program)
                session = Session(self.db)
                started = clock()
                try:
                    self.transactions.run(session, program, args)
                    stats.record_commit(program, clock() - started, clock())
                except ApplicationRollback:
                    stats.record_rollback(program, clock())
                except TransactionAborted as exc:
                    session.rollback()
                    stats.record_abort(program, exc.reason, clock())

        threads = [
            threading.Thread(target=worker, args=(client_id,), daemon=True)
            for client_id in range(config.mpl)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=config.ramp_up + config.duration + 60)
        return stats
