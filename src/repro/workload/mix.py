"""Transaction mixes and parameter generation (paper Section IV).

The test driver "runs the five possible transactions", mostly with a
uniform random distribution, plus a 60 %-Balance mix for the high
contention experiment.  Parameters follow the paper's skew: "a fixed
portion of the table is a hotspot, and 90 % of all transactions deal with
a customer which is chosen uniformly in the hotspot"; the rest access
uniformly outside it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping

from repro.smallbank.programs import (
    AMALGAMATE,
    BALANCE,
    DEPOSIT_CHECKING,
    PROGRAM_NAMES,
    TRANSACT_SAVING,
    WRITE_CHECK,
)
from repro.smallbank.schema import customer_name


@dataclass(frozen=True)
class TransactionMix:
    """Relative weights of the five programs."""

    name: str
    weights: Mapping[str, float]

    def __post_init__(self) -> None:
        unknown = set(self.weights) - set(PROGRAM_NAMES)
        if unknown:
            raise ValueError(f"unknown programs in mix: {sorted(unknown)}")
        if not self.weights or min(self.weights.values()) < 0:
            raise ValueError("mix weights must be non-negative and non-empty")

    def choose(self, rng: random.Random) -> str:
        programs = list(self.weights)
        weights = [self.weights[p] for p in programs]
        return rng.choices(programs, weights=weights, k=1)[0]


UNIFORM_MIX = TransactionMix(
    "uniform", {program: 0.2 for program in PROGRAM_NAMES}
)

#: The high-contention experiment's mix: "60% of transactions are Balance".
BALANCE60_MIX = TransactionMix(
    "balance60",
    {
        BALANCE: 0.6,
        DEPOSIT_CHECKING: 0.1,
        TRANSACT_SAVING: 0.1,
        AMALGAMATE: 0.1,
        WRITE_CHECK: 0.1,
    },
)

#: Pure read-only mix (100% Balance): isolates the engine's SI read path,
#: used by the scaling benchmark to measure lock-free read throughput.
READONLY_MIX = TransactionMix("readonly", {BALANCE: 1.0})

MIXES = {mix.name: mix for mix in (UNIFORM_MIX, BALANCE60_MIX, READONLY_MIX)}


def get_mix(name: str) -> TransactionMix:
    try:
        return MIXES[name]
    except KeyError:
        known = ", ".join(sorted(MIXES))
        raise KeyError(f"unknown mix {name!r}; known: {known}") from None


def customer_ids_in_args(args: Mapping[str, object]) -> tuple[int, ...]:
    """The customer ids one program invocation's parameters name.

    Inverts :func:`~repro.smallbank.schema.customer_name` on the
    ``N`` / ``N1`` / ``N2`` parameters, in that order.  The cluster
    tests use this to check shard affinity: the shards a generated
    invocation *can* touch are exactly the shards of these ids.
    """
    ids = []
    for key in ("N", "N1", "N2"):
        value = args.get(key)
        if isinstance(value, str) and value.startswith("cust"):
            ids.append(int(value[4:]))
    return tuple(ids)


@dataclass(frozen=True)
class HotspotConfig:
    """Access-skew parameters."""

    customers: int
    hotspot: int
    hotspot_probability: float = 0.9

    def __post_init__(self) -> None:
        if not 0 < self.hotspot <= self.customers:
            raise ValueError("hotspot must be within 1..customers")
        if not 0.0 <= self.hotspot_probability <= 1.0:
            raise ValueError("hotspot probability must be in [0, 1]")


class ParameterGenerator:
    """Random customers (hotspot-skewed) and amounts for each program.

    Amount ranges are chosen so that business-rule rollbacks (overdrawn
    savings, penalties) stay rare against the default population balances,
    as in the paper's workload.
    """

    def __init__(self, config: HotspotConfig, rng: random.Random) -> None:
        self.config = config
        self.rng = rng

    def pick_customer(self) -> int:
        cfg = self.config
        in_hotspot = (
            cfg.hotspot >= cfg.customers
            or self.rng.random() < cfg.hotspot_probability
        )
        if in_hotspot:
            return self.rng.randint(1, cfg.hotspot)
        return self.rng.randint(cfg.hotspot + 1, cfg.customers)

    def pick_two_customers(self) -> tuple[int, int]:
        """Two *distinct* customers for Amalgamate.

        The rejection loop needs at least two reachable customers or it
        would spin forever: with ``customers == 1`` every draw returns
        customer 1, and with ``hotspot_probability == 1.0`` and a
        one-customer hotspot every draw returns the hotspot customer.
        Both configurations are rejected up front.
        """
        cfg = self.config
        if cfg.customers < 2:
            raise ValueError(
                "pick_two_customers needs at least 2 customers "
                f"(got {cfg.customers}); Amalgamate requires two distinct "
                "accounts"
            )
        if cfg.hotspot < 2 and cfg.hotspot_probability >= 1.0:
            raise ValueError(
                "pick_two_customers cannot draw two distinct customers: "
                f"hotspot_probability=1.0 confines every draw to the "
                f"{cfg.hotspot}-customer hotspot"
            )
        first = self.pick_customer()
        second = self.pick_customer()
        while second == first:
            second = self.pick_customer()
        return first, second

    def args_for(self, program: str) -> dict[str, object]:
        rng = self.rng
        if program == BALANCE:
            return {"N": customer_name(self.pick_customer())}
        if program == DEPOSIT_CHECKING:
            return {
                "N": customer_name(self.pick_customer()),
                "V": round(rng.uniform(1.0, 100.0), 2),
            }
        if program == TRANSACT_SAVING:
            return {
                "N": customer_name(self.pick_customer()),
                "V": round(rng.uniform(-50.0, 100.0), 2),
            }
        if program == AMALGAMATE:
            first, second = self.pick_two_customers()
            return {"N1": customer_name(first), "N2": customer_name(second)}
        if program == WRITE_CHECK:
            return {
                "N": customer_name(self.pick_customer()),
                "V": round(rng.uniform(1.0, 50.0), 2),
            }
        raise ValueError(f"unknown program {program!r}")
