"""The unified retry/timeout policy shared by every closed-loop driver.

The paper's driver protocol is "when a transaction aborts, the client
immediately starts a new transaction" — an unbounded, zero-backoff retry
loop.  :class:`RetryPolicy` generalizes that into an explicit, shared
policy object:

* **per-error-class retryability** — concurrency aborts
  (:class:`~repro.errors.SerializationFailure` including SSI,
  :class:`~repro.errors.DeadlockError`, :class:`~repro.errors.LockTimeout`,
  injected :class:`~repro.errors.FaultInjected` aborts) are retryable;
  business outcomes (:class:`~repro.errors.ApplicationRollback`) and
  constraint violations (:class:`~repro.errors.IntegrityError`) are not —
  retrying them would repeat the same deterministic failure;
* **bounded attempts** — ``max_attempts`` caps how often one logical
  request is retried before the driver *gives up* (recorded separately in
  :class:`~repro.workload.stats.RunStats`);
* **exponential backoff with jitter** — ``base_backoff`` doubles (by
  ``multiplier``) per failed attempt; ``jitter`` multiplies the delay by a
  uniform factor in ``[1, 1 + jitter]`` so synchronized retry storms
  decorrelate (multiplicative jitter, not AWS-style "full jitter"), and
  the result is clamped to ``max_backoff`` *after* jitter is applied, so
  ``max_backoff`` is a hard ceiling on every sleep.

The seed protocol — :meth:`RetryPolicy.paper_default` — is ``max_attempts=1``
with no backoff: each abort surfaces immediately and the closed-loop client
moves on to a fresh transaction, which reproduces the paper's figures
bit-for-bit.  Both the threaded driver and the simulated client consume
this module; only the ``sleep`` function differs (wall clock vs simulated
time).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import (
    ApplicationRollback,
    DeadlockError,
    FaultInjected,
    IntegrityError,
    LockTimeout,
    SerializationFailure,
)

#: Default error-class split.  ``SerializationFailure`` covers ``SsiAbort``.
DEFAULT_RETRYABLE: tuple[type, ...] = (
    SerializationFailure,
    DeadlockError,
    LockTimeout,
    FaultInjected,
)
DEFAULT_NON_RETRYABLE: tuple[type, ...] = (ApplicationRollback, IntegrityError)


@dataclass(frozen=True)
class RetryPolicy:
    """How a driver retries one logical request after an abort.

    ``max_attempts`` counts the first try: ``1`` means never retry in
    place (the paper's protocol), ``4`` means up to three retries.
    """

    max_attempts: int = 1
    base_backoff: float = 0.0
    multiplier: float = 2.0
    max_backoff: float = 0.1
    jitter: float = 0.0
    retryable: tuple[type, ...] = field(default=DEFAULT_RETRYABLE)
    non_retryable: tuple[type, ...] = field(default=DEFAULT_NON_RETRYABLE)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoff durations must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    # ------------------------------------------------------------------
    @classmethod
    def paper_default(cls) -> "RetryPolicy":
        """The seed protocol: every abort surfaces, client starts afresh."""
        return cls(max_attempts=1)

    @classmethod
    def exponential(
        cls,
        max_attempts: int = 4,
        base_backoff: float = 0.001,
        max_backoff: float = 0.1,
        jitter: float = 0.5,
    ) -> "RetryPolicy":
        """A production-style safe-retry policy (cf. PostgreSQL SSI docs)."""
        return cls(
            max_attempts=max_attempts,
            base_backoff=base_backoff,
            max_backoff=max_backoff,
            jitter=jitter,
        )

    # ------------------------------------------------------------------
    def is_retryable(self, error: BaseException) -> bool:
        """Whether the error class permits retrying as a new transaction.

        The non-retryable list wins on overlap, so subclass surprises
        (e.g. a business error derived from an engine error) fail safe.
        """
        if isinstance(error, self.non_retryable):
            return False
        return isinstance(error, self.retryable)

    def should_retry(self, error: BaseException, attempt: int) -> bool:
        """Whether attempt number ``attempt`` (1-based) may be followed by
        another, given that it failed with ``error``."""
        return attempt < self.max_attempts and self.is_retryable(error)

    def backoff(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Delay (seconds) before the attempt after ``attempt`` failures.

        Deterministic when ``jitter`` is zero or no ``rng`` is supplied;
        never draws from ``rng`` unless jitter actually applies, so
        installing a zero-backoff policy perturbs no random stream.

        The clamp to ``max_backoff`` happens *after* jitter so the
        configured ceiling is a hard bound on the returned delay (clamping
        first would let jitter inflate a delay up to
        ``max_backoff * (1 + jitter)``).
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        if self.base_backoff <= 0:
            return 0.0
        delay = self.base_backoff * self.multiplier ** (attempt - 1)
        if self.jitter > 0 and rng is not None:
            delay *= 1.0 + self.jitter * rng.random()
        return min(delay, self.max_backoff)
