"""Workload measurement: per-run counters and cross-run aggregation.

Mirrors the paper's protocol: a ramp-up period followed by a measurement
interval; each (simulated or real) client thread "tracks how many
transactions commit, how many abort (and for what reasons), and also the
average response time"; runs are repeated and reported as the average with
a 95 % confidence interval.
"""

from __future__ import annotations

import math
import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Optional

try:  # scipy is available in the benchmark environment; keep it optional.
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover - exercised only without scipy
    _scipy_stats = None

#: Two-sided 95% Student-t critical values by degrees of freedom (fallback
#: when scipy is unavailable).
_T_TABLE = {1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
            6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228}


def t_critical(dof: int, confidence: float = 0.95) -> float:
    if dof <= 0:
        return float("inf")
    if _scipy_stats is not None:
        return float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, dof))
    return _T_TABLE.get(dof, 1.96)


def mean_and_ci(values: Iterable[float], confidence: float = 0.95) -> tuple[float, float]:
    """Sample mean and half-width of the confidence interval."""
    data = list(values)
    if not data:
        return 0.0, 0.0
    mean = sum(data) / len(data)
    if len(data) == 1:
        return mean, 0.0
    variance = sum((x - mean) ** 2 for x in data) / (len(data) - 1)
    half_width = t_critical(len(data) - 1, confidence) * math.sqrt(
        variance / len(data)
    )
    return mean, half_width


#: Abort reasons counted as "serialization-failure style" by
#: :meth:`RunStats.abort_rate` (the paper's Figure 6 metric, extended with
#: the lock-wait timeout introduced by the robustness layer).
CONCURRENCY_ABORT_REASONS = ("serialization", "deadlock", "ssi", "lock-timeout")


@dataclass
class RunStats:
    """Counters for one run's measurement window.

    Beyond the paper's commit/abort/rollback protocol, the retry layer
    records how hard each commit was to achieve: ``retries`` counts
    in-place retries per program, ``attempts_histogram`` buckets commits by
    the number of attempts they needed, and ``giveups`` counts requests
    abandoned after the :class:`~repro.workload.retry.RetryPolicy`
    exhausted its attempts (or hit a non-retryable error).

    The ``record_*`` methods are thread-safe: the threaded driver's client
    threads all write into one shared instance, and Counter increments are
    read-modify-write operations that would lose updates without the lock.
    Read accessors are left unlocked — they are only meaningful after the
    run's threads have joined.
    """

    window_start: float
    window_end: float
    commits: Counter = field(default_factory=Counter)
    aborts: Counter = field(default_factory=Counter)  # (program, reason)
    rollbacks: Counter = field(default_factory=Counter)
    response_time_sum: float = 0.0
    response_time_count: int = 0
    retries: Counter = field(default_factory=Counter)  # program -> retry count
    attempts_histogram: Counter = field(default_factory=Counter)  # attempts -> commits
    giveups: Counter = field(default_factory=Counter)  # program -> abandoned requests
    #: attempts -> abandoned requests that had made that many attempts;
    #: together with ``attempts_histogram`` this makes retry accounting
    #: exactly reconcilable: ``total_retries == accounted_retries``.
    giveup_attempts_histogram: Counter = field(default_factory=Counter)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    def in_window(self, at: float) -> bool:
        return self.window_start <= at < self.window_end

    def record_commit(
        self, program: str, response_time: float, at: float, attempts: int = 1
    ) -> None:
        if self.in_window(at):
            with self._lock:
                self.commits[program] += 1
                self.response_time_sum += response_time
                self.response_time_count += 1
                self.attempts_histogram[attempts] += 1

    def record_abort(self, program: str, reason: str, at: float) -> None:
        if self.in_window(at):
            with self._lock:
                self.aborts[(program, reason)] += 1

    def record_rollback(self, program: str, at: float) -> None:
        if self.in_window(at):
            with self._lock:
                self.rollbacks[program] += 1

    def record_retry(self, program: str, at: float) -> None:
        if self.in_window(at):
            with self._lock:
                self.retries[program] += 1

    def record_giveup(self, program: str, at: float, attempts: int = 1) -> None:
        if self.in_window(at):
            with self._lock:
                self.giveups[program] += 1
                self.giveup_attempts_histogram[attempts] += 1

    # ------------------------------------------------------------------
    @property
    def duration(self) -> float:
        return self.window_end - self.window_start

    @property
    def total_commits(self) -> int:
        return sum(self.commits.values())

    @property
    def tps(self) -> float:
        return self.total_commits / self.duration if self.duration > 0 else 0.0

    @property
    def mean_response_time(self) -> float:
        if self.response_time_count == 0:
            return 0.0
        return self.response_time_sum / self.response_time_count

    def abort_count(self, program: Optional[str] = None) -> int:
        return sum(
            count
            for (prog, _reason), count in self.aborts.items()
            if program is None or prog == program
        )

    def abort_rate(self, program: Optional[str] = None) -> float:
        """Serialization-failure style aborts as a fraction of attempts.

        Attempts = commits + aborts of the program (business rollbacks are
        intentional and excluded, matching the paper's Figure 6 metric of
        "aborts due to a serialization failure error").
        """
        aborts = sum(
            count
            for (prog, reason), count in self.aborts.items()
            if (program is None or prog == program)
            and reason in CONCURRENCY_ABORT_REASONS
        )
        commits = (
            self.total_commits if program is None else self.commits[program]
        )
        attempts = commits + aborts
        return aborts / attempts if attempts else 0.0

    def abort_breakdown(self, program: Optional[str] = None) -> dict[str, int]:
        """Abort counts keyed by reason tag (``serialization``, ``deadlock``,
        ``ssi``, ``lock-timeout``, ``fault``, ...)."""
        breakdown: dict[str, int] = {}
        for (prog, reason), count in self.aborts.items():
            if program is None or prog == program:
                breakdown[reason] = breakdown.get(reason, 0) + count
        return breakdown

    @property
    def total_retries(self) -> int:
        return sum(self.retries.values())

    @property
    def total_giveups(self) -> int:
        return sum(self.giveups.values())

    def mean_attempts_per_commit(self) -> float:
        """Average number of attempts each committed request needed."""
        commits = sum(self.attempts_histogram.values())
        if commits == 0:
            return 0.0
        total = sum(n * count for n, count in self.attempts_histogram.items())
        return total / commits

    @property
    def accounted_retries(self) -> int:
        """Retries implied by the attempt histograms.

        A request that needed ``n`` attempts performed ``n - 1`` retries,
        whether it eventually committed (``attempts_histogram``) or was
        abandoned (``giveup_attempts_histogram``).  The driver records a
        retry only when the extra attempt actually starts, so within one
        measurement window ``total_retries == accounted_retries`` — the
        invariant the retry-accounting tests assert.
        """
        return sum(
            (attempts - 1) * count
            for histogram in (self.attempts_histogram, self.giveup_attempts_histogram)
            for attempts, count in histogram.items()
        )


@dataclass
class AggregateResult:
    """Mean ± 95 % CI over repeated runs of one configuration.

    Derived statistics are computed once per metric and memoised — the
    figure renderers read ``tps``/``tps_ci`` repeatedly per cell, and each
    used to recompute :func:`mean_and_ci` over every run on every access.
    ``runs`` is treated as final once the first statistic is read.
    """

    runs: list[RunStats]

    def _stat(self, key, values) -> tuple[float, float]:
        cache = self.__dict__.setdefault("_stat_cache", {})
        if key not in cache:
            cache[key] = mean_and_ci(values())
        return cache[key]

    @property
    def tps(self) -> float:
        return self._stat("tps", lambda: [r.tps for r in self.runs])[0]

    @property
    def tps_ci(self) -> float:
        return self._stat("tps", lambda: [r.tps for r in self.runs])[1]

    @property
    def mean_response_time(self) -> float:
        return self._stat(
            "response_time", lambda: [r.mean_response_time for r in self.runs]
        )[0]

    def abort_rate(self, program: Optional[str] = None) -> float:
        return self._stat(
            ("abort_rate", program),
            lambda: [r.abort_rate(program) for r in self.runs],
        )[0]

    def commits_of(self, program: str) -> float:
        return self._stat(
            ("commits", program),
            lambda: [float(r.commits[program]) for r in self.runs],
        )[0]

    def describe(self) -> str:
        return (
            f"{self.tps:8.1f} ±{self.tps_ci:6.1f} TPS  "
            f"(rt {self.mean_response_time * 1000:6.2f} ms, "
            f"abort {self.abort_rate() * 100:5.2f}%)"
        )
