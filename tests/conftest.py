"""Shared fixtures: a miniature two-table bank database.

The tests that exercise raw engine semantics use this small schema directly;
SmallBank-specific tests build the real benchmark schema from
:mod:`repro.smallbank`.
"""

from __future__ import annotations

import pytest

from repro.engine import Column, Database, EngineConfig, TableSchema


def bank_schemas() -> list[TableSchema]:
    return [
        TableSchema(
            name="Saving",
            columns=(Column("CustomerId", "int"), Column("Balance", "numeric")),
            primary_key="CustomerId",
        ),
        TableSchema(
            name="Checking",
            columns=(Column("CustomerId", "int"), Column("Balance", "numeric")),
            primary_key="CustomerId",
        ),
        TableSchema(
            name="Account",
            columns=(Column("Name", "text"), Column("CustomerId", "int")),
            primary_key="Name",
            unique=("CustomerId",),
        ),
    ]


def make_bank_db(config: EngineConfig | None = None, customers: int = 3) -> Database:
    db = Database(bank_schemas(), config)
    for cid in range(1, customers + 1):
        db.load_row("Account", {"Name": f"cust{cid}", "CustomerId": cid})
        db.load_row("Saving", {"CustomerId": cid, "Balance": 100.0})
        db.load_row("Checking", {"CustomerId": cid, "Balance": 50.0})
    return db


@pytest.fixture
def db() -> Database:
    """A PostgreSQL-style SI database with three customers."""
    return make_bank_db()


@pytest.fixture
def commercial_db() -> Database:
    """Commercial-platform SI (SFU acts as a concurrency-control write)."""
    return make_bank_db(EngineConfig.commercial())


@pytest.fixture
def s2pl_db() -> Database:
    return make_bank_db(EngineConfig.s2pl())


@pytest.fixture
def ssi_db() -> Database:
    return make_bank_db(EngineConfig.ssi())
