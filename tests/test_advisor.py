"""Tests for the performance advisor (the paper's future-work tool)."""

from __future__ import annotations

import pytest

from repro.core import ProgramSet, ProgramSpec, build_sdg, read, write
from repro.core.advisor import (
    predict,
    profile_smallbank_strategy,
    recommend,
    suggest_edges,
)
from repro.sim.platform import commercial_platform, postgres_platform
from repro.workload.mix import BALANCE60_MIX, UNIFORM_MIX


class TestProfiles:
    def test_base_balance_is_read_only(self):
        profiles = profile_smallbank_strategy("base-si")
        balance = profiles["Balance"]
        assert not balance.writes_data and not balance.uses_sfu
        assert sum(balance.statement_counts.values()) == 3

    def test_promote_bw_balance_writes(self):
        profiles = profile_smallbank_strategy("promote-bw-upd")
        balance = profiles["Balance"]
        assert balance.writes_data
        assert balance.statement_counts["identity-update"] == 1

    def test_sfu_profile_flags(self):
        profiles = profile_smallbank_strategy("promote-bw-sfu")
        balance = profiles["Balance"]
        assert balance.uses_sfu and not balance.writes_data
        # Lock-only platforms: no flush; commercial: flush.
        assert not balance.needs_flush(postgres_platform())
        assert balance.needs_flush(commercial_platform())

    def test_materialize_all_touches_every_program(self):
        profiles = profile_smallbank_strategy("materialize-all")
        for program, profile in profiles.items():
            expected = 2 if program == "Amalgamate" else 1
            assert profile.statement_counts["materialize-update"] == expected


class TestPredictions:
    def test_flush_fraction_tracks_table_one(self):
        platform = postgres_platform()
        base = predict("base-si", platform, UNIFORM_MIX)
        wt = predict("promote-wt-upd", platform, UNIFORM_MIX)
        bw = predict("promote-bw-upd", platform, UNIFORM_MIX)
        assert base.flush_fraction == pytest.approx(0.8)
        assert wt.flush_fraction == pytest.approx(0.8)
        assert bw.flush_fraction == pytest.approx(1.0)

    def test_predictions_reproduce_postgres_ordering(self):
        """The advisor's plateau ranking matches Figure 4/5's ordering."""
        platform = postgres_platform()
        plateau = {
            key: predict(key, platform, UNIFORM_MIX).plateau_tps
            for key in (
                "base-si",
                "promote-wt-upd",
                "materialize-wt",
                "materialize-all",
                "promote-all",
            )
        }
        assert plateau["base-si"] >= plateau["promote-wt-upd"]
        assert plateau["promote-wt-upd"] > plateau["materialize-wt"]
        assert plateau["promote-all"] > plateau["materialize-all"]
        assert plateau["materialize-all"] < 0.8 * plateau["base-si"]

    def test_prediction_matches_simulation_within_tolerance(self):
        """Plateau prediction vs simulated MPL-25 throughput (PostgreSQL,
        modest hotspot so contention noise stays small)."""
        from repro.sim import SimulationConfig, run_once

        platform = postgres_platform()
        for key in ("base-si", "materialize-all"):
            predicted = predict(key, platform, UNIFORM_MIX).plateau_tps
            simulated = run_once(
                SimulationConfig(
                    strategy=key, mpl=25, measure=1.5, ramp_up=0.2
                )
            ).tps
            # Simulation includes contention/aborts the analytic model
            # ignores; require agreement within 20%.
            assert simulated == pytest.approx(predicted, rel=0.20), key

    def test_mpl1_prediction_shows_bw_penalty(self):
        platform = postgres_platform()
        base = predict("base-si", platform, UNIFORM_MIX)
        bw = predict("materialize-bw", platform, UNIFORM_MIX)
        assert bw.mpl1_tps / base.mpl1_tps == pytest.approx(0.82, abs=0.06)

    def test_describe(self):
        text = predict(
            "base-si", postgres_platform(), UNIFORM_MIX
        ).describe()
        assert "plateau" in text and "flush fraction" in text


class TestRecommendations:
    def test_postgres_uniform_recommends_promote_wt(self):
        recommendation = recommend(postgres_platform(), UNIFORM_MIX)
        assert recommendation.best.strategy_key == "promote-wt-upd"
        assert "recommended strategy" in recommendation.describe()

    def test_postgres_excludes_sfu_strategies(self):
        recommendation = recommend(
            postgres_platform(),
            UNIFORM_MIX,
            candidates=("promote-wt-sfu", "promote-wt-upd"),
        )
        keys = {p.strategy_key for p in recommendation.ranked}
        assert "promote-wt-sfu" not in keys

    def test_commercial_recommends_a_wt_option(self):
        recommendation = recommend(commercial_platform(), UNIFORM_MIX)
        assert recommendation.best.strategy_key in (
            "promote-wt-sfu",
            "materialize-wt",
        )

    def test_balance_heavy_mix_still_prefers_wt(self):
        """Guideline 3: don't touch the transaction type you care about —
        with 60% Balance the WT options dominate even more clearly."""
        recommendation = recommend(postgres_platform(), BALANCE60_MIX)
        assert recommendation.best.strategy_key.endswith("-wt-upd") or (
            recommendation.best.strategy_key == "materialize-wt"
        )


class TestSuggestEdges:
    def chain_mix(self) -> ProgramSet:
        return ProgramSet(
            [
                ProgramSpec("Report", ("x",), (read("A", "x", "v"),
                                               read("B", "x", "v"))),
                ProgramSpec(
                    "Pivot",
                    ("x",),
                    (read("A", "x", "v"), write("A", "x", "v"),
                     read("B", "x", "v")),
                ),
                ProgramSpec(
                    "Leaf",
                    ("x",),
                    (read("B", "x", "v"), write("B", "x", "v")),
                ),
            ]
        )

    def test_respects_guideline_two(self):
        """Prefer a fix that leaves read-only programs untouched."""
        plan = suggest_edges(self.chain_mix(), method="promote-upd")
        assert build_sdg(plan.programs).is_si_serializable()
        assert all(m.program != "Report" for m in plan.modifications)

    def test_safe_mix_needs_nothing(self):
        safe = ProgramSet(
            [ProgramSpec("Only", ("x",),
                         (read("A", "x", "v"), write("A", "x", "v")))]
        )
        plan = suggest_edges(safe)
        assert plan.edges == ()

    def test_falls_back_when_guideline_impossible(self):
        """If only read-only programs can be fixed, still return a plan."""
        mix = ProgramSet(
            [
                ProgramSpec("R", ("x",), (read("A", "x", "v"),
                                          read("B", "x", "v"))),
                ProgramSpec("W1", ("x",), (read("B", "x", "v"),
                                           write("A", "x", "v"))),
                ProgramSpec("W2", ("x",), (read("A", "x", "v"),
                                           write("B", "x", "v"))),
            ]
        )
        plan = suggest_edges(mix, method="materialize")
        assert build_sdg(plan.programs).is_si_serializable()
