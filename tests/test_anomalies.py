"""End-to-end anomaly reproduction and elimination on the live engine.

The centrepiece: the read-only-transaction anomaly of Fekete, O'Neil &
O'Neil (reference [19] of the paper) — the exact scenario SmallBank was
contrived around — reproduced against plain SI via a deterministic
interleaving, then shown to be impossible under every fixing strategy.
"""

from __future__ import annotations

import pytest

from repro.analysis import SerializabilityChecker
from repro.engine import Database, EngineConfig, Session
from repro.engine.session import NoWaitWaiter, WouldBlock
from repro.errors import SerializationFailure, TransactionAborted
from repro.smallbank import (
    PopulationConfig,
    build_database,
    customer_name,
    get_strategy,
)

CUSTOMER = 1
NAME = customer_name(CUSTOMER)


def anomaly_db(config: EngineConfig | None = None) -> Database:
    """Customer with zero balances, as in the SIGMOD Record 2004 example."""
    population = PopulationConfig(
        customers=2,
        min_saving=0.0,
        max_saving=0.0,
        min_checking=0.0,
        max_checking=0.0,
    )
    return build_database(config or EngineConfig.postgres(), population)


def drive_anomaly_interleaving(db: Database, txns) -> dict[str, object]:
    """The anomaly interleaving, statement by statement.

    H: begin(WC) ... begin(TS) deposit(TS) commit(TS) begin(Bal) read(Bal)
       commit(Bal) ... WC decides on its old snapshot, commit(WC).

    Sessions use NoWaitWaiter so any blocking introduced by a strategy
    surfaces as WouldBlock instead of hanging the test.
    """
    wc_session = Session(db, waiter=NoWaitWaiter())
    ts_session = Session(db, waiter=NoWaitWaiter())
    bal_session = Session(db, waiter=NoWaitWaiter())

    outcome: dict[str, object] = {"wc": None, "ts": None, "bal": None}

    # WC takes its snapshot first (sees savings=0, checking=0)...
    wc_session.begin("WriteCheck")
    # ...but executes after TS commits a $20 deposit.
    ts_session.begin("TransactSaving")
    txns.transact_saving(ts_session, {"N": NAME, "V": 20.0})
    ts_session.commit()
    outcome["ts"] = "committed"

    # Balance runs entirely after TS committed: it sees total = 20 and
    # infers no penalty can be charged for a $10 check.
    bal_session.begin("Balance")
    outcome["bal"] = txns.balance(bal_session, {"N": NAME})
    bal_session.commit()

    # WC writes a $10 check on its old snapshot (total = 0 -> penalty).
    try:
        penalized = txns.write_check(wc_session, {"N": NAME, "V": 10.0})
        wc_session.commit()
        outcome["wc"] = "penalized" if penalized else "committed"
    except (TransactionAborted, WouldBlock) as exc:
        wc_session.rollback()
        outcome["wc"] = type(exc).__name__
    return outcome


class TestReadOnlyAnomalyUnderSI:
    def test_anomaly_reproduces_exactly_as_in_the_paper(self):
        db = anomaly_db()
        checker = SerializabilityChecker(db)
        txns = get_strategy("base-si").transactions()
        outcome = drive_anomaly_interleaving(db, txns)
        # Bal saw the deposit (total 20), yet the final state shows the
        # overdraft penalty -- no serial order explains both.
        assert outcome["bal"] == 20.0
        assert outcome["wc"] == "penalized"
        report = checker.report()
        assert not report.serializable
        assert "read-only-transaction-anomaly" in report.anomalies
        assert "dangerous-structure" in report.anomalies

    def test_without_balance_si_history_is_serializable(self):
        """WC + TS alone are serializable (the anomaly needs the reader)."""
        db = anomaly_db()
        checker = SerializabilityChecker(db)
        txns = get_strategy("base-si").transactions()
        wc_session = Session(db, waiter=NoWaitWaiter())
        ts_session = Session(db, waiter=NoWaitWaiter())
        wc_session.begin("WriteCheck")
        ts_session.begin("TransactSaving")
        txns.transact_saving(ts_session, {"N": NAME, "V": 20.0})
        ts_session.commit()
        txns.write_check(wc_session, {"N": NAME, "V": 10.0})
        wc_session.commit()
        assert checker.report().serializable

    def test_final_state_shows_corruption(self):
        db = anomaly_db()
        txns = get_strategy("base-si").transactions()
        drive_anomaly_interleaving(db, txns)
        session = Session(db)
        session.begin()
        checking = session.select("Checking", CUSTOMER)["Balance"]
        session.commit()
        # Penalty charged: -11 even though the money was there.
        assert checking == -11.0


class TestStrategiesEliminateTheAnomaly:
    POSTGRES_FIXES = [
        "materialize-wt",
        "promote-wt-upd",
        "materialize-bw",
        "promote-bw-upd",
        "materialize-all",
        "promote-all",
    ]

    @pytest.mark.parametrize("key", POSTGRES_FIXES)
    def test_fix_on_postgres_engine(self, key):
        db = anomaly_db(EngineConfig.postgres())
        checker = SerializabilityChecker(db)
        txns = get_strategy(key).transactions()
        outcome = drive_anomaly_interleaving(db, txns)
        # The committed part of the history must be serializable; the
        # strategy forces WC to abort or block in this interleaving.
        assert outcome["wc"] in ("SerializationFailure", "WouldBlock"), outcome
        assert checker.report().serializable

    @pytest.mark.parametrize(
        "key", ["promote-wt-sfu", "promote-bw-sfu"] + POSTGRES_FIXES
    )
    def test_fix_on_commercial_engine(self, key):
        db = anomaly_db(EngineConfig.commercial())
        checker = SerializabilityChecker(db)
        txns = get_strategy(key).transactions()
        outcome = drive_anomaly_interleaving(db, txns)
        assert outcome["wc"] in ("SerializationFailure", "WouldBlock"), outcome
        assert checker.report().serializable

    def test_sfu_promotion_fails_to_fix_on_postgres(self):
        """Section II-C: PG's FOR UPDATE admits the vulnerable interleaving.

        With PromoteWT-sfu on a lock-only-SFU engine, WC's FOR UPDATE read
        of Saving happens *after* TS committed in this interleaving, so the
        snapshot check fails... drive the reverse order instead: WC reads
        first, commits, then TS writes — allowed on PG, still vulnerable.
        """
        db = anomaly_db(EngineConfig.postgres())
        txns = get_strategy("promote-wt-sfu").transactions()
        wc_session = Session(db, waiter=NoWaitWaiter())
        ts_session = Session(db, waiter=NoWaitWaiter())
        wc_session.begin("WriteCheck")
        ts_session.begin("TransactSaving")
        # WC executes fully (its sfu read locks Saving) and commits.
        txns.write_check(wc_session, {"N": NAME, "V": 10.0})
        wc_session.commit()
        # TS, concurrent with WC, may still write Saving afterwards on PG.
        txns.transact_saving(ts_session, {"N": NAME, "V": 20.0})
        ts_session.commit()

    def test_sfu_promotion_blocks_that_order_on_commercial(self):
        db = anomaly_db(EngineConfig.commercial())
        txns = get_strategy("promote-wt-sfu").transactions()
        wc_session = Session(db, waiter=NoWaitWaiter())
        ts_session = Session(db, waiter=NoWaitWaiter())
        wc_session.begin("WriteCheck")
        ts_session.begin("TransactSaving")
        txns.write_check(wc_session, {"N": NAME, "V": 10.0})
        wc_session.commit()
        with pytest.raises(SerializationFailure):
            txns.transact_saving(ts_session, {"N": NAME, "V": 20.0})


class TestEngineLevelFixes:
    """Extensions: SSI and S2PL engines fix the anomaly without program
    modifications (the paper's future-work direction)."""

    def test_ssi_engine_aborts_the_anomaly(self):
        db = anomaly_db(EngineConfig.ssi())
        checker = SerializabilityChecker(db)
        txns = get_strategy("base-si").transactions()
        outcome = drive_anomaly_interleaving(db, txns)
        assert outcome["wc"] in ("SsiAbort", "SerializationFailure"), outcome
        assert checker.report().serializable

    def test_s2pl_engine_blocks_the_anomaly(self):
        db = anomaly_db(EngineConfig.s2pl())
        checker = SerializabilityChecker(db)
        txns = get_strategy("base-si").transactions()
        outcome = drive_anomaly_interleaving(db, txns)
        # Under 2PL WriteCheck reads the *current* committed state (locks,
        # not snapshots): it sees the $20 deposit, charges no penalty, and
        # the whole history is simply serial TS, Bal, WC.
        assert outcome["wc"] == "committed"
        session = Session(db)
        session.begin()
        assert session.select("Checking", CUSTOMER)["Balance"] == -10.0
        session.commit()
        assert checker.report().serializable
