"""Facade parity suite: ``repro.connect`` local vs network backends.

One program of assertions runs against both ``local://`` and ``tcp://``
connections built from identically-seeded databases — the SmallBank
programs must produce bit-identical results either way, errors must
round-trip by class, and the wire-level commit shortcuts (deferred BEGIN,
pipelining, piggybacked and deferred-ack COMMITs) must stay invisible.
"""

import pytest

import repro
from repro.api import connect
from repro.engine import EngineConfig, Session
from repro.errors import (
    ApplicationRollback,
    SchemaError,
    SerializationFailure,
)
from repro.net import DatabaseServer
from repro.smallbank import (
    AMALGAMATE,
    BALANCE,
    DEPOSIT_CHECKING,
    TRANSACT_SAVING,
    WRITE_CHECK,
    PopulationConfig,
    build_database,
    customer_name,
    get_strategy,
)
from repro.sqlmini import PreparedStatement, parse_cache_stats

#: Fixed balances make both backends' results comparable as exact floats.
POPULATION = PopulationConfig(
    customers=10,
    min_saving=1_000.0,
    max_saving=1_000.0,
    min_checking=100.0,
    max_checking=100.0,
)


@pytest.fixture
def local_conn():
    conn = connect(
        "local://", database=build_database(EngineConfig.postgres(), POPULATION)
    )
    yield conn
    conn.close()


@pytest.fixture
def net_conn():
    db = build_database(EngineConfig.postgres(), POPULATION)
    server = DatabaseServer(db).start_in_thread()
    conn = connect(f"tcp://127.0.0.1:{server.port}")
    yield conn
    conn.close()
    server.shutdown()


@pytest.fixture(params=["local", "net"])
def conn(request, local_conn, net_conn):
    return local_conn if request.param == "local" else net_conn


def run_program(conn, program, args):
    txns = get_strategy("base-si").transactions()
    session = conn.session()
    try:
        return txns.run(session, program, args)
    finally:
        session.close()


class TestConnectValidation:
    def test_local_requires_a_database_or_schemas(self):
        with pytest.raises(ValueError):
            connect("local://")

    def test_local_rejects_database_plus_isolation(self):
        db = build_database(EngineConfig.postgres(), POPULATION)
        with pytest.raises(ValueError):
            connect("local://", database=db, isolation="ssi")

    def test_tcp_rejects_local_only_arguments(self):
        db = build_database(EngineConfig.postgres(), POPULATION)
        with pytest.raises(ValueError):
            connect("tcp://127.0.0.1:1", database=db)
        with pytest.raises(ValueError):
            connect("tcp://127.0.0.1:1", isolation="ssi")

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            connect("carrier-pigeon://coop")

    def test_direct_session_construction_is_deprecated(self):
        db = build_database(EngineConfig.postgres(), POPULATION)
        with pytest.warns(DeprecationWarning):
            Session(db)


class TestBackendParity:
    def test_all_five_programs_agree(self, local_conn, net_conn):
        """The same program sequence on identically-seeded databases
        produces identical results and identical final balances."""
        script = [
            (BALANCE, {"N": customer_name(1)}),
            (DEPOSIT_CHECKING, {"N": customer_name(1), "V": 25.0}),
            (TRANSACT_SAVING, {"N": customer_name(2), "V": -300.0}),
            (WRITE_CHECK, {"N": customer_name(3), "V": 1_050.0}),
            (AMALGAMATE, {"N1": customer_name(4), "N2": customer_name(5)}),
            (BALANCE, {"N": customer_name(1)}),
            (BALANCE, {"N": customer_name(5)}),
        ]
        results = {}
        for label, c in (("local", local_conn), ("net", net_conn)):
            results[label] = [
                run_program(c, program, args) for program, args in script
            ]
        assert results["local"] == results["net"]
        # Sanity on the actual values, not just agreement:
        assert results["local"][0] == pytest.approx(1_100.0)
        assert results["local"][5] == pytest.approx(1_125.0)  # after deposit
        assert results["local"][6] == pytest.approx(2_200.0)  # after amalgamate

    def test_application_rollback_parity(self, conn):
        with pytest.raises(ApplicationRollback):
            run_program(conn, DEPOSIT_CHECKING, {"N": customer_name(1), "V": -1.0})
        with pytest.raises(ApplicationRollback):
            run_program(conn, BALANCE, {"N": "nobody-by-that-name"})
        # The rollback left no transaction behind: the next program runs.
        assert run_program(
            conn, BALANCE, {"N": customer_name(1)}
        ) == pytest.approx(1_100.0)

    def test_transaction_context_commits_on_clean_exit(self, conn):
        with conn.transaction() as txn:
            row = txn.select_for_update("Checking", 1)
            txn.write("Checking", 1, {**row, "Balance": 77.0})
        with conn.transaction() as txn:
            assert txn.select("Checking", 1)["Balance"] == 77.0

    def test_transaction_context_rolls_back_on_exception(self, conn):
        with pytest.raises(RuntimeError):
            with conn.transaction() as txn:
                row = txn.select_for_update("Checking", 2)
                txn.write("Checking", 2, {**row, "Balance": -1.0})
                raise RuntimeError("abandon ship")
        with conn.transaction() as txn:
            assert txn.select("Checking", 2)["Balance"] == pytest.approx(100.0)

    def test_server_side_errors_round_trip_by_class(self, conn):
        session = conn.session()
        session.begin("bad")
        with pytest.raises(SchemaError):
            session.write("NoSuchTable", 1, {"Balance": 0.0})
        session.rollback()
        session.close()

    def test_first_updater_wins_round_trips(self, conn):
        """A genuinely engine-raised SerializationFailure (not a client
        check) must surface as the same class over both backends."""
        writer = conn.session()
        victim = conn.session()
        try:
            writer.begin("w1")
            victim.begin("w2")
            # Pin the victim's snapshot *now*: over the wire BEGIN is
            # deferred to the first statement, so without this read the
            # two transactions would not actually be concurrent.
            victim.select("Saving", 2)
            row = writer.select_for_update("Saving", 1)
            writer.write("Saving", 1, {**row, "Balance": 1.0})
            writer.commit()
            with pytest.raises(SerializationFailure):
                stale = victim.select_for_update("Saving", 1)
                victim.write("Saving", 1, {**(stale or {}), "Balance": 2.0})
                victim.commit()
        finally:
            writer.close()
            victim.close()

    def test_ping_and_stats(self, conn):
        assert conn.ping() is True
        stats = conn.stats()
        assert stats["backend"] in ("local", "network")


class TestWireCommitShortcuts:
    """White-box checks of the network session's round-trip elisions."""

    def test_empty_transaction_never_reaches_the_server(self, net_conn):
        session = net_conn.session()
        txn = session.begin("empty")
        session.commit()
        assert txn.txid is None  # deferred BEGIN never materialized
        assert session._wire._sendbuf == []
        assert session._wire._owed == 0
        session.close()

    def test_readonly_si_commit_is_deferred_and_acked_later(self, net_conn):
        session = net_conn.session()
        session.begin("ro")
        assert session.select("Saving", 1) is not None
        session.commit()
        wire = session._wire
        assert wire._owed == 1  # COMMIT queued, ack owed
        assert len(wire._sendbuf) == 1  # ... and not yet flushed
        session.close()  # pools the wire, commit frame still queued
        # The next session on the same wire silently absorbs the ack.
        session2 = net_conn.session()
        assert session2._wire is wire
        session2.begin("next")
        assert session2.select("Saving", 2) is not None
        assert wire._owed == 0
        session2.commit()
        session2.close()

    def test_locking_transaction_commits_synchronously(self, net_conn):
        session = net_conn.session()
        session.begin("rw")
        row = session.select_for_update("Saving", 1)
        session.write("Saving", 1, {**row, "Balance": 123.0})
        session.commit()
        assert session._wire._owed == 0  # no deferral once a lock was taken
        session.close()

    def test_s2pl_gates_off_the_deferred_commit(self):
        """Under S2PL a read-only COMMIT releases read locks peers may be
        queued on — the client must wait for the ack."""
        db = build_database(EngineConfig.s2pl(), POPULATION)
        server = DatabaseServer(db).start_in_thread()
        try:
            conn = connect(f"tcp://127.0.0.1:{server.port}")
            assert conn._isolation is None  # handshake happens on first dial
            session = conn.session()
            assert conn._isolation == "s2pl"
            session.begin("ro")
            session.select("Saving", 1)
            session.commit()
            assert session._wire._owed == 0
            assert session._wire._sendbuf == []
            session.close()
            conn.close()
        finally:
            server.shutdown()

    def test_dependent_select_pipelines_with_lazy_bindings(self, net_conn):
        from repro.net.client import _LazyBinding

        get_cid = PreparedStatement(
            "SELECT CustomerId INTO :x FROM Account WHERE Name = :N"
        )
        get_saving = PreparedStatement(
            "SELECT Balance INTO :a FROM Saving WHERE CustomerId = :x"
        )
        session = net_conn.session()
        session.begin("lazy")
        params = {"N": customer_name(3)}
        get_cid.execute(session, params)  # externally keyed: synchronous
        assert not isinstance(params["x"], _LazyBinding)
        get_saving.execute(session, params)  # dependent: pipelined
        assert isinstance(params["a"], _LazyBinding)
        assert len(session._pipeline) == 1
        assert float(params["a"]) == pytest.approx(1_000.0)  # forces the drain
        assert session._pipeline == []
        session.commit()
        session.close()

    def test_deposit_takes_two_rpcs(self, net_conn):
        """The written shape: account lookup + (ADD_CHECKING ⊕ piggybacked
        BEGIN ⊕ piggybacked COMMIT) — two requests total."""
        txns = get_strategy("base-si").transactions()
        args = {"N": customer_name(6), "V": 5.0}
        session = net_conn.session()
        txns.run(session, DEPOSIT_CHECKING, args)  # warm sid caches
        server_stats = net_conn.stats()
        before = server_stats["rpcs_total"]
        txns.run(session, DEPOSIT_CHECKING, args)
        after = net_conn.stats()["rpcs_total"]
        session.close()
        # Delta includes the two STATS reads bracketing the measurement.
        assert after - before == 2 + 1


class TestParseCacheRegression:
    def test_repeated_execution_does_not_reparse(self, local_conn):
        """The sqlmini parse cache: running the same programs again must
        not miss the cache — per-execution parsing was the facade's
        original hot-path regression."""
        txns = get_strategy("base-si").transactions()
        args = {"N": customer_name(1)}

        def run_mix():
            session = local_conn.session()
            try:
                txns.run(session, BALANCE, args)
                txns.run(session, DEPOSIT_CHECKING, {**args, "V": 1.0})
                txns.run(session, WRITE_CHECK, {**args, "V": 1.0})
            finally:
                session.close()

        run_mix()  # warm the cache with every statement text in the mix
        _, misses_before = parse_cache_stats()
        for _ in range(10):
            run_mix()
        cached, misses_after = parse_cache_stats()
        assert misses_after == misses_before, (
            f"{misses_after - misses_before} re-parses of already-cached "
            f"statements ({cached} texts cached)"
        )
