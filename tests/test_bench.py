"""Tests for the experiment harness (specs, runner, renderers, CLI)."""

from __future__ import annotations

import pytest

from repro.bench import FIGURES, Claim, FigureSpec, get_figure, run_figure
from repro.bench.static import (
    render_sdg_figures,
    render_strategy_summary,
    render_table1,
)
from repro.smallbank.strategies import STRATEGIES_BY_KEY


def tiny_spec(**overrides) -> FigureSpec:
    defaults = dict(
        key="tiny",
        title="tiny test figure",
        platform="postgres",
        strategies=("base-si", "promote-wt-upd"),
        mpls=(1, 4),
        customers=300,
        hotspot=60,
        show_relative=True,
        claims=(
            Claim("SI faster at MPL 4 than MPL 1",
                  lambda r: r.tps("base-si", 4) > r.tps("base-si", 1)),
        ),
    )
    defaults.update(overrides)
    return FigureSpec(**defaults)


class TestSpecs:
    def test_all_figures_registered(self):
        assert set(FIGURES) == {"fig4", "fig5", "fig6", "fig7", "fig8", "fig9"}

    def test_get_figure_unknown(self):
        with pytest.raises(KeyError):
            get_figure("fig99")

    def test_specs_reference_known_strategies(self):
        for spec in FIGURES.values():
            for strategy in spec.strategies:
                assert strategy in STRATEGIES_BY_KEY

    def test_sfu_strategies_only_on_commercial_figures(self):
        for spec in FIGURES.values():
            for strategy in spec.strategies:
                if STRATEGIES_BY_KEY[strategy].requires_cc_sfu:
                    assert spec.platform == "commercial", (spec.key, strategy)

    def test_config_applies_overrides(self):
        spec = get_figure("fig7")
        config = spec.config("base-si", 10, measure=1.0)
        assert config.hotspot == 10
        assert config.mix == "balance60"
        assert config.measure == 1.0


class TestRunFigure:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure(
            tiny_spec(), repetitions=1, measure=0.6, ramp_up=0.1
        )

    def test_grid_complete(self, result):
        assert set(result.grid) == {1, 4}
        for mpl in (1, 4):
            assert set(result.grid[mpl]) == {"base-si", "promote-wt-upd"}

    def test_series_accessors(self, result):
        assert result.tps("base-si", 4) > 0
        assert 0.5 < result.relative("promote-wt-upd", 4) < 1.5
        assert result.peak("base-si") == max(
            result.tps("base-si", 1), result.tps("base-si", 4)
        )
        assert result.peak_mpl("base-si") in (1, 4)

    def test_csv_export(self, result):
        csv = result.to_csv()
        lines = csv.splitlines()
        assert lines[0].startswith("figure,mpl,strategy,tps")
        assert len(lines) == 1 + 2 * 2  # header + mpls x strategies
        assert any(line.startswith("tiny,4,base-si,") for line in lines)

    def test_render_contains_series_and_claims(self, result):
        text = result.render()
        assert "Throughput (TPS" in text
        assert "relative to SI" in text
        assert "PASS" in text or "FAIL" in text
        assert result.all_claims_hold

    def test_progress_callback(self):
        seen: list[str] = []
        run_figure(
            tiny_spec(mpls=(1,), strategies=("base-si",), claims=()),
            repetitions=1,
            measure=0.3,
            ramp_up=0.1,
            progress=seen.append,
        )
        assert seen == ["tiny: base-si @ MPL 1"]

    def test_failing_claim_reported(self):
        spec = tiny_spec(
            claims=(Claim("always false", lambda r: False),)
        )
        result = run_figure(spec, repetitions=1, measure=0.3, ramp_up=0.1)
        assert not result.all_claims_hold
        assert "[FAIL] always false" in result.render()


class TestStaticRenderers:
    def test_table1_layout(self):
        text = render_table1()
        assert "Option/TX" in text
        # The exact paper rows.
        for label in (
            "MaterializeWT",
            "PromoteWT-upd",
            "MaterializeBW",
            "PromoteBW-upd",
            "MaterializeALL",
            "PromoteALL",
        ):
            assert label in text
        # PromoteALL's Balance cell shows both tables.
        promote_all_row = next(
            line for line in text.splitlines() if "PromoteALL" in line
        )
        assert "Check+Sav" in promote_all_row

    def test_sdg_figures_show_before_and_after(self):
        text = render_sdg_figures()
        assert "Figure 1" in text and "Figure 3(b)" in text
        assert "Balance -(v)-> WriteCheck -(v)-> TransactSaving" in text
        assert text.count("no dangerous structure") == 4

    def test_strategy_summary_flags_sfu(self):
        text = render_strategy_summary()
        assert "postgres=NO" in text  # the sfu strategies
        assert "NOT serializable (baseline)" in text


class TestCli:
    def test_list(self, capsys):
        from repro.bench.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "table1" in out

    def test_table1_command(self, capsys):
        from repro.bench.__main__ import main

        assert main(["table1"]) == 0
        assert "Option/TX" in capsys.readouterr().out

    def test_sdg_command(self, capsys):
        from repro.bench.__main__ import main

        assert main(["sdg"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_summary_command(self, capsys):
        from repro.bench.__main__ import main

        assert main(["summary"]) == 0
        assert "Strategy summary" in capsys.readouterr().out

    def test_unknown_figure_errors(self):
        from repro.bench.__main__ import main

        with pytest.raises(SystemExit):
            main(["fig77"])
