"""Tests for the logical clock."""

from __future__ import annotations

import threading

from repro.engine import LogicalClock


def test_timestamps_start_after_bootstrap():
    clock = LogicalClock()
    assert clock.last == LogicalClock.BOOTSTRAP_TS == 0
    assert clock.next() == 1


def test_timestamps_strictly_increase():
    clock = LogicalClock()
    values = [clock.next() for _ in range(100)]
    assert values == sorted(values)
    assert len(set(values)) == len(values)
    assert clock.last == values[-1]


def test_clock_is_thread_safe():
    clock = LogicalClock()
    seen: list[int] = []
    lock = threading.Lock()

    def worker() -> None:
        local = [clock.next() for _ in range(500)]
        with lock:
            seen.extend(local)

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(seen) == 4000
    assert len(set(seen)) == 4000
