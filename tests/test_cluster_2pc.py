"""Presumed-abort two-phase commit: participant engine, wire, coordinator.

Layered the way the protocol is: the engine's prepare/decide state
machine and its WAL records first, then crash recovery of in-doubt
prepares (the participant recovery hook), then the wire surface
(prepared transactions are connection-independent), then the
coordinator's decision log and in-doubt resolution.
"""

from __future__ import annotations

import pytest

import repro
from repro.cluster import Cluster, TimestampOracle, TwoPhaseCoordinator
from repro.engine import EngineConfig, Session
from repro.engine.recovery import recover_database
from repro.errors import (
    SerializationFailure,
    TransactionAborted,
    TransactionStateError,
)
from repro.smallbank import PopulationConfig, build_database


def small_db():
    return build_database(None, PopulationConfig(customers=2))


def checking_balance(db, cid=1):
    session = Session(db)
    session.begin("peek")
    try:
        return db.read(session.transaction, "Checking", cid)["Balance"]
    finally:
        session.commit()


class TestEnginePrepareDecide:
    def test_prepared_write_is_invisible_until_the_decision(self):
        db = small_db()
        before = checking_balance(db)
        session = Session(db)
        session.begin("T1")
        session.update("Checking", 1, {"Balance": 999.0})
        db.prepare_commit(session.transaction, "g1")
        assert db.prepared_gtids == ("g1",)
        assert checking_balance(db) == before  # staged, not published
        ts = db.commit_prepared("g1")
        assert ts > 0
        assert db.prepared_gtids == ()
        assert checking_balance(db) == 999.0

    def test_commit_decision_redelivery_is_idempotent(self):
        db = small_db()
        session = Session(db)
        session.begin("T1")
        session.update("Checking", 1, {"Balance": 999.0})
        db.prepare_commit(session.transaction, "g1")
        first = db.commit_prepared("g1")
        assert db.commit_prepared("g1") == first
        with pytest.raises(TransactionStateError):
            db.abort_prepared("g1")  # contradicting a commit is an error

    def test_abort_decision_discards_the_prepare(self):
        db = small_db()
        before = checking_balance(db)
        session = Session(db)
        session.begin("T1")
        session.update("Checking", 1, {"Balance": 999.0})
        db.prepare_commit(session.transaction, "g1")
        db.abort_prepared("g1")
        assert checking_balance(db) == before
        db.abort_prepared("g1")  # idempotent
        with pytest.raises(TransactionStateError):
            db.commit_prepared("g1")

    def test_unknown_gtid_commit_rejected_abort_presumed(self):
        """Presumed abort: an unknown-gtid ABORT_2PC is a harmless no-op
        (the resolver may re-deliver abort to participants that never
        prepared), while an unknown-gtid COMMIT_2PC is always an error —
        a commit decision requires a durable prepare to act on."""
        db = small_db()
        with pytest.raises(TransactionStateError):
            db.commit_prepared("ghost")
        db.abort_prepared("ghost")  # no-op, not an error
        db.abort_prepared("ghost")  # and idempotent
        # The presumption is remembered: committing afterwards is the
        # decision-flip error, not "unknown gtid".
        with pytest.raises(TransactionStateError):
            db.commit_prepared("ghost")

    def test_gtid_reuse_rejected(self):
        db = small_db()
        s1 = Session(db)
        s1.begin("T1")
        s1.update("Checking", 1, {"Balance": 1.0})
        db.prepare_commit(s1.transaction, "g1")
        s2 = Session(db)
        s2.begin("T2")
        s2.update("Checking", 2, {"Balance": 2.0})
        with pytest.raises(TransactionStateError):
            db.prepare_commit(s2.transaction, "g1")

    def test_validation_failure_is_the_no_vote(self):
        """First-committer-wins fires at prepare time; the loser aborts
        exactly as a plain commit would, leaving no prepared orphan and
        no prepare record on the log."""
        db = build_database(
            EngineConfig.first_committer_wins(), PopulationConfig(customers=2)
        )
        loser = Session(db)
        winner = Session(db)
        loser.begin("L")  # snapshot taken before the winner commits
        winner.begin("W")
        winner.update("Checking", 1, {"Balance": 10.0})
        winner.commit()
        loser.update("Checking", 1, {"Balance": 20.0})  # FCW: allowed to stage
        with pytest.raises(SerializationFailure):
            db.prepare_commit(loser.transaction, "gno")
        assert db.prepared_gtids == ()
        assert not [r for r in db.wal.records if r.gtid == "gno"]
        assert checking_balance(db) == 10.0


class TestWalRecords:
    def test_prepare_record_is_durable_before_the_vote_returns(self):
        db = small_db()
        session = Session(db)
        session.begin("T1")
        session.update("Checking", 1, {"Balance": 999.0})
        db.prepare_commit(session.transaction, "g1")
        durable = [r for r in db.wal.durable_records if r.gtid == "g1"]
        assert len(durable) == 1
        (prepare,) = durable
        assert prepare.kind == "prepare"
        assert prepare.commit_ts == 0  # no timestamp until the decision
        assert prepare.redo  # full redo payload rides on the prepare

    def test_commit_decision_record_is_small(self):
        """Presumed abort: the decision record carries no redo — just the
        gtid and the shard's commit timestamp."""
        db = small_db()
        session = Session(db)
        session.begin("T1")
        session.update("Checking", 1, {"Balance": 999.0})
        db.prepare_commit(session.transaction, "g1")
        ts = db.commit_prepared("g1")
        records = [r for r in db.wal.durable_records if r.gtid == "g1"]
        assert [r.kind for r in records] == ["prepare", "commit-2pc"]
        decision = records[1]
        assert decision.commit_ts == ts
        assert decision.redo == ()

    def test_abort_decision_writes_no_record(self):
        """A durable prepare with no decision *is* the abort."""
        db = small_db()
        session = Session(db)
        session.begin("T1")
        session.update("Checking", 1, {"Balance": 999.0})
        db.prepare_commit(session.transaction, "g1")
        db.abort_prepared("g1")
        records = [r for r in db.wal.records if r.gtid == "g1"]
        assert [r.kind for r in records] == ["prepare"]


def _prepare_two(db):
    """Stage two prepared txns: g-committed gets a decision, g-doubt not."""
    decided = Session(db)
    decided.begin("Decided")
    decided.update("Checking", 1, {"Balance": 111.0})
    db.prepare_commit(decided.transaction, "g-committed")
    db.commit_prepared("g-committed")
    in_doubt = Session(db)
    in_doubt.begin("InDoubt")
    in_doubt.update("Checking", 2, {"Balance": 222.0})
    db.prepare_commit(in_doubt.transaction, "g-doubt")


class TestRecovery:
    def test_in_doubt_prepare_survives_a_crash_undecided(self):
        db = small_db()
        _prepare_two(db)
        db.crash()
        recovered = recover_database(db)
        assert recovered.recovered_in_doubt == ("g-doubt",)
        # The decided transaction replayed; the in-doubt one stayed
        # invisible (its redo is stashed, not applied).
        assert checking_balance(recovered, 1) == 111.0
        assert checking_balance(recovered, 2) != 222.0

    def test_redelivered_commit_applies_the_stashed_redo(self):
        db = small_db()
        _prepare_two(db)
        db.crash()
        recovered = recover_database(db)
        ts = recovered.commit_prepared("g-doubt")
        assert recovered.recovered_in_doubt == ()
        assert checking_balance(recovered, 2) == 222.0
        assert recovered.commit_prepared("g-doubt") == ts  # idempotent

    def test_presumed_abort_after_recovery(self):
        db = small_db()
        _prepare_two(db)
        db.crash()
        recovered = recover_database(db)
        recovered.abort_prepared("g-doubt")
        assert recovered.recovered_in_doubt == ()
        assert checking_balance(recovered, 2) != 222.0
        with pytest.raises(TransactionStateError):
            recovered.commit_prepared("g-doubt")

    def test_re_recovery_is_idempotent(self):
        """Crashing the recovered instance (decision still undelivered)
        reproduces the same in-doubt set from the same durable prefix."""
        db = small_db()
        _prepare_two(db)
        db.crash()
        once = recover_database(db)
        once.crash()
        twice = recover_database(once)
        assert twice.recovered_in_doubt == ("g-doubt",)
        assert checking_balance(twice, 1) == 111.0
        ts = twice.commit_prepared("g-doubt")
        assert ts > 0
        assert checking_balance(twice, 2) == 222.0


class TestWire2pc:
    def test_prepared_transaction_survives_session_close(self):
        """A YES vote detaches the transaction from its wire: the
        coordinator can deliver the decision on any connection later."""
        with Cluster(1, customers=2) as cluster:
            host, port = cluster.addresses[0]
            with repro.connect(f"tcp://{host}:{port}") as conn:
                session = conn.session()
                session.begin("T1")
                session.update("Checking", 1, {"Balance": 500.0})
                session.prepare_2pc("gx")
                session.close()
                assert conn.stats()["prepared_2pc"] == 1
                ts = conn.commit_2pc("gx")
                assert ts > 0
                assert conn.commit_2pc("gx") == ts  # idempotent re-delivery
                assert conn.stats()["prepared_2pc"] == 0
                with conn.transaction("check") as txn:
                    assert txn.select("Checking", 1)["Balance"] == 500.0

    def test_wire_no_vote_leaves_no_prepared_orphan(self):
        with Cluster(1, customers=2) as cluster:
            host, port = cluster.addresses[0]
            with repro.connect(f"tcp://{host}:{port}") as conn:
                winner = conn.session()
                loser = conn.session()
                loser.begin("L")
                # Force the deferred BEGIN so the loser's snapshot is
                # pinned before the winner commits.
                assert loser.select("Checking", 1) is not None
                winner.begin("W")
                winner.update("Checking", 1, {"Balance": 10.0})
                winner.commit()
                with pytest.raises(TransactionAborted):
                    # First-updater-wins may fire on the (pipelined) update
                    # or surface at the prepare's drain — either way the
                    # vote is NO and nothing stays prepared.
                    loser.update("Checking", 1, {"Balance": 20.0})
                    loser.prepare_2pc("gno")
                loser.close()
                stats = conn.stats()
                assert stats["prepared_2pc"] == 0
                with pytest.raises(TransactionStateError):
                    conn.commit_2pc("gno")

    def test_abort_decision_over_the_wire(self):
        with Cluster(1, customers=2) as cluster:
            host, port = cluster.addresses[0]
            with repro.connect(f"tcp://{host}:{port}") as conn:
                session = conn.session()
                session.begin("T1")
                session.update("Checking", 1, {"Balance": 500.0})
                session.prepare_2pc("gx")
                session.close()
                conn.abort_2pc("gx")
                conn.abort_2pc("gx")  # idempotent
                assert conn.stats()["prepared_2pc"] == 0
                with conn.transaction("check") as txn:
                    assert txn.select("Checking", 1)["Balance"] != 500.0

    def test_wire_decision_idempotence_presumed_abort(self):
        """The presumed-abort contract over the wire: ABORT_2PC for a
        gtid this shard never prepared is a harmless no-op (and stays
        idempotent), COMMIT_2PC for it is an error, and a commit
        decision re-delivered after ``resolve_in_doubt`` — duplicate
        delivery included — keeps answering the same thing."""
        with Cluster(1, customers=2) as cluster:
            host, port = cluster.addresses[0]
            with repro.connect(f"tcp://{host}:{port}") as conn:
                conn.abort_2pc("never-prepared")  # presumed abort: no-op
                conn.abort_2pc("never-prepared")  # idempotent too
                with pytest.raises(TransactionStateError):
                    conn.commit_2pc("never-prepared")

                session = conn.session()
                session.begin("T1")
                session.update("Checking", 1, {"Balance": 123.0})
                session.prepare_2pc("gdup")
                session.close()
                coordinator = TwoPhaseCoordinator(TimestampOracle())
                coordinator.log.record("gdup", "commit")
                assert (
                    coordinator.resolve_in_doubt("gdup", [conn]) == "commit"
                )
                conn.commit_2pc("gdup")  # duplicate delivery
                assert (
                    coordinator.resolve_in_doubt("gdup", [conn]) == "commit"
                )
                with conn.transaction("check") as txn:
                    assert txn.select("Checking", 1)["Balance"] == 123.0


class _FakeParticipant:
    """Records decision deliveries; optionally unaware of the gtid."""

    def __init__(self, known=True):
        self.known = known
        self.calls = []

    def commit_2pc(self, gtid):
        self.calls.append(("commit", gtid))
        if not self.known:
            raise TransactionStateError(f"no prepared transaction for {gtid!r}")
        return 7

    def abort_2pc(self, gtid):
        self.calls.append(("abort", gtid))
        if not self.known:
            raise TransactionStateError(f"no prepared transaction for {gtid!r}")


class TestCoordinatorResolution:
    def test_logged_commit_decision_is_redelivered(self):
        coordinator = TwoPhaseCoordinator(TimestampOracle())
        coordinator.log.record("g1", "commit")
        participant = _FakeParticipant()
        assert coordinator.resolve_in_doubt("g1", [participant]) == "commit"
        assert participant.calls == [("commit", "g1")]

    def test_unknown_gtid_resolves_to_presumed_abort(self):
        """No decision on the coordinator's log means the coordinator
        never counted the YES — the participant's prepare must die."""
        coordinator = TwoPhaseCoordinator(TimestampOracle())
        participant = _FakeParticipant()
        assert coordinator.resolve_in_doubt("ghost", [participant]) == "abort"
        assert participant.calls == [("abort", "ghost")]

    def test_resolution_tolerates_already_resolved_participants(self):
        coordinator = TwoPhaseCoordinator(TimestampOracle())
        coordinator.log.record("g1", "abort")
        participant = _FakeParticipant(known=False)
        assert coordinator.resolve_in_doubt("g1", [participant]) == "abort"
