"""Distributed robustness: injected faults, crashes, and self-healing.

Covers the DESIGN.md §13 failure model end to end over real TCP shards:
network-level injections (dropped / delayed responses, connection
resets), coordinator crashes on both sides of the decision-log write
with in-doubt resolution, shard crash + same-port restart with history
salvage, heartbeat-driven shard health (demote, fail-fast, restore),
fail-soft ``stats()``/``ping()`` against a dead shard, and a short
seeded ``run_chaos`` soak asserting the full certification contract.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.cluster import Cluster
from repro.cluster.chaos import ChaosConfig, build_fault_plan, run_chaos
from repro.engine import Database, EngineConfig, Session
from repro.errors import (
    ConnectionClosed,
    CoordinatorCrashed,
    DatabaseCrashed,
    ProtocolError,
    ShardUnavailable,
    TransactionStateError,
)
from repro.faults import FaultPlan, FaultSpec
from repro.net import DatabaseServer
from repro.net.client import NetworkConnection
from repro.smallbank import PopulationConfig, build_database, customer_name
from repro.smallbank.strategies import get_strategy

from tests.conftest import make_bank_db


def wait_until(predicate, timeout=5.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError(f"timed out waiting for {message}")


def make_server(**kwargs):
    db = build_database(
        EngineConfig.postgres(), PopulationConfig(customers=10)
    )
    return DatabaseServer(db, **kwargs).start_in_thread()


# ----------------------------------------------------------------------
# Network-level injection points (single server, real sockets)
# ----------------------------------------------------------------------
class TestNetworkFaults:
    def test_dropped_response_hits_the_rpc_deadline(self):
        """net-drop-frame: the request executes but the ack vanishes; the
        client's per-RPC deadline converts the silence into a fast
        ConnectionClosed instead of an indefinite hang."""
        server = make_server()
        try:
            conn = NetworkConnection(
                "127.0.0.1", server.port, rpc_deadline=0.3
            )
            assert conn.ping()  # handshake + sanity before the fault
            server.install_faults(
                FaultPlan([FaultSpec("net-drop-frame", max_fires=1)])
            )
            started = time.monotonic()
            assert not conn.ping()  # single-attempt probe: deadline, False
            assert time.monotonic() - started < 2.0
            assert conn.ping()  # max_fires exhausted: healthy again
            assert server.stats()["net_faults_total"] == 1
            conn.close()
        finally:
            server.shutdown()

    def test_delayed_response_arrives_late_but_intact(self):
        server = make_server()
        try:
            conn = NetworkConnection("127.0.0.1", server.port)
            assert conn.ping()
            server.install_faults(
                FaultPlan(
                    [FaultSpec("net-delay-frame", magnitude=0.3, max_fires=1)]
                )
            )
            started = time.monotonic()
            assert conn.ping()  # same answer, just held back
            assert time.monotonic() - started >= 0.2
            conn.close()
        finally:
            server.shutdown()

    def test_conn_reset_surfaces_and_reconnect_heals(self):
        server = make_server()
        try:
            conn = NetworkConnection(
                "127.0.0.1", server.port, rpc_deadline=1.0
            )
            assert conn.ping()
            server.install_faults(
                FaultPlan([FaultSpec("conn-reset", max_fires=1)])
            )
            assert not conn.ping()  # RST mid-stream, single attempt
            assert conn.ping()  # a fresh wire dials fine
            conn.close()
        finally:
            server.shutdown()

    def test_no_plan_keeps_the_response_path_clean(self):
        server = make_server()
        try:
            assert server.faults is None
            conn = NetworkConnection("127.0.0.1", server.port)
            for _ in range(20):
                assert conn.ping()
            assert server.stats()["net_faults_total"] == 0
            conn.close()
        finally:
            server.shutdown()


# ----------------------------------------------------------------------
# Coordinator crash window + in-doubt resolution
# ----------------------------------------------------------------------
class TestCoordinatorCrash:
    def test_both_crash_flavors_resolve_from_the_decision_log(self):
        """Two forced crashes in the in-doubt window: the first dies
        *before* the decision-log write (recovery presumes abort), the
        second *after* logging commit (recovery re-delivers it).  Money
        is conserved either way."""
        txns = get_strategy("base-si").transactions()
        plan = FaultPlan(
            [FaultSpec("coordinator-crash-window", max_fires=2)]
        )
        with Cluster(2, customers=8) as cluster:
            initial = cluster.total_money()
            with cluster.connect(fault_plan=plan) as conn:
                session = conn.session()
                # Customer ids hash to id % 2: (1, 2) and (3, 4) are both
                # cross-shard pairs, forcing the 2PC path.
                before_1 = txns.run(
                    session, "Balance", {"N": customer_name(1)}
                )
                with pytest.raises(CoordinatorCrashed) as excinfo:
                    txns.run(
                        session,
                        "Amalgamate",
                        {"N1": customer_name(1), "N2": customer_name(2)},
                    )
                assert "before the decision log write" in str(excinfo.value)
                first_gtid = session.gtid
                outcomes = conn.resolve_in_doubt()
                assert outcomes == {first_gtid: "abort"}

                with pytest.raises(CoordinatorCrashed) as excinfo:
                    txns.run(
                        session,
                        "Amalgamate",
                        {"N1": customer_name(3), "N2": customer_name(4)},
                    )
                assert "after the decision log write" in str(excinfo.value)
                second_gtid = session.gtid
                outcomes = conn.resolve_in_doubt()
                assert outcomes == {second_gtid: "commit"}

                # Presumed abort left customer 1 untouched; the re-delivered
                # commit drained customer 3 into 4.
                assert (
                    txns.run(session, "Balance", {"N": customer_name(1)})
                    == before_1
                )
                assert (
                    txns.run(session, "Balance", {"N": customer_name(3)})
                    == 0.0
                )
                counters = conn.counters()
                assert counters["coordinator_crashes"] == 2
                assert counters["in_doubt_aborts"] == 1
                assert counters["in_doubt_commits"] == 1
                # A later sweep finds nothing left to settle (idempotent).
                assert conn.resolve_in_doubt() == {}
                session.close()
            assert cluster.total_money() == initial

    def test_background_resolver_settles_without_manual_sweeps(self):
        plan = FaultPlan(
            [FaultSpec("coordinator-crash-window", max_fires=1)]
        )
        txns = get_strategy("base-si").transactions()
        with Cluster(2, customers=8) as cluster:
            with cluster.connect(fault_plan=plan) as conn:
                conn.start_in_doubt_resolver(interval=0.05)
                session = conn.session()
                with pytest.raises(CoordinatorCrashed):
                    txns.run(
                        session,
                        "Amalgamate",
                        {"N1": customer_name(1), "N2": customer_name(2)},
                    )
                gtid = session.gtid
                wait_until(
                    lambda: conn.coordinator.decision_for(gtid) == "abort",
                    message="background resolver settling the orphan",
                )
                session.close()


# ----------------------------------------------------------------------
# Shard health: heartbeats, fail-fast, fail-soft introspection
# ----------------------------------------------------------------------
class TestShardHealth:
    def test_stats_and_ping_survive_a_dead_shard(self):
        """Introspection against a half-dead cluster answers fast and
        fail-soft: the dead shard contributes an ``unreachable`` stub and
        its health record, never an exception or a hang."""
        with Cluster(2, customers=8) as cluster:
            with cluster.connect(timeout=1.0, rpc_deadline=0.5) as conn:
                assert conn.ping()
                cluster.databases[0].crash()
                cluster.servers[0].shutdown()
                started = time.monotonic()
                assert not conn.ping()  # probes all shards, no hang
                stats = conn.stats()
                assert time.monotonic() - started < 10.0
                assert stats["shards"] == 2
                assert stats["shard_stats"][0].get("unreachable") is True
                assert "error" in stats["shard_stats"][0]
                assert stats["shard_stats"][1]["backend"] == "network"
                assert [h["shard"] for h in stats["shard_health"]] == [0, 1]

    def test_heartbeats_demote_failfast_and_restore(self):
        with Cluster(2, customers=8) as cluster:
            with cluster.connect(
                timeout=1.0, rpc_deadline=0.3, unhealthy_after=2
            ) as conn:
                # Without heartbeats there is no health signal and no
                # fail-fast: every shard reads healthy.
                assert all(h["healthy"] for h in conn.shard_health())
                conn.start_heartbeats(interval=0.05, deadline=0.3)
                cluster.crash_shard(0)
                wait_until(
                    lambda: not conn.shard_health()[0]["healthy"],
                    message="heartbeats demoting the crashed shard",
                )
                # Sessions fail fast instead of dialing the dead endpoint.
                session = conn.session()
                with pytest.raises(ShardUnavailable):
                    session.begin("doomed")
                session.close()
                cluster.restart_shard(0)
                wait_until(
                    lambda: conn.shard_health()[0]["healthy"],
                    message="first successful heartbeat restoring health",
                )
                session = conn.session()
                session.begin("revived")
                session.rollback()
                session.close()


# ----------------------------------------------------------------------
# Shard crash + same-port restart
# ----------------------------------------------------------------------
class TestShardCrashRestart:
    def test_crash_salvages_history_and_restart_reuses_the_port(self):
        txns = get_strategy("base-si").transactions()
        with Cluster(2, customers=8) as cluster:
            initial = cluster.total_money()
            old_port = cluster.servers[0].port
            with cluster.connect() as conn:
                session = conn.session()
                txns.run(
                    session, "DepositChecking",
                    {"N": customer_name(1), "V": 25.0},
                )
                txns.run(
                    session, "Amalgamate",
                    {"N1": customer_name(1), "N2": customer_name(2)},
                )
                session.close()
                conn.flush()
                cluster.crash_shard(0)
                cluster.restart_shard(0)
                assert cluster.servers[0].port == old_port
                assert cluster.restart_count == 1
                # Durable effects survived the crash...
                assert cluster.total_money() == round(initial + 25.0, 2)
                # ...and the salvaged prefix still carries the pre-crash
                # commits for the global certification merge.
                from repro.analysis import merge_shard_histories

                report = merge_shard_histories(cluster.histories())
                assert report.serializable
                histories = cluster.histories()
                assert any(len(h) > 0 for h in histories.values())

    def test_restart_requires_a_crash(self):
        with Cluster(2, customers=4) as cluster:
            with pytest.raises(TransactionStateError, match="not crashed"):
                cluster.restart_shard(0)

    def test_stale_statement_ids_heal_after_restart(self):
        """Sids are namespaced per server instance: after a crash+restart
        a cached sid must surface as a transient ConnectionClosed (and
        flush the cache) — never a hard ProtocolError, never a silent
        hit on the wrong statement."""
        txns = get_strategy("base-si").transactions()
        with Cluster(2, customers=8) as cluster:
            with cluster.connect(timeout=2.0, rpc_deadline=1.0) as conn:
                session = conn.session()
                # Customer 2 hashes to shard 0 — the one we crash below,
                # so the learnt sids really do go stale.
                args = {"N": customer_name(2), "V": 5.0}
                txns.run(session, "DepositChecking", args)  # learn sids
                session.close()
                cluster.crash_shard(0)
                cluster.restart_shard(0)
                for attempt in range(6):
                    session = conn.session()
                    try:
                        txns.run(session, "DepositChecking", args)
                        break
                    except ConnectionClosed:
                        continue  # broken wire or invalidated sid: retry
                    except ProtocolError as exc:  # pragma: no cover
                        pytest.fail(f"stale sid escaped as {exc!r}")
                    finally:
                        session.close()
                else:  # pragma: no cover
                    pytest.fail("deposit never succeeded after restart")


# ----------------------------------------------------------------------
# Engine: crash wakes blocked lock waiters (hang regression)
# ----------------------------------------------------------------------
class TestCrashWakesWaiters:
    def test_crash_wakes_a_blocked_lock_waiter(self):
        """A thread blocked on a row lock must observe the crash promptly
        (DatabaseCrashed), not sleep forever on a resolution callback the
        vanished holder can no longer fire."""
        db = make_bank_db()  # no lock timeout: waits are unbounded
        holder = Session(db)
        holder.begin("holder")
        holder.update("Saving", 1, {"Balance": 1.0})

        outcome: dict = {}

        def blocked_writer() -> None:
            s = Session(db)
            s.begin("waiter")
            try:
                s.update("Saving", 1, {"Balance": 2.0})
                outcome["result"] = "acquired"
            except DatabaseCrashed:
                outcome["result"] = "crashed"
            except Exception as exc:  # pragma: no cover
                outcome["result"] = repr(exc)

        thread = threading.Thread(target=blocked_writer, daemon=True)
        thread.start()
        wait_until(
            lambda: len(db.active_transactions) == 2,
            timeout=2.0,
            message="waiter's transaction becoming active",
        )
        time.sleep(0.1)  # let the waiter actually park on its event
        db.crash()
        thread.join(timeout=5.0)
        assert not thread.is_alive(), "crash did not wake the lock waiter"
        assert outcome["result"] == "crashed"


# ----------------------------------------------------------------------
# The seeded soak (short configuration of the CI gate)
# ----------------------------------------------------------------------
class TestChaosSoak:
    def test_short_soak_certifies(self):
        config = ChaosConfig(
            shards=2,
            customers=16,
            mpl=4,
            duration=1.0,
            seed=7,
            crash_after_polls=4,
            shard_downtime=0.2,
            coordinator_crashes=1,
        )
        result = run_chaos(config)
        assert result.serializable
        assert result.ledger_conserved
        assert result.in_doubt_after_recovery == 0
        assert result.ok
        assert result.counters["shard_restarts"] == result.counters[
            "shard_crashes"
        ]
        record = result.to_record()
        assert record["benchmark"] == "chaos_cluster"
        assert record["checks"]["serializable"] is True
        assert record["checks"]["ledger_conserved"] is True
        assert record["checks"]["in_doubt_after_recovery"] == 0
        assert record["final_money"] == record["initial_money"]

    def test_fault_plan_covers_every_distributed_point(self):
        plan = build_fault_plan(ChaosConfig())
        for point in (
            "net-drop-frame",
            "net-delay-frame",
            "net-dup-decision",
            "conn-reset",
            "shard-crash",
            "coordinator-crash-window",
        ):
            assert plan.covers(point)
