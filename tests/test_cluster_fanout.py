"""Concurrent fan-out: pool semantics, oracle groups, router broadcasts.

The pool's gather contract (every outcome, positionally, nothing raised
early) is what lets 2PC launch all PREPAREs concurrently and still
reason about votes; the oracle's two-group latch is what lets decision
broadcasts share a window instead of serialising every cross-shard
commit; and the router-level tests pin the observable win — a slow
shard no longer stalls probes of the healthy ones — plus the 2PC
correctness properties that must survive the concurrency: presumed
abort under a mid-fan-out shard crash and idempotent duplicate decision
delivery.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.cluster import Cluster, TimestampOracle
from repro.cluster.fanout import FanOutPool, Outcome, first_error
from repro.errors import ReproError
from repro.faults import FaultPlan, FaultSpec
from repro.obs import Observability


class TestFanOutPool:
    def test_outcomes_are_positional_and_errors_captured(self):
        boom = ValueError("boom")

        def fail():
            raise boom

        with FanOutPool(4) as pool:
            outcomes = pool.run([lambda: "a", fail, lambda: "c"])
        assert [outcome.value for outcome in outcomes] == ["a", None, "c"]
        assert outcomes[1].error is boom
        assert [outcome.ok for outcome in outcomes] == [True, False, True]
        assert first_error(outcomes) is boom

    def test_first_error_is_task_order_not_completion_order(self):
        slow = RuntimeError("slow-but-first")
        fast = RuntimeError("fast-but-second")

        def slow_fail():
            time.sleep(0.05)
            raise slow

        def fast_fail():
            raise fast

        with FanOutPool(4) as pool:
            assert first_error(pool.run([slow_fail, fast_fail])) is slow

    def test_single_task_runs_inline_without_threads(self):
        pool = FanOutPool(4)
        caller = threading.current_thread().name
        outcomes = pool.run([lambda: threading.current_thread().name])
        assert outcomes == [Outcome(caller, None)]
        assert pool._executor is None  # never lazily created
        pool.shutdown()

    def test_multi_task_broadcast_really_overlaps(self):
        barrier = threading.Barrier(3, timeout=5.0)
        with FanOutPool(4) as pool:
            outcomes = pool.run([barrier.wait] * 3)
        # All three tasks were inside the barrier simultaneously; a
        # serial loop would have deadlocked (BrokenBarrierError).
        assert all(outcome.ok for outcome in outcomes)

    def test_closed_pool_degrades_to_serial_not_an_error(self):
        pool = FanOutPool(2)
        pool.run([lambda: 1, lambda: 2])  # force executor creation
        pool.shutdown()
        outcomes = pool.run([lambda: 1, lambda: 2, lambda: 3])
        assert [outcome.value for outcome in outcomes] == [1, 2, 3]

    def test_counts_broadcasts_in_obs(self):
        obs = Observability()
        with FanOutPool(2, obs=obs) as pool:
            pool.run([lambda: 1, lambda: 2], op="stats")
        assert obs.cluster_fanout_broadcasts.value == 1


class TestOracleGroups:
    def test_gtid_leases_are_disjoint_across_threads(self):
        oracle = TimestampOracle()
        leases: "list[range]" = []
        lock = threading.Lock()

        def grab():
            for _ in range(10):
                lease = oracle.lease_gtids(16)
                with lock:
                    leases.append(lease)

        threads = [threading.Thread(target=grab) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        seen: "set[int]" = set()
        for lease in leases:
            assert len(lease) == 16
            assert not seen & set(lease)
            seen.update(lease)

    def test_gtid_base_offsets_the_whole_space(self):
        oracle = TimestampOracle(gtid_base=10**9)
        assert oracle.next_gtid() == 10**9 + 1
        assert oracle.lease_gtids(4) == range(10**9 + 2, 10**9 + 6)

    def test_decision_windows_share_the_group(self):
        """Two decision broadcasts may overlap (disjoint gtids commute);
        under the old exclusive latch this barrier would time out."""
        oracle = TimestampOracle()
        barrier = threading.Barrier(2, timeout=5.0)
        failures: "list[BaseException]" = []

        def deliver():
            try:
                with oracle.decision_window():
                    barrier.wait()
            except BaseException as exc:  # pragma: no cover - on failure
                failures.append(exc)

        threads = [threading.Thread(target=deliver) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures

    def test_decisions_still_exclude_snapshots(self):
        oracle = TimestampOracle()
        release = threading.Event()
        snapshot_entered = threading.Event()

        def hold_decision():
            with oracle.decision_window():
                release.wait(timeout=5.0)

        holder = threading.Thread(target=hold_decision)
        holder.start()
        time.sleep(0.05)  # let the decision window open

        def try_snapshot():
            with oracle.snapshot_window():
                snapshot_entered.set()

        snapshotter = threading.Thread(target=try_snapshot)
        snapshotter.start()
        assert not snapshot_entered.wait(timeout=0.2)  # blocked out
        release.set()
        assert snapshot_entered.wait(timeout=5.0)  # admitted afterwards
        holder.join()
        snapshotter.join()


def _delay_all_frames(magnitude: float) -> FaultPlan:
    return FaultPlan(
        [FaultSpec("net-delay-frame", probability=1.0, magnitude=magnitude)],
        seed=1,
    )


class TestRouterBroadcasts:
    DELAY = 0.3

    def test_slow_shards_do_not_stack_in_stats_sweep(self):
        """Satellite regression: stats/heartbeat used to probe shards
        serially, so N delayed shards cost N x delay.  With the fan-out
        pool the sweep completes in ~one delay."""
        with Cluster(2, customers=4) as cluster:
            conn = cluster.connect()
            try:
                conn.stats()  # prime every wire before installing faults
                cluster.install_faults(_delay_all_frames(self.DELAY))
                started = time.perf_counter()
                stats = conn.stats()
                elapsed = time.perf_counter() - started
            finally:
                cluster.install_faults(None)
                conn.close()
        assert len(stats["shard_stats"]) == 2
        assert elapsed >= self.DELAY * 0.8  # the delay really applied...
        assert elapsed < self.DELAY * 2 * 0.85  # ...but only once, not 2x

    def test_slow_shards_do_not_stack_in_heartbeat(self):
        with Cluster(2, customers=4) as cluster:
            conn = cluster.connect()
            try:
                assert conn.ping()  # prime every wire
                cluster.install_faults(_delay_all_frames(self.DELAY))
                started = time.perf_counter()
                health = conn.heartbeat()
                elapsed = time.perf_counter() - started
            finally:
                cluster.install_faults(None)
                conn.close()
        assert all(health)
        assert elapsed >= self.DELAY * 0.8
        assert elapsed < self.DELAY * 2 * 0.85

    def test_fanout_metric_counts_router_broadcasts(self):
        obs = Observability()
        with Cluster(2, customers=4) as cluster:
            conn = cluster.connect(obs=obs)
            try:
                conn.stats()
                conn.ping()
            finally:
                conn.close()
        assert obs.cluster_fanout_broadcasts.value >= 2


class TestConcurrent2pc:
    def test_mid_fanout_shard_crash_presumes_abort(self):
        """All PREPAREs launch concurrently; when one participant's
        engine is down its NO vote must abort the gtid, roll back every
        YES voter, and leave nothing prepared anywhere."""
        with Cluster(2, customers=4) as cluster:
            conn = cluster.connect()
            try:
                session = conn.session()
                session.begin("CrossTransfer")
                # Customer 1 -> shard 1, customer 2 -> shard 0.
                session.update("Checking", 1, {"Balance": 111.0})
                session.update("Checking", 2, {"Balance": 222.0})
                cluster.databases[0].crash()  # dies mid-protocol
                with pytest.raises(ReproError):
                    session.commit()
                session.close()
                # Presumed abort: the coordinator logged the abort and
                # the surviving shard holds no prepared orphan.
                decisions = conn.coordinator.log.decisions()
                assert decisions and set(decisions.values()) == {"abort"}
                assert cluster.databases[1].prepared_gtids == ()
            finally:
                conn.close()

    def test_duplicate_decisions_stay_idempotent_under_fanout(self):
        """net-dup-decision double-delivers each commit decision while
        deliveries fan out concurrently; the engines must apply each
        gtid exactly once."""
        plan = FaultPlan(
            [FaultSpec("net-dup-decision", probability=1.0)], seed=3
        )
        with Cluster(2, customers=4) as cluster:
            conn = cluster.connect(fault_plan=plan)
            try:
                session = conn.session()
                session.begin("CrossTransfer")
                session.update("Checking", 1, {"Balance": 111.0})
                session.update("Checking", 2, {"Balance": 222.0})
                session.commit()
                session.close()
                counters = conn.counters()
                with conn.transaction("Check") as txn:
                    assert txn.select("Checking", 1)["Balance"] == 111.0
                    assert txn.select("Checking", 2)["Balance"] == 222.0
            finally:
                conn.close()
            assert counters["twopc_commits"] == 1
            assert plan.fired("net-dup-decision") == 2  # one per shard
            assert cluster.pending_2pc_gtids() == set()
