"""Multi-process shard fleet: slice parity, control channel, certification.

Three layers, cheapest first: the standalone entrypoint's shard-slice
builder must be bit-identical to the in-process partitioner (no
subprocess needed to check that); the serialization helpers that ship
histories and fault plans across the process boundary must round-trip;
then one real :class:`~repro.cluster.ShardProcess` and a full
:class:`~repro.cluster.ProcessCluster` exercise spawn, readiness,
engine-level crash/recovery over the control channel, MPL-8 workload
certification of the merged MVSG, and leak-free teardown.
"""

from __future__ import annotations

import pytest

import repro
from repro.analysis import (
    committed_from_dict,
    committed_to_dict,
    dump_history_jsonl,
    load_history_jsonl,
    merge_shard_histories,
    record_database,
)
from repro.api import ISOLATION_CONFIGS
from repro.cluster import ProcessCluster, ShardProcess, build_shard_database
from repro.cluster.partition import PARTITION_COLUMNS
from repro.engine import Session
from repro.faults import FaultPlan, FaultSpec, plan_from_json
from repro.net.__main__ import build_served_database
from repro.smallbank import PopulationConfig, build_database
from repro.workload.driver import ThreadedDriver, ThreadedDriverConfig


def _table_contents(db) -> dict:
    """Every row of every SmallBank table, for whole-database equality."""
    txn = db.begin("audit")
    contents = {
        table: sorted(
            (repr(key), sorted(row.items()))
            for key, row in db.scan(txn, table)
        )
        for table in PARTITION_COLUMNS
    }
    db.commit(txn)
    return contents


class TestSlicePopulationParity:
    def test_standalone_slice_is_bit_identical_to_the_partitioner(self):
        """A ``python -m repro.net --shard-index i --shard-count n`` child
        must self-populate exactly the slice ``build_shard_database``
        would hand an in-process shard — same rows, same balances (the
        partitioner burns RNG draws for skipped customers to keep the
        stream aligned)."""
        population = PopulationConfig(customers=17, seed=4242)
        for shard_index in range(3):
            expected = build_shard_database(
                ISOLATION_CONFIGS["si"](),
                population,
                shard_index=shard_index,
                shard_count=3,
            )
            standalone = build_served_database(
                customers=17,
                isolation="si",
                seed=4242,
                shard_index=shard_index,
                shard_count=3,
            )
            assert _table_contents(standalone) == _table_contents(expected)

    def test_single_shard_matches_the_plain_population(self):
        expected = build_database(
            ISOLATION_CONFIGS["si"](), PopulationConfig(customers=9)
        )
        standalone = build_served_database(customers=9, isolation="si")
        assert _table_contents(standalone) == _table_contents(expected)

    def test_unknown_partitioner_is_rejected(self):
        with pytest.raises(ValueError, match="partitioner"):
            build_served_database(customers=4, partitioner="range")


class TestCrossProcessSerialization:
    def test_fault_plan_json_round_trip(self):
        plan = FaultPlan(
            [
                FaultSpec("net-drop-frame", probability=0.25, start_after=10),
                FaultSpec("wal-stall", magnitude=0.5, max_fires=3),
            ],
            seed=99,
        )
        clone = plan_from_json(plan.to_json())
        assert clone.to_json() == plan.to_json()
        assert clone.seed == 99
        assert clone.magnitude("wal-stall") == 0.5
        # Same seed => same draw sequence from a fresh start.
        draws = [plan.should_fire("net-drop-frame") for _ in range(40)]
        clone_draws = [clone.should_fire("net-drop-frame") for _ in range(40)]
        assert draws == clone_draws

    def test_history_jsonl_round_trip(self, tmp_path):
        db = build_database(None, PopulationConfig(customers=3))
        recorder = record_database(db)
        session = Session(db)
        session.begin("Writer")
        session.update("Checking", 1, {"Balance": 77.0})
        session.commit()
        session.begin("Reader")
        session.select("Checking", 1)
        session.scan("Checking", lambda row: row["Balance"] > 0, "rich")
        session.commit()
        committed = recorder.committed
        assert committed
        for txn in committed:  # dict encoding inverts exactly
            assert committed_from_dict(committed_to_dict(txn)) == txn
        path = tmp_path / "history.jsonl"
        assert dump_history_jsonl(str(path), committed) == len(committed)
        assert load_history_jsonl(str(path)) == committed


class TestShardProcess:
    def test_spawn_serve_crash_recover_dump_shutdown(self, tmp_path):
        """One child through its whole lifecycle: readiness, wire reads,
        an engine crash + same-port recovery driven over the control
        channel, a history dump, and a clean (unkilled) exit."""
        shard = ShardProcess(0, 2, customers=8, seed=7)
        try:
            host, port = shard.wait_ready()
            assert shard.ping()
            with repro.connect(f"tcp://{host}:{port}") as conn:
                with conn.transaction("Deposit") as txn:
                    # Customer 2 hashes to shard 0 of 2.
                    before = txn.select("Checking", 2)["Balance"]
                    txn.update("Checking", 2, {"Balance": before + 10.0})
            shard.crash()
            assert shard.crashed
            assert shard.recover() == (host, port)  # same port, recovered
            with repro.connect(f"tcp://{host}:{port}") as conn:
                with conn.transaction("Check") as txn:
                    assert txn.select("Checking", 2)["Balance"] == (
                        before + 10.0
                    )
                # A post-recovery *write* (read-only COMMITs are deferred
                # client-side and may never reach the shard): proves the
                # recorder carried over to the recovered engine.
                with conn.transaction("PostRecovery") as txn:
                    txn.update("Checking", 2, {"Balance": before + 20.0})
            dump = tmp_path / "shard0.jsonl"
            count = shard.dump_history(str(dump))
            assert count >= 2  # salvaged deposit + post-recovery write
            labels = {txn.label for txn in load_history_jsonl(str(dump))}
            assert {"Deposit", "PostRecovery"} <= labels
        finally:
            shard.shutdown()
        assert not shard.alive
        assert shard.kill_count == 0
        assert shard.stats is not None  # graceful exits report STATS


class TestProcessCluster:
    def test_mpl8_workload_certifies_and_leaves_no_orphans(self):
        """The multi-process acceptance check, miniaturised: an MPL-8
        uniform mix over a 2-shard fleet of OS processes, merged MVSG
        acyclic under promote-all, no gtid left prepared or in doubt,
        and zero orphaned or force-killed shard processes after
        shutdown.  (The uniform mix deposits money, so there is no
        ledger-conservation check here — that is the chaos harness's
        Balance+Amalgamate mix.)"""
        from repro.smallbank import get_strategy

        with ProcessCluster(2, customers=20, seed=13) as cluster:
            conn = cluster.connect()
            try:
                stats = ThreadedDriver(
                    None,
                    get_strategy("promote-all").transactions(),
                    ThreadedDriverConfig(
                        mpl=8,
                        customers=20,
                        hotspot=5,
                        mix="uniform",
                        duration=0.6,
                        seed=3,
                    ),
                    connection=conn,
                ).run()
                conn.flush()
                counters = conn.counters()
            finally:
                conn.close()
            assert stats.total_commits > 0
            assert cluster.pending_2pc_gtids() == set()
            report = merge_shard_histories(cluster.histories())
            assert report.serializable, report.describe()
            # The uniform mix's Amalgamates produce real cross-shard 2PC.
            assert counters["twopc_commits"] + counters["twopc_aborts"] > 0
        assert cluster.fleet.alive_count == 0
        assert cluster.fleet.kill_count == 0

    def test_crash_recover_cycle_preserves_the_ledger(self):
        with ProcessCluster(2, customers=10, seed=5) as cluster:
            initial = cluster.total_money()
            cluster.crash_shard(1)
            assert cluster.recover_crashed() == 1
            assert cluster.restart_count == 1
            assert cluster.total_money() == initial
        assert cluster.fleet.alive_count == 0
