"""Distributed serializability checking over merged per-shard traces.

The centrepiece demonstrations of the cluster subsystem:

* a **cross-shard write-skew** that no individual shard can see — each
  shard's own history is perfectly serializable, the merged global MVSG
  has a two-edge rw cycle (the robustness gap of Beillahi et al. /
  Nagar & Jagannathan, cluster edition);
* **promotion restores acyclicity**: the same two transactions with
  their reads promoted to identity writes collide under
  first-updater-wins, the loser aborts, and the merged trace certifies;
* the paper's **read-only-transaction anomaly** reproduced over a
  2-shard cluster under plain SI and eliminated by the promote-all
  strategy — the single-node Section III result surviving distribution.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    GlobalTransaction,
    global_id,
    merge_shard_histories,
    split_label,
)
from repro.analysis.recorder import CommittedTransaction
from repro.cluster import Cluster
from repro.errors import TransactionAborted
from repro.smallbank import customer_name, get_strategy


class TestLabelTagging:
    def test_split_label_extracts_the_gtid_tag(self):
        assert split_label("WriteCheck#g42") == ("WriteCheck", "g42")
        assert split_label("T1#g7") == ("T1", "g7")

    def test_untagged_labels_pass_through(self):
        assert split_label("WriteCheck") == ("WriteCheck", None)
        assert split_label("odd#gX") == ("odd#gX", None)
        assert split_label("") == ("", None)

    @staticmethod
    def _txn(label):
        return CommittedTransaction(
            txid=3,
            label=label,
            start_ts=1,
            snapshot_ts=1,
            commit_ts=5,
            reads=(),
            writes=(),
            cc_writes=(),
            predicate_reads=(),
        )

    def test_global_id_falls_back_to_a_per_shard_id(self):
        assert global_id(0, self._txn("Bal#g9")) == "g9"
        assert global_id(1, self._txn("Bal")) == "s1-t3"

    def test_merge_of_empty_histories_is_serializable(self):
        report = merge_shard_histories({0: (), 1: ()})
        assert report.serializable
        assert report.transactions == {}
        assert report.edges == ()


def _run_write_skew(cluster, *, promote):
    """T1 reads Conflict[2] (shard 0) and writes Conflict[4] and
    Conflict[1]; T2 reads Conflict[1] (shard 1) and writes Conflict[3]
    and Conflict[2].  Write sets are disjoint, both snapshots are pinned
    by the consistent-mode begin broadcast before either commits, and the
    two read-vs-write races sit on *different* shards — each shard
    records a single rw edge and only the merge sees the cycle.

    With ``promote`` each reader also identity-writes the row it read,
    turning its rw race into a write-write conflict: T2's promoted write
    of Conflict[1] then collides with T1's committed update and
    first-updater-wins kills T2."""
    conn = cluster.connect()  # consistent mode: snapshots pinned at begin
    outcome = {"t1": "committed", "t2": "committed"}
    try:
        t1 = conn.session()
        t2 = conn.session()
        t1.begin("T1")
        t2.begin("T2")  # both snapshots now predate both commits
        # shard 0 owns even ids, shard 1 odd ids.
        try:
            assert t1.select("Conflict", 2)["Value"] == 0  # read on shard 0
            if promote:
                t1.identity_update("Conflict", 2, "Value")
            t1.update("Conflict", 4, {"Value": 14})  # write on shard 0
            t1.update("Conflict", 1, {"Value": 11})  # write on shard 1
            t1.commit()
        except TransactionAborted:
            outcome["t1"] = "aborted"
        try:
            assert t2.select("Conflict", 1)["Value"] == 0  # read on shard 1
            if promote:
                t2.identity_update("Conflict", 1, "Value")
            t2.update("Conflict", 3, {"Value": 23})  # write on shard 1
            t2.update("Conflict", 2, {"Value": 22})  # write on shard 0
            t2.commit()
        except TransactionAborted:
            outcome["t2"] = "aborted"
            if t2.in_transaction:
                t2.rollback()
        t1.close()
        t2.close()
        conn.flush()
        return outcome, conn.counters()
    finally:
        conn.close()


class TestCrossShardWriteSkew:
    def test_plain_si_admits_write_skew_no_shard_can_see(self):
        with Cluster(2, customers=4) as cluster:
            outcome, counters = _run_write_skew(cluster, promote=False)
            assert outcome == {"t1": "committed", "t2": "committed"}
            # Disjoint write sets on every shard: both commits are 2PC
            # and neither trips first-updater-wins.
            assert counters["twopc_commits"] == 2
            report = merge_shard_histories(cluster.histories())
            assert not report.serializable
            assert "write-skew" in report.anomalies
            # The defining property: every per-shard history is
            # serializable on its own — the cycle exists only globally.
            assert report.cross_shard_only
            assert all(
                cycle is None for cycle in report.shard_cycles.values()
            )
            assert report.cycle is not None
            assert {edge.kind for edge in report.cycle.edges} == {"rw"}
            cyclists = {edge.source for edge in report.cycle.edges}
            transactions = report.transactions
            assert all(transactions[gid].is_distributed for gid in cyclists)
            assert "invisible to every single shard" in report.describe()

    def test_promotion_restores_acyclicity(self):
        with Cluster(2, customers=4) as cluster:
            outcome, counters = _run_write_skew(cluster, promote=True)
            # The promoted identity writes make the two transactions
            # write-write conflict; first-updater-wins kills the second.
            assert outcome == {"t1": "committed", "t2": "aborted"}
            assert counters["twopc_commits"] == 1
            report = merge_shard_histories(cluster.histories())
            assert report.serializable
            assert report.cross_shard_only is False  # vacuous: no cycle
            # No prepared orphans linger after the aborted 2PC.
            for db in cluster.databases:
                assert db.prepared_gtids == ()

    def test_global_transactions_carry_their_branches(self):
        with Cluster(2, customers=4) as cluster:
            _run_write_skew(cluster, promote=False)
            report = merge_shard_histories(cluster.histories())
            t1 = next(
                t for t in report.transactions.values() if t.label == "T1"
            )
            assert isinstance(t1, GlobalTransaction)
            assert t1.shards == (0, 1)
            assert [shard for shard, _ in t1.active_branches] == [0, 1]
            assert not t1.is_read_only


def _drive_cluster_anomaly(cluster, strategy_key):
    """The Fekete/O'Neil read-only-anomaly interleaving over the cluster.

    Customer 1 lives on shard 1 of 2; a setup transaction zeroes both
    balances first (the SIGMOD Record 2004 preconditions).  WC pins its
    consistent snapshot before TS commits a $20 deposit; Bal then reads
    the deposit; WC finally bounces a $10 check against its stale total.
    """
    txns = get_strategy(strategy_key).transactions()
    name = customer_name(1)
    conn = cluster.connect()
    outcome = {}
    try:
        with conn.transaction("Setup") as setup:
            setup.update("Saving", 1, {"Balance": 0.0})
            setup.update("Checking", 1, {"Balance": 0.0})

        wc = conn.session()
        ts = conn.session()
        bal = conn.session()
        try:
            wc.begin("WriteCheck")  # snapshot broadcast happens here
            ts.begin("TransactSaving")
            txns.transact_saving(ts, {"N": name, "V": 20.0})
            ts.commit()
            bal.begin("Balance")
            outcome["bal"] = txns.balance(bal, {"N": name})
            bal.commit()
            try:
                penalized = txns.write_check(wc, {"N": name, "V": 10.0})
                wc.commit()
                outcome["wc"] = "penalized" if penalized else "committed"
            except TransactionAborted as exc:
                if wc.in_transaction:
                    wc.rollback()
                outcome["wc"] = type(exc).__name__
        finally:
            wc.close()
            ts.close()
            bal.close()
        conn.flush()
    finally:
        conn.close()
    return outcome


class TestSmallBankAnomalyOverTheCluster:
    def test_plain_si_reproduces_the_read_only_anomaly(self):
        with Cluster(2, customers=4) as cluster:
            outcome = _drive_cluster_anomaly(cluster, "base-si")
            assert outcome["bal"] == 20.0
            assert outcome["wc"] == "penalized"
            report = merge_shard_histories(cluster.histories())
            assert not report.serializable
            assert "read-only-transaction-anomaly" in report.anomalies
            assert "dangerous-structure" in report.anomalies

    def test_promote_all_eliminates_the_anomaly(self):
        with Cluster(2, customers=4) as cluster:
            outcome = _drive_cluster_anomaly(cluster, "promote-all")
            # WC's promoted read collides with TS's committed write.
            assert outcome["wc"] != "penalized"
            assert outcome["wc"] != "committed"
            report = merge_shard_histories(cluster.histories())
            assert report.serializable

    @pytest.mark.parametrize("strategy_key", ["materialize-all"])
    def test_materialization_also_eliminates_it(self, strategy_key):
        with Cluster(2, customers=4) as cluster:
            outcome = _drive_cluster_anomaly(cluster, strategy_key)
            assert outcome["wc"] not in ("penalized", "committed")
            assert merge_shard_histories(cluster.histories()).serializable
