"""Hash partitioning and shard affinity (DESIGN.md §12.2).

Pins the three properties the cluster depends on: the customer → shard
map is total and deterministic, each shard's population slice is exactly
the single-node population restricted to its customers (same seed, same
balances), and the workload generator's parameter draws respect the
partition map — single-customer programs always name one shard, and the
two-customer Amalgamate crosses shards at the rate the map predicts.
"""

from __future__ import annotations

import random

import pytest

from repro.cluster import PARTITION_COLUMNS, HashPartitioner, build_shard_database
from repro.engine import Session
from repro.smallbank import PopulationConfig, build_database, customer_name
from repro.smallbank.programs import (
    AMALGAMATE,
    BALANCE,
    DEPOSIT_CHECKING,
    TRANSACT_SAVING,
    WRITE_CHECK,
)
from repro.smallbank.schema import total_money
from repro.workload.mix import (
    HotspotConfig,
    ParameterGenerator,
    customer_ids_in_args,
)


class TestHashPartitioner:
    def test_shard_map_is_modular_and_total(self):
        partitioner = HashPartitioner(4)
        for cid in range(1, 101):
            shard = partitioner.shard_for_customer(cid)
            assert shard == cid % 4
            assert 0 <= shard < 4

    def test_single_shard_cluster_owns_everything(self):
        partitioner = HashPartitioner(1)
        assert {partitioner.shard_for_customer(c) for c in range(1, 50)} == {0}

    def test_shard_count_must_be_positive(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)

    def test_customer_from_key_per_table(self):
        assert HashPartitioner.customer_from_key("Account", "cust0000042") == 42
        assert HashPartitioner.customer_from_key("Saving", 7) == 7
        assert HashPartitioner.customer_from_key("Checking", "9") == 9
        assert HashPartitioner.customer_from_key("Conflict", 3) == 3

    def test_bad_account_name_rejected(self):
        with pytest.raises(ValueError):
            HashPartitioner.customer_from_key("Account", "alice")
        with pytest.raises(ValueError):
            HashPartitioner.customer_from_key("Account", "custX")

    def test_customers_four_rows_are_colocated(self):
        """Account, Saving, Checking and Conflict of one customer land on
        the same shard — the fast path's precondition for single-customer
        programs."""
        partitioner = HashPartitioner(3)
        for cid in (1, 2, 3, 17, 100):
            shards = {
                partitioner.shard_for_row(table, key)
                for table, key in (
                    ("Account", customer_name(cid)),
                    ("Saving", cid),
                    ("Checking", cid),
                    ("Conflict", cid),
                )
            }
            assert shards == {partitioner.shard_for_customer(cid)}

    def test_unknown_table_rejected(self):
        with pytest.raises(ValueError):
            HashPartitioner(2).shard_for_row("Ledger", 1)

    def test_partition_columns_cover_the_schema(self):
        assert set(PARTITION_COLUMNS) == {
            "Account",
            "Saving",
            "Checking",
            "Conflict",
        }


def _row(db, table, key):
    session = Session(db)
    session.begin("probe")
    try:
        return session.select(table, key)
    finally:
        session.commit()


class TestShardPopulation:
    @pytest.mark.parametrize("shard_count", [2, 3])
    def test_union_of_shards_equals_single_node_population(self, shard_count):
        """Same seed → the shard slices partition the single-node rows
        bit-for-bit (the RNG draws both balances for every customer in
        order, whether or not the customer lands on the shard)."""
        population = PopulationConfig(customers=12)
        full = build_database(None, population)
        shards = [
            build_shard_database(
                None, population, shard_index=i, shard_count=shard_count
            )
            for i in range(shard_count)
        ]
        partitioner = HashPartitioner(shard_count)
        for cid in range(1, population.customers + 1):
            owner = partitioner.shard_for_customer(cid)
            for table, key in (
                ("Account", customer_name(cid)),
                ("Saving", cid),
                ("Checking", cid),
                ("Conflict", cid),
            ):
                expected = _row(full, table, key)
                assert expected is not None
                for index, shard_db in enumerate(shards):
                    got = _row(shard_db, table, key)
                    if index == owner:
                        assert got == expected, (table, key)
                    else:
                        assert got is None, (table, key, index)
        assert round(sum(total_money(s) for s in shards), 2) == total_money(
            full
        )

    def test_shard_index_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            build_shard_database(shard_index=2, shard_count=2)
        with pytest.raises(ValueError):
            build_shard_database(shard_index=-1, shard_count=2)


class TestParameterShardAffinity:
    """Satellite: the generator's draws respect the partition map."""

    SINGLE = [BALANCE, DEPOSIT_CHECKING, TRANSACT_SAVING, WRITE_CHECK]

    def _generator(self, customers=40, hotspot=40, probability=0.9, seed=7):
        config = HotspotConfig(
            customers=customers,
            hotspot=hotspot,
            hotspot_probability=probability,
        )
        return ParameterGenerator(config, random.Random(seed))

    def test_customer_ids_in_args_inverts_the_name_encoding(self):
        assert customer_ids_in_args({"N": customer_name(42), "V": 1.0}) == (42,)
        assert customer_ids_in_args(
            {"N1": customer_name(3), "N2": customer_name(18)}
        ) == (3, 18)
        assert customer_ids_in_args({"V": 5.0}) == ()

    @pytest.mark.parametrize("program", SINGLE)
    def test_single_customer_programs_name_exactly_one_shard(self, program):
        generator = self._generator()
        partitioner = HashPartitioner(4)
        for _ in range(200):
            ids = customer_ids_in_args(generator.args_for(program))
            assert len(ids) == 1
            assert 1 <= ids[0] <= 40
            shard = partitioner.shard_for_customer(ids[0])
            assert 0 <= shard < 4

    def test_hotspot_skew_respects_the_partition_map(self):
        """90 % of skewed draws hit the hotspot, and every drawn id still
        maps inside the shard range — skew changes *which* shard is hot,
        never whether a draw is routable."""
        generator = self._generator(customers=40, hotspot=10, probability=0.9)
        partitioner = HashPartitioner(2)
        in_hotspot = 0
        draws = 2000
        for _ in range(draws):
            ids = customer_ids_in_args(generator.args_for(BALANCE))
            (cid,) = ids
            assert 1 <= cid <= 40
            assert partitioner.shard_for_customer(cid) in (0, 1)
            if cid <= 10:
                in_hotspot += 1
        assert 0.85 <= in_hotspot / draws <= 0.95

    @pytest.mark.parametrize("shard_count", [2, 4])
    def test_amalgamate_cross_shard_fraction_matches_the_map(self, shard_count):
        """Two distinct uniform customers over 40 ids: the fraction of
        pairs landing on different shards is the hypergeometric
        1 - (n/s)(n/s - 1)·s / (n(n-1))."""
        customers = 40
        per_shard = customers // shard_count
        expected = 1.0 - (
            shard_count * per_shard * (per_shard - 1)
        ) / (customers * (customers - 1))
        generator = self._generator(customers=customers, hotspot=customers)
        partitioner = HashPartitioner(shard_count)
        draws = 4000
        crossing = 0
        for _ in range(draws):
            first, second = customer_ids_in_args(
                generator.args_for(AMALGAMATE)
            )
            assert first != second
            if partitioner.shard_for_customer(
                first
            ) != partitioner.shard_for_customer(second):
                crossing += 1
        assert abs(crossing / draws - expected) < 0.04
