"""The shard router behind ``cluster://`` (DESIGN.md §12.3–12.5).

End-to-end over real TCP shards: URL plumbing, statement routing,
program-level parity with a single node, the single-shard fast path
(white-box via the router's commit-path counters), vacuum through the
facade, and the snapshot modes — lazy mode *exhibits* a fractured read
mid-decision, consistent mode never lets one be observed.
"""

from __future__ import annotations

import threading
import time

import pytest

import repro
from repro.cluster import Cluster, ClusterConnection
from repro.errors import IntegrityError, SerializationFailure, SqlError
from repro.smallbank import (
    PopulationConfig,
    build_database,
    customer_name,
    get_strategy,
)
from repro.smallbank.schema import total_money


class TestClusterUrl:
    def test_connect_parses_multi_address_urls(self):
        with Cluster(2, customers=4) as cluster:
            with repro.connect(cluster.url) as conn:
                assert isinstance(conn, ClusterConnection)
                assert conn.shard_count == 2
                assert conn.url == cluster.url
                assert conn.ping()

    @pytest.mark.parametrize(
        "url",
        [
            "cluster://",
            "cluster://127.0.0.1",
            "cluster://127.0.0.1:x",
            "cluster://127.0.0.1:1,borked",
        ],
    )
    def test_malformed_cluster_urls_rejected(self, url):
        with pytest.raises(ValueError):
            repro.connect(url)

    def test_server_side_configuration_rejected(self):
        with pytest.raises(ValueError):
            repro.connect("cluster://127.0.0.1:1", isolation="si")


PROGRAM_SEQUENCE = [
    ("DepositChecking", {"N": customer_name(1), "V": 25.0}),
    ("TransactSaving", {"N": customer_name(2), "V": 40.0}),
    ("Amalgamate", {"N1": customer_name(1), "N2": customer_name(2)}),
    ("WriteCheck", {"N": customer_name(3), "V": 15.0}),
    ("Balance", {"N": customer_name(1)}),
    ("Amalgamate", {"N1": customer_name(4), "N2": customer_name(3)}),
    ("Balance", {"N": customer_name(3)}),
]


def run_sequence(connection):
    txns = get_strategy("base-si").transactions()
    results = []
    session = connection.session()
    try:
        for program, args in PROGRAM_SEQUENCE:
            results.append(txns.run(session, program, args))
    finally:
        session.close()
    return results


class TestProgramParity:
    def test_five_programs_match_a_single_node_run(self):
        """The same serial program sequence produces identical results and
        identical final balances on a 2-shard cluster and a single node."""
        population = PopulationConfig(customers=6)
        local_db = build_database(None, population)
        local = repro.connect("local://", database=local_db)
        local_results = run_sequence(local)
        with Cluster(2, customers=6) as cluster:
            with cluster.connect() as conn:
                cluster_results = run_sequence(conn)
                assert cluster_results == local_results
                session = conn.session()
                session.begin("audit")
                try:
                    for table in ("Saving", "Checking"):
                        for cid in range(1, 7):
                            row = session.select(table, cid)
                            local_session = local.session()
                            local_session.begin("audit")
                            expected = local_session.select(table, cid)
                            local_session.commit()
                            assert row == expected, (table, cid)
                finally:
                    session.close()
            assert cluster.total_money() == total_money(local_db)


class TestFastPath:
    def test_single_customer_programs_skip_2pc(self):
        with Cluster(2, customers=4) as cluster:
            with cluster.connect() as conn:
                txns = get_strategy("base-si").transactions()
                session = conn.session()
                try:
                    txns.run(
                        session,
                        "DepositChecking",
                        {"N": customer_name(1), "V": 5.0},
                    )
                    txns.run(session, "Balance", {"N": customer_name(2)})
                finally:
                    session.close()
                counters = conn.counters()
                assert counters["fastpath_commits"] == 2
                assert counters["twopc_commits"] == 0

    def test_single_shard_amalgamate_skips_2pc(self):
        """Both customers on shard 0 (ids 2 and 4): one writing branch,
        so even the two-customer program takes the fast path."""
        with Cluster(2, customers=4) as cluster:
            with cluster.connect() as conn:
                txns = get_strategy("base-si").transactions()
                session = conn.session()
                try:
                    txns.run(
                        session,
                        "Amalgamate",
                        {"N1": customer_name(2), "N2": customer_name(4)},
                    )
                finally:
                    session.close()
                counters = conn.counters()
                assert counters["fastpath_commits"] == 1
                assert counters["twopc_commits"] == 0
                assert counters["twopc_aborts"] == 0

    def test_cross_shard_amalgamate_uses_2pc(self):
        """Customers 1 (shard 1) and 2 (shard 0): two writing branches."""
        with Cluster(2, customers=4) as cluster:
            with cluster.connect() as conn:
                txns = get_strategy("base-si").transactions()
                session = conn.session()
                try:
                    txns.run(
                        session,
                        "Amalgamate",
                        {"N1": customer_name(1), "N2": customer_name(2)},
                    )
                finally:
                    session.close()
                counters = conn.counters()
                assert counters["twopc_commits"] == 1
                assert counters["fastpath_commits"] == 0

    def test_cross_shard_read_only_stays_on_the_fast_path(self):
        """Reads on both shards but zero writers: nothing to vote on."""
        with Cluster(2, customers=4) as cluster:
            with cluster.connect() as conn:
                session = conn.session()
                session.begin("Audit")
                try:
                    assert session.select("Checking", 1) is not None  # shard 1
                    assert session.select("Checking", 2) is not None  # shard 0
                    session.commit()
                finally:
                    session.close()
                assert conn.counters()["fastpath_commits"] == 1
                assert conn.counters()["twopc_commits"] == 0


class TestRouting:
    def test_scan_merges_all_shards_in_key_order(self):
        with Cluster(2, customers=5) as cluster:
            with cluster.connect() as conn:
                session = conn.session()
                session.begin("Scan")
                try:
                    rows = session.scan("Checking")
                    assert [key for key, _ in rows] == [1, 2, 3, 4, 5]
                    session.commit()
                finally:
                    session.close()

    def test_lookup_unique_routes_by_secondary_customer_key(self):
        with Cluster(2, customers=4) as cluster:
            with cluster.connect() as conn:
                session = conn.session()
                session.begin("Lookup")
                try:
                    found = session.lookup_unique("Account", "CustomerId", 3)
                    assert found == (
                        customer_name(3),
                        {"Name": customer_name(3), "CustomerId": 3},
                    )
                    session.commit()
                finally:
                    session.close()

    def test_unroutable_statement_rejected(self):
        """A WHERE clause that does not pin the partition column cannot be
        routed; the router refuses rather than broadcasting writes."""
        with Cluster(2, customers=4) as cluster:
            with cluster.connect() as conn:
                session = conn.session()
                session.begin("Bad")
                try:
                    with pytest.raises(SqlError):
                        session.execute_prepared(
                            "UPDATE Checking SET Balance = 0 "
                            "WHERE Balance > :b",
                            "update",
                            {"b": 0.0},
                        )
                finally:
                    session.close()

    def test_insert_routes_by_partition_value(self):
        with Cluster(2, customers=4) as cluster:
            with cluster.connect() as conn:
                session = conn.session()
                session.begin("Insert")
                try:
                    session.insert(
                        "Conflict", {"Id": 6, "Value": 0}
                    )  # 6 % 2 == 0
                    session.commit()
                finally:
                    session.close()
                session = conn.session()
                session.begin("Check")
                try:
                    assert session.select("Conflict", 6) == {
                        "Id": 6,
                        "Value": 0,
                    }
                    session.commit()
                finally:
                    session.close()
            # White-box: the row landed on shard 0 only.
            assert cluster.databases[0].catalog.table("Conflict").chain(6)
            assert cluster.databases[1].catalog.table("Conflict").chain(6) is None


class TestVacuum:
    def test_cluster_vacuum_fans_out_and_sums(self):
        with Cluster(2, customers=4) as cluster:
            with cluster.connect() as conn:
                for i in range(5):
                    with conn.transaction("Churn") as txn:
                        txn.update("Checking", 1, {"Balance": float(i)})
                conn.flush()
                pruned = conn.vacuum()
                assert pruned >= 4  # superseded versions of Checking[1]
                stats = conn.stats()
                assert stats["backend"] == "cluster"
                assert stats["shards"] == 2
                for shard_stats in stats["shard_stats"]:
                    assert shard_stats["vacuum_runs"] == 1
                assert (
                    sum(
                        s["vacuum_pruned_total"]
                        for s in stats["shard_stats"]
                    )
                    == pruned
                )

    def test_autovacuum_prunes_periodically(self):
        with Cluster(
            1, customers=2, autovacuum_interval=0.05
        ) as cluster:
            with cluster.connect() as conn:
                for i in range(5):
                    with conn.transaction("Churn") as txn:
                        txn.update("Checking", 1, {"Balance": float(i)})
                conn.flush()
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    shard_stats = conn.stats()["shard_stats"][0]
                    if shard_stats["vacuum_pruned_total"] >= 4:
                        break
                    time.sleep(0.05)
                assert shard_stats["vacuum_runs"] >= 1
                assert shard_stats["vacuum_pruned_total"] >= 4


def _transfer(conn, amount=10.0):
    """Move ``amount`` from Checking[1] (shard 1) to Checking[2] (shard 0):
    two writing branches, always a 2PC commit."""
    session = conn.session()
    session.begin("Transfer")
    try:
        source = session.select("Checking", 1)["Balance"]
        target = session.select("Checking", 2)["Balance"]
        session.update("Checking", 1, {"Balance": round(source - amount, 2)})
        session.update("Checking", 2, {"Balance": round(target + amount, 2)})
        session.commit()
    finally:
        session.close()


def _observed_total(conn):
    session = conn.session()
    session.begin("Peek")
    try:
        total = (
            session.select("Checking", 1)["Balance"]
            + session.select("Checking", 2)["Balance"]
        )
        session.commit()
        return round(total, 2)
    finally:
        session.close()


class TestSnapshotModes:
    def test_lazy_mode_admits_a_fractured_read(self):
        """A lazy-snapshot reader opened *between* the two per-shard
        decision deliveries sees half the transfer — shard 0's new value
        next to shard 1's old one."""
        with Cluster(2, customers=4) as cluster:
            observed = []
            conn_box = []

            def hook(gtid, index):
                observed.append(_observed_total(conn_box[0]))

            with cluster.connect(
                snapshot_mode="lazy", decision_hook=hook
            ) as conn:
                conn_box.append(conn)
                before = _observed_total(conn)
                _transfer(conn, 10.0)
                after = _observed_total(conn)
            assert after == before  # the transfer itself conserves money
            assert len(observed) == 1
            # Mid-decision the totals are fractured by exactly the amount
            # landing on the already-decided shard.
            assert observed[0] == round(before + 10.0, 2)

    def test_consistent_mode_never_shows_a_fractured_read(self):
        """Concurrent consistent-snapshot readers racing many 2PC commits
        observe only conserved totals: the snapshot broadcast and the
        decision broadcast exclude each other on the oracle."""
        with Cluster(2, customers=4) as cluster:
            with cluster.connect(snapshot_mode="consistent") as conn:
                before = _observed_total(conn)
                totals = []
                done = threading.Event()

                def reader():
                    while not done.is_set():
                        totals.append(_observed_total(conn))

                thread = threading.Thread(target=reader)
                thread.start()
                try:
                    for _ in range(15):
                        _transfer(conn, 10.0)
                finally:
                    done.set()
                    thread.join()
                assert conn.counters()["twopc_commits"] == 15
                assert totals  # the reader did race the commits
                assert set(totals) == {before}


class TestTwoPhaseAbort:
    def test_prepare_time_no_vote_aborts_the_whole_global_txn(self):
        """A validation failure on the *second* participant's prepare (a
        unique-constraint collision only visible at commit time) must
        roll the already-prepared first participant back too: no
        prepared orphan survives on any shard, and none of the global
        transaction's writes land anywhere."""
        with Cluster(2, customers=4) as cluster:
            with cluster.connect() as conn:
                first = conn.session()
                second = conn.session()
                first.begin("T1")
                second.begin("T2")
                # Distinct Account rows (no write-write conflict) sharing
                # CustomerId 99 — the collision is invisible until the
                # unique check at prepare.  Both also write shard 0, so
                # both commits are genuine 2PC.
                first.insert(
                    "Account", {"Name": customer_name(11), "CustomerId": 99}
                )  # 11 % 2 == 1
                first.update("Checking", 2, {"Balance": 1.0})
                second.insert(
                    "Account", {"Name": customer_name(13), "CustomerId": 99}
                )  # 13 % 2 == 1
                second.update("Checking", 4, {"Balance": 77.0})
                first.commit()
                with pytest.raises(IntegrityError):
                    second.commit()
                second.close()
                counters = conn.counters()
                assert counters["twopc_commits"] == 1
                assert counters["twopc_aborts"] == 1
                for shard_stats in conn.stats()["shard_stats"]:
                    assert shard_stats["prepared_2pc"] == 0
                with conn.transaction("Check") as txn:
                    # T2's shard-0 write (prepared before the NO vote
                    # arrived from shard 1) must not have survived.
                    assert txn.select("Checking", 4)["Balance"] != 77.0
                    found = txn.lookup_unique("Account", "CustomerId", 99)
                    assert found is not None
                    assert found[0] == customer_name(11)

    def test_write_conflict_surfaces_as_serialization_failure(self):
        """First-updater-wins over the cluster: the colliding write is
        refused with the same exception class a single node raises."""
        with Cluster(2, customers=4) as cluster:
            with cluster.connect() as conn:
                first = conn.session()
                second = conn.session()
                first.begin("T1")
                second.begin("T2")
                first.update("Conflict", 2, {"Value": 1})
                first.update("Conflict", 1, {"Value": 1})
                first.commit()
                with pytest.raises(SerializationFailure):
                    second.update("Conflict", 2, {"Value": 2})
                    second.commit()
                second.close()
                # The failed writer never reached its commit: the router
                # records neither a fast-path nor a 2PC commit for it.
                assert conn.counters()["twopc_commits"] == 1
