"""Tests for pairwise conflict/vulnerability analysis."""

from __future__ import annotations

from repro.core import (
    ProgramSpec,
    analyze_edge,
    cc_write,
    enumerate_scenarios,
    read,
    read_const,
    write,
    write_const,
)


def reader(name="R", table="T"):
    return ProgramSpec(name, ("x",), (read(table, "x", "v"),))


def writer(name="W", table="T"):
    return ProgramSpec(name, ("x",), (write(table, "x", "v"),))


def read_modify_writer(name="M", table="T"):
    return ProgramSpec(
        name, ("x",), (read(table, "x", "v"), write(table, "x", "v"))
    )


class TestScenarios:
    def test_single_param_programs_have_two_scenarios(self):
        scenarios = list(enumerate_scenarios(reader(), writer()))
        descriptions = {s.describe() for s in scenarios}
        assert descriptions == {"disjoint rows", "x = x"}

    def test_two_param_target_scenarios(self):
        p = reader()
        q = ProgramSpec(
            "Amg", ("x1", "x2"), (write("T", "x1", "v"), write("T", "x2", "v"))
        )
        descriptions = {s.describe() for s in enumerate_scenarios(p, q)}
        assert descriptions == {"disjoint rows", "x1 = x", "x2 = x"}

    def test_two_by_two_scenarios_are_injective(self):
        p = ProgramSpec("P", ("a", "b"), (read("T", "a"), read("T", "b")))
        q = ProgramSpec("Q", ("c", "d"), (write("T", "c"), write("T", "d")))
        scenarios = list(enumerate_scenarios(p, q))
        # empty + 4 single identifications + 2 full injections = 7.
        assert len(scenarios) == 7
        for s in scenarios:
            mapped = [p for _q, p in s.identifications]
            assert len(set(mapped)) == len(mapped)


class TestEdgeAnalysis:
    def test_pure_reader_to_writer_is_vulnerable(self):
        analysis = analyze_edge(reader(), writer())
        assert analysis.exists and analysis.vulnerable
        assert analysis.conflict_kinds == frozenset({"rw"})
        (item,) = analysis.vulnerable_items()
        assert item.table == "T" and item.p_key == "x" and item.q_key == "x"

    def test_reverse_direction_is_wr_not_vulnerable(self):
        analysis = analyze_edge(writer(), reader())
        assert analysis.exists and not analysis.vulnerable
        assert analysis.conflict_kinds == frozenset({"wr"})

    def test_read_modify_write_protects_the_edge(self):
        """rw accompanied by ww in the same scenario is not vulnerable."""
        analysis = analyze_edge(read_modify_writer(), writer())
        assert analysis.exists
        assert not analysis.vulnerable
        assert "ww" in analysis.conflict_kinds

    def test_protection_must_hold_in_every_rw_scenario(self):
        """A ww in one scenario does not protect an rw in another."""
        p = ProgramSpec(
            "P",
            ("a", "b"),
            (read("T", "a", "v"), read("T", "b", "v"), write("T", "a", "v")),
        )
        q = writer("Q")
        analysis = analyze_edge(p, q)
        # Scenario x=a: rw+ww -> protected.  Scenario x=b: rw alone.
        assert analysis.vulnerable
        vulnerable_keys = {i.p_key for i in analysis.vulnerable_items()}
        assert vulnerable_keys == {"b"}

    def test_disjoint_tables_no_edge(self):
        analysis = analyze_edge(reader(table="T"), writer(table="Other"))
        assert not analysis.exists

    def test_write_on_other_table_does_not_protect(self):
        """ww protection must be on a shared item, not any write."""
        p = ProgramSpec(
            "P", ("x",), (read("T", "x", "v"), write("Mine", "x", "v"))
        )
        q = ProgramSpec(
            "Q", ("x",), (write("T", "x", "v"), write("Theirs", "x", "v"))
        )
        assert analyze_edge(p, q).vulnerable

    def test_constant_row_conflicts(self):
        p = ProgramSpec("P", (), (read_const("T", "row0", "v"),))
        q = ProgramSpec("Q", (), (write_const("T", "row0", "v"),))
        analysis = analyze_edge(p, q)
        assert analysis.vulnerable
        (item,) = analysis.vulnerable_items()
        assert item.const == "row0" and item.p_key is None

    def test_shared_constant_write_protects(self):
        p = ProgramSpec(
            "P", (), (read_const("T", "row0", "v"), write_const("C", "shared"))
        )
        q = ProgramSpec(
            "Q", (), (write_const("T", "row0", "v"), write_const("C", "shared"))
        )
        assert not analyze_edge(p, q).vulnerable

    def test_self_edge_write_skew_shape(self):
        """Program reads two rows, writes one: self-edge is vulnerable."""
        p = ProgramSpec(
            "P",
            ("x",),
            (read("S", "x", "v"), read("C", "x", "v"), write("C", "x", "v")),
        )
        analysis = analyze_edge(p, p)
        # Same customer: rw on S is covered by... nothing on S; but ww on C
        # protects the scenario.  So the x=x scenario is protected; the
        # disjoint scenario has no conflict.
        assert not analysis.vulnerable

    def test_self_edge_disjoint_writers_vulnerable(self):
        """Reads row a and writes row b: instances with crossed params."""
        p = ProgramSpec(
            "P", ("a", "b"), (read("T", "a", "v"), write("T", "b", "v"))
        )
        analysis = analyze_edge(p, p)
        assert analysis.vulnerable


class TestSfuSemantics:
    def test_sfu_counts_as_write_on_commercial(self):
        p = ProgramSpec("P", ("x",), (cc_write("T", "x", "v"),))
        q = writer("Q")
        commercial = analyze_edge(p, q, sfu_is_write=True)
        assert not commercial.vulnerable
        assert "ww" in commercial.conflict_kinds

    def test_sfu_counts_as_read_on_postgres(self):
        """PG lock-only SFU leaves the edge vulnerable (Section II-C)."""
        p = ProgramSpec("P", ("x",), (cc_write("T", "x", "v"),))
        q = writer("Q")
        postgres = analyze_edge(p, q, sfu_is_write=False)
        assert postgres.vulnerable
