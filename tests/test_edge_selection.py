"""Tests for minimal / greedy edge-fix selection."""

from __future__ import annotations

import pytest

from repro.core import (
    ProgramSet,
    ProgramSpec,
    build_sdg,
    greedy_fix,
    minimal_fix,
    read,
    write,
)
from repro.errors import SpecError

from tests.test_modify import skew_mix


def chain_mix() -> ProgramSet:
    """R -(v)-> M -(v)-> W : one dangerous structure, two candidate edges."""
    return ProgramSet(
        [
            ProgramSpec("R", ("x",), (read("A", "x", "v"),)),
            ProgramSpec(
                "M",
                ("x",),
                (read("A", "x", "v"), write("A", "x", "v"), read("B", "x", "v")),
            ),
            ProgramSpec("W", ("x",), (read("B", "x", "v"), write("B", "x", "v"))),
        ],
        name="chain",
    )


class TestMinimalFix:
    def test_single_edge_suffices_for_chain(self):
        plan = minimal_fix(chain_mix(), method="materialize")
        assert len(plan.edges) == 1
        assert build_sdg(plan.programs).is_si_serializable()

    def test_already_serializable_mix_needs_nothing(self):
        safe = ProgramSet(
            [ProgramSpec("Only", ("x",), (read("A", "x", "v"),
                                          write("A", "x", "v")))],
        )
        plan = minimal_fix(safe)
        assert plan.edges == () and plan.modifications == ()

    def test_promotion_method(self):
        plan = minimal_fix(chain_mix(), method="promote-upd")
        assert len(plan.edges) == 1
        assert all(m.kind == "promote-upd" for m in plan.modifications)
        assert build_sdg(plan.programs).is_si_serializable()

    def test_skew_mix_needs_one_edge(self):
        plan = minimal_fix(skew_mix(), method="materialize")
        assert len(plan.edges) == 1

    def test_impossible_budget_raises(self):
        with pytest.raises(SpecError):
            minimal_fix(chain_mix(), max_edges=0)


class TestGreedyFix:
    def test_greedy_fix_converges(self):
        plan = greedy_fix(chain_mix(), method="materialize")
        assert build_sdg(plan.programs).is_si_serializable()
        assert 1 <= len(plan.edges) <= 2

    def test_greedy_matches_minimal_on_small_graphs(self):
        minimal = minimal_fix(chain_mix(), method="promote-upd")
        greedy = greedy_fix(chain_mix(), method="promote-upd")
        assert len(greedy.edges) == len(minimal.edges)

    def test_plan_describe(self):
        plan = greedy_fix(chain_mix())
        assert "materialize" in plan.describe()
